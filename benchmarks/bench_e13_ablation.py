"""E13 — ablation: what the memo tables buy.

DESIGN.md calls out two implementation choices worth ablating:

* the model engine memoizes whole models per database — without it,
  every hypothetical branch recomputes the models of shared databases
  (parity's ``2^n`` subset lattice collapses to a DAG only with the
  cache);
* the PROVE engine caches proven/refuted sigma goals and delta models.

Series reported: time with and without memoization, same instances;
the shape assertion checks memoized never loses on the DAG-shaped
parity workload.
"""

import time

import pytest

from repro.engine.model import PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver
from repro.library import graph_db, hamiltonian_rulebase, parity_db, parity_rulebase

MODEL_SIZES = [3, 4]
PROVE_SIZES = [3, 5]


@pytest.mark.parametrize("size", MODEL_SIZES)
@pytest.mark.parametrize("memoize", [True, False], ids=["memo", "nomemo"])
def test_model_engine_memoization(benchmark, size, memoize):
    rulebase = parity_rulebase()
    db = parity_db([f"x{index}" for index in range(size)])

    def run():
        engine = PerfectModelEngine(rulebase, memoize=memoize)
        return engine.ask(db, "even")

    assert benchmark(run) is (size % 2 == 0)
    benchmark.extra_info["memoize"] = memoize


@pytest.mark.parametrize("size", PROVE_SIZES)
@pytest.mark.parametrize("memoize", [True, False], ids=["memo", "nomemo"])
def test_prove_engine_memoization(benchmark, size, memoize):
    rulebase = parity_rulebase()
    db = parity_db([f"x{index}" for index in range(size)])

    def run():
        engine = LinearStratifiedProver(rulebase, memoize=memoize)
        return engine.ask(db, "even")

    assert benchmark(run) is (size % 2 == 0)


def test_memoization_wins_on_shared_subproblems(benchmark):
    """Parity on 4 elements: the subset lattice shares heavily, so the
    cache must win (2^4 memoized databases; without the cache every
    fixpoint round recomputes each branch's submodels, which compounds
    far beyond 4!).  Asserted on the deterministic model counter, not
    wall-clock, so the perf guard in CI cannot flake."""
    rulebase = parity_rulebase()
    db = parity_db([f"x{index}" for index in range(4)])

    def models_computed(memoize):
        engine = PerfectModelEngine(rulebase, memoize=memoize)
        assert engine.ask(db, "even") is True
        return engine.metrics.counter("model.models_computed").value

    def run():
        return models_computed(True), models_computed(False)

    with_memo, without_memo = benchmark(run)
    assert with_memo < without_memo
    benchmark.extra_info["models_with_memo"] = with_memo
    benchmark.extra_info["models_without_memo"] = without_memo


def test_hamiltonian_memoization(benchmark):
    """Hamiltonian search also shares (visited-set) subproblems."""
    rulebase = hamiltonian_rulebase()
    nodes = [f"v{index}" for index in range(5)]
    edges = [(a, b) for a in nodes for b in nodes if a != b]
    db = graph_db(nodes, edges)

    def run():
        return PerfectModelEngine(rulebase).ask(db, "yes")

    assert benchmark(run) is True
