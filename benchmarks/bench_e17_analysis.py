"""E17 — the static analyzer: overhead, and the payoff of cost planning.

Two questions, one bench file:

1. **What does `check` cost?**  The diagnostics pass (binding-mode
   abstract interpretation + structure + stratification checks) runs
   over every shipped library rulebase and over generated layered
   rulebases of growing size.  It is a compile-time pass, so the bar is
   "milliseconds on real programs, low-order polynomial growth on
   synthetic ones" — asserted loosely in-bench.

2. **Does cost-aware ordering beat greedy where it matters?**  E16's
   workload only shows both planners beating *textual* order.  Here the
   adversarial case for greedy itself: two premises tie on bound-count,
   and greedy's textual tie-break picks the huge relation first,
   forcing a cross product.  The cost planner reads live relation sizes
   and starts from the small guard.  Asserted: cost strictly faster
   than greedy on both the stratified substrate and the top-down
   engine.
"""

import time

import pytest

import repro.library as library
from repro.analysis.diagnostics import check
from repro.analysis.modes import analyze_modes
from repro.bench import random_layered_rulebase
from repro.core.database import Database
from repro.core.parser import parse_program
from repro.engine.stratified import perfect_model
from repro.engine.topdown import TopDownEngine

LIBRARY_RULEBASES = {
    "graduation": lambda: library.graduation_rulebase(),
    "hamiltonian": lambda: library.hamiltonian_rulebase(),
    "parity": lambda: library.parity_rulebase(),
    "coloring": lambda: library.coloring_rulebase(),
    "degree": lambda: library.degree_rulebase(),
    "example9": lambda: library.example9_rulebase(),
    "example10": lambda: library.example10_rulebase(),
    "order_iteration": lambda: library.order_iteration_rulebase(),
}


# ----------------------------------------------------------------------
# 1. Analyzer overhead
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(LIBRARY_RULEBASES))
def test_check_library_rulebase(benchmark, name):
    rb = LIBRARY_RULEBASES[name]()

    def run():
        return check(rb)

    diags = benchmark(run)
    benchmark.extra_info["rules"] = len(rb.rules)
    benchmark.extra_info["findings"] = len(diags)


@pytest.mark.parametrize("predicates", [40, 160, 320])
def test_check_layered_rulebase(benchmark, predicates):
    rb = random_layered_rulebase(predicates, 4, seed=7)

    def run():
        return check(rb)

    diags = benchmark(run)
    benchmark.extra_info["rules"] = len(rb.rules)
    benchmark.extra_info["findings"] = len(diags)


@pytest.mark.parametrize("predicates", [40, 160, 320])
def test_analyze_modes_layered_rulebase(benchmark, predicates):
    rb = random_layered_rulebase(predicates, 4, seed=7)

    def run():
        return analyze_modes(rb)

    report = benchmark(run)
    benchmark.extra_info["rules"] = len(rb.rules)
    benchmark.extra_info["adorned_predicates"] = len(report.adornments)


def test_analysis_scales_polynomially():
    """Doubling predicates must stay far under a cubic blowup."""

    def seconds(predicates: int) -> float:
        rb = random_layered_rulebase(predicates, 4, seed=7)
        start = time.perf_counter()
        check(rb)
        return time.perf_counter() - start

    small = min(seconds(80) for _ in range(3))
    large = min(seconds(160) for _ in range(3))
    assert large <= max(small, 1e-4) * 16  # 2x size, << 8x cubic + slack


# ----------------------------------------------------------------------
# 2. Cost-aware ordering vs greedy: the tie-break trap
# ----------------------------------------------------------------------

# blowup and guard tie on bound variables (none); greedy's textual
# tie-break joins blowup first — a 200 x 50 cross product before link
# filters anything.  Cost ordering sees |guard| << |blowup| and anchors
# on the guard.
CROSS_TRAP = parse_program(
    """
    hit(X) :- blowup(Y), guard(X), link(X, Y).
    """
)


def trap_db(n_blow: int = 200, n_guard: int = 50) -> Database:
    return Database.from_relations(
        {
            "blowup": [f"b{index}" for index in range(n_blow)],
            "guard": [f"g{index}" for index in range(n_guard)],
            "link": [
                (f"g{index}", f"b{index % n_blow}")
                for index in range(n_guard)
            ],
        }
    )


EXPECTED = {(f"g{index}",) for index in range(50)}


@pytest.mark.parametrize("mode", ["cost", "greedy"], ids=["cost", "greedy"])
def test_stratified_cross_trap(benchmark, mode):
    db = trap_db()

    def run():
        return perfect_model(CROSS_TRAP, db, optimize_joins=mode).count("hit")

    assert benchmark(run) == 50


@pytest.mark.parametrize("mode", ["cost", "greedy"], ids=["cost", "greedy"])
def test_topdown_cross_trap(benchmark, mode):
    db = trap_db()

    def run():
        return TopDownEngine(CROSS_TRAP, optimize_joins=mode).answers(
            db, "hit(X)"
        )

    assert benchmark(run) == EXPECTED


def test_cost_beats_greedy(benchmark):
    """The who-wins assertion, measured inline on one instance."""
    db = trap_db()

    def stratified_seconds(mode) -> float:
        start = time.perf_counter()
        perfect_model(CROSS_TRAP, db, optimize_joins=mode)
        return time.perf_counter() - start

    def topdown_seconds(mode) -> float:
        start = time.perf_counter()
        TopDownEngine(CROSS_TRAP, optimize_joins=mode).answers(db, "hit(X)")
        return time.perf_counter() - start

    def run():
        return (
            stratified_seconds("cost"),
            stratified_seconds("greedy"),
            topdown_seconds("cost"),
            topdown_seconds("greedy"),
        )

    s_cost, s_greedy, t_cost, t_greedy = benchmark(run)
    assert s_cost < s_greedy
    assert t_cost < t_greedy
    benchmark.extra_info["stratified_speedup"] = round(
        s_greedy / max(s_cost, 1e-9), 1
    )
    benchmark.extra_info["topdown_speedup"] = round(
        t_greedy / max(t_cost, 1e-9), 1
    )
