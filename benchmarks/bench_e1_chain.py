"""E1 — Example 4: chains of hypothetical additions.

Claim reproduced: ``R, DB |- A_i`` iff ``R, DB + {B_i..B_n} |- D``, and
the cost of proving ``a1`` from the empty database grows *linearly*
with the chain length under the PROVE procedures (each goal is expanded
once thanks to linear recursion — the Appendix A bound).

Series reported: evaluation time and sigma-goal count vs chain length.
"""

import pytest

from repro.core.database import Database
from repro.engine.prove import LinearStratifiedProver
from repro.engine.topdown import TopDownEngine
from repro.library import addition_chain_rulebase

LENGTHS = [4, 8, 16, 32, 64]


@pytest.mark.parametrize("n", LENGTHS)
def test_chain_prove_engine(benchmark, n, attach_metrics):
    rulebase = addition_chain_rulebase(n)

    def run():
        prover = LinearStratifiedProver(rulebase)
        result = prover.ask(Database(), "a1")
        return result, prover

    result, prover = benchmark(run)
    goals = prover.stats.sigma_goals
    assert result is True
    # Linear recursion => goal count linear in n (with a small constant).
    assert goals <= 4 * n + 8
    benchmark.extra_info["sigma_goals"] = goals
    benchmark.extra_info["chain_length"] = n
    attach_metrics(benchmark, prover.metrics)


@pytest.mark.parametrize("n", LENGTHS)
def test_chain_topdown_engine(benchmark, n):
    rulebase = addition_chain_rulebase(n)

    def run():
        engine = TopDownEngine(rulebase)
        return engine.ask(Database(), "a1")

    assert benchmark(run) is True


@pytest.mark.parametrize("n", [4, 16])
def test_chain_iff_negative_direction(benchmark, n):
    """The other half of the iff: a2 must fail without b1."""
    rulebase = addition_chain_rulebase(n)

    def run():
        prover = LinearStratifiedProver(rulebase)
        return prover.ask(Database(), "a2")

    assert benchmark(run) is False
