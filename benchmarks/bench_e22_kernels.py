"""E22 — compiled join kernels: generated code, identical semantics.

PR 8 compiled the bottom-up hot path: constants intern to dense ints
(``repro.core.interning``), relations get columnar int views
(``repro.core.columns``), and each planned rule body becomes a
generated Python closure (``repro.engine.kernels``) selected by
``compile="auto"|"on"|"off"`` on the model engine.  This bench pins
the two claims that justify the machinery:

* **counter parity** — on the E4 parity lattice, the E5 Hamiltonian
  workload, the E18 differential configuration, and the E20 demand
  configuration, the compiled engine produces the *identical* perfect
  model with *identical* ``model.rule_firings`` (and rounds, derived
  atoms, negation tests, models computed/seeded) as the interpreted
  engine, with zero per-firing kernel fallbacks — the generated code
  enumerates exactly the same head multiset, it only enumerates it
  faster.  One deliberate exception, pinned here as an inequality:
  ``model.hypothesis_expansions`` counts *distinct* recursion-case
  expansions when compiled (decisions are memoized per premise,
  database, and grounding), so compiled <= interpreted.
* **the E5 inner loop gets >= 3x faster** — steady-state evaluation
  (engine warmed once, per-iteration ``clear_cache()``) of the n = 7
  Hamiltonian instance runs at least ~3x faster compiled than
  interpreted; the measured ratio is recorded in ``extra_info`` and a
  conservative floor is asserted (shared CI runners are noisy; the
  recorded BENCH_pr8.json run shows the full ratio).

The parity assertions are deterministic, so this file doubles as the
CI perf guard (run with ``--benchmark-disable``); the wall-clock
assertion is skipped in that mode.  Timing series ride along for the
BENCH_*.json record.
"""

import time

import pytest

from repro.bench.workloads import random_graph
from repro.core.parser import parse_program
from repro.engine.model import PerfectModelEngine
from repro.library import (
    graph_db,
    hamiltonian_rulebase,
    has_hamiltonian_path,
    parity_db,
    parity_rulebase,
)

SEED = 2026
PARITY_SIZES = [4, 6]
HAMILTONIAN_SIZES = [5, 6]
SPEEDUP_N = 7
#: Conservative in-test floor; the real claim (>= 3x) is recorded in
#: the BENCH snapshot where the run is not fighting CI-runner noise.
SPEEDUP_FLOOR = 2.0

PARITY_COUNTERS = (
    "model.models_computed",
    "model.models_seeded",
    "model.rule_rounds",
    "model.rule_firings",
    "model.atoms_derived",
    "model.negation_tests",
)

TC_RULES = """
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
"""


def _parity_instance(size):
    return parity_rulebase(), parity_db([f"x{index}" for index in range(size)])


def _hamiltonian_instance(n):
    nodes, edges = random_graph(n, 0.5, SEED + n)
    return (
        hamiltonian_rulebase(),
        graph_db(nodes, edges),
        has_hamiltonian_path(nodes, edges),
    )


def _assert_parity(rulebase, db, goal, expected, **options):
    """Evaluate compiled and interpreted; demand identical results."""
    engines = {}
    for mode in ("off", "on"):
        engine = PerfectModelEngine(rulebase, compile=mode, **options)
        assert engine.ask(db, goal) is expected, mode
        engines[mode] = engine
    off, on = engines["off"], engines["on"]
    assert off.model(db) == on.model(db)
    for name in PARITY_COUNTERS:
        assert (
            off.metrics.counter(name).value == on.metrics.counter(name).value
        ), name
    # Memoized hypothesis decisions: compiled counts distinct
    # expansions, never more than the interpreted engine's re-fires.
    assert (
        on.metrics.counter("model.hypothesis_expansions").value
        <= off.metrics.counter("model.hypothesis_expansions").value
    )
    assert on.metrics.counter("kernel.fallbacks").value == 0
    assert on.metrics.counter("kernel.fires").value > 0
    return on


@pytest.mark.parametrize("size", PARITY_SIZES)
def test_parity_lattice_counter_parity(benchmark, attach_metrics, size):
    """E4 workload: 2^|A| lattice with negation, compiled == interpreted."""
    rulebase, db = _parity_instance(size)

    def run():
        return _assert_parity(rulebase, db, "even", size % 2 == 0)

    engine = benchmark(run)
    benchmark.extra_info["size"] = size
    attach_metrics(benchmark, engine.metrics)


@pytest.mark.parametrize("n", HAMILTONIAN_SIZES)
def test_hamiltonian_counter_parity(benchmark, attach_metrics, n):
    """E5 workload: hypothetical recursion, compiled == interpreted."""
    rulebase, db, expected = _hamiltonian_instance(n)

    def run():
        return _assert_parity(rulebase, db, "yes", expected)

    engine = benchmark(run)
    benchmark.extra_info["n"] = n
    attach_metrics(benchmark, engine.metrics)


def test_differential_counter_parity(benchmark, attach_metrics):
    """E18 configuration (semi-naive + lattice reuse): parity holds on
    the incremental path too — seeded children, delta-keyed kernels."""
    rulebase, db = _parity_instance(6)

    def run():
        return _assert_parity(
            rulebase, db, "even", True,
            strategy="seminaive", reuse_models=True,
        )

    engine = benchmark(run)
    attach_metrics(benchmark, engine.metrics)


def test_demand_counter_parity(benchmark, attach_metrics):
    """E20 configuration (magic-sets rewrite): the demand-build
    delegate inherits the compile mode; answers and firings match."""
    rulebase = parse_program(TC_RULES)
    nodes, edges = random_graph(8, 0.4, SEED)
    db = graph_db(nodes, edges)
    goal = f"tc({nodes[0]}, {nodes[-1]})"
    expected = PerfectModelEngine(rulebase, compile="off").ask(db, goal)

    def run():
        answers = {}
        engines = {}
        for mode in ("off", "on"):
            engine = PerfectModelEngine(rulebase, compile=mode, demand="on")
            answers[mode] = engine.answers(db, f"tc({nodes[0]}, Y)")
            assert engine.ask(db, goal) is expected, mode
            engines[mode] = engine
        assert answers["off"] == answers["on"]
        for name in ("model.rule_firings", "demand.rules_rewritten"):
            assert (
                engines["off"].metrics.counter(name).value
                == engines["on"].metrics.counter(name).value
            ), name
        return engines["on"]

    engine = benchmark(run)
    attach_metrics(benchmark, engine.metrics)


def _steady_state(engine, db, iterations):
    """Best-of-k of a cached-free re-evaluation on a warmed engine.

    The engine keeps its compiled kernels, interned symbols, and
    encoded base relations; ``clear_cache()`` drops the model memo so
    each iteration re-runs the whole lattice — the "inner loop" the
    compilation targets, measured without one-time setup."""
    best = float("inf")
    for _ in range(iterations):
        engine.clear_cache()
        start = time.perf_counter()
        engine.ask(db, "yes")
        best = min(best, time.perf_counter() - start)
    return best


def test_hamiltonian_inner_loop_speedup(benchmark, attach_metrics):
    """The tentpole claim: compiled E5 inner loop >= 3x interpreted.

    Both engines answer first (warm-up: compilation, interning, model
    check) and are then timed steady-state.  The benchmark fixture
    times the compiled iteration so the BENCH snapshot carries its
    median; the interpreted baseline and the ratio land in
    ``extra_info``.
    """
    rulebase, db, expected = _hamiltonian_instance(SPEEDUP_N)
    compiled = PerfectModelEngine(rulebase, compile="on")
    interpreted = PerfectModelEngine(rulebase, compile="off")
    assert compiled.ask(db, "yes") is expected
    assert interpreted.ask(db, "yes") is expected

    def run():
        compiled.clear_cache()
        assert compiled.ask(db, "yes") is expected

    benchmark(run)
    benchmark.extra_info["n"] = SPEEDUP_N
    attach_metrics(benchmark, compiled.metrics)
    if benchmark.disabled:
        return  # CI perf guard: counters only, no wall-clock flakiness
    off = _steady_state(interpreted, db, 5)
    on = _steady_state(compiled, db, 5)
    speedup = off / on
    benchmark.extra_info["interpreted_best"] = off
    benchmark.extra_info["compiled_best"] = on
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= SPEEDUP_FLOOR, (
        f"compiled E5 n={SPEEDUP_N} inner loop only {speedup:.2f}x faster "
        f"(floor {SPEEDUP_FLOOR}x; expected ~3x+ on a quiet machine)"
    )
