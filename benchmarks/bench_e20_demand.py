"""E20 — demand transformation: extended magic sets pay off.

PR 6 added a static demand (magic-sets) rewrite: a bound query goal
seeds magic predicates that guard every restricted rule, so bottom-up
evaluation derives only atoms the query can reach (docs/DEMAND.md).
This bench pins the claims that justify the rewrite:

* **strictly fewer firings** — on goal-directed workloads (partial
  reachability over a multi-component graph, and the E8 k = 1
  oracle-machine encoding asked for ``accept``) the demand-transformed
  run fires strictly fewer rule instances than the differential engine
  (PR 3's semi-naive + lattice-reuse configuration) while producing
  the *identical* answers;
* **fewer hypothetical models** — on the E5 Hamiltonian rulebase over
  a two-component graph, a ``path`` query in one component never
  builds child models for the other (``model.models_computed`` drops);
* **fallback is free of wrong answers** — rejected queries fall back
  to full evaluation, counted by ``engine.demand_fallbacks``.

All shape assertions are on deterministic counters, never wall-clock,
so this file doubles as the CI perf guard (run with
``--benchmark-disable``).  Timing series ride along for the
BENCH_*.json record.

Demand is *not* universally faster: on a strongly-connected graph the
query cone is the whole model and the guards are pure overhead — the
workloads here are the goal-directed ones the rewrite exists for.
"""

import pytest

from repro.bench.workloads import random_graph
from repro.core.parser import parse_program
from repro.core.terms import atom
from repro.engine.model import PerfectModelEngine
from repro.library import graph_db, hamiltonian_rulebase
from repro.machines.encode import cascade_database, cascade_rulebase
from repro.machines.library import contains_one
from repro.machines.oracle import Cascade

SEED = 2026
COMPONENT_COUNTS = [2, 4]
COMPONENT_SIZE = 5
ENCODING_INPUTS = ["01", "001", "0001"]

#: Both variants run PR 3's differential configuration; the only
#: difference is the rewrite, so the counters isolate its effect.
VARIANTS = {
    "full": dict(strategy="seminaive", reuse_models=True, demand="off"),
    "demand": dict(strategy="seminaive", reuse_models=True, demand="on"),
}

TC_RULES = """
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
"""


def _multi_component(components, size, seed):
    """``components`` disjoint G(n, p) graphs — a bound query can only
    ever reach its own component, so demand prunes the rest."""
    nodes, edges = [], []
    for index in range(components):
        part_nodes, part_edges = random_graph(size, 0.4, seed + index)
        nodes.extend(f"c{index}_{node}" for node in part_nodes)
        edges.extend(
            (f"c{index}_{source}", f"c{index}_{target}")
            for source, target in part_edges
        )
    return nodes, edges


def _reachability_instance(components):
    nodes, edges = _multi_component(components, COMPONENT_SIZE, SEED)
    return parse_program(TC_RULES), graph_db(nodes, edges), "tc(c0_v0, Y)"


def _hamiltonian_instance():
    nodes, edges = _multi_component(2, 4, SEED + 100)
    return hamiltonian_rulebase(), graph_db(nodes, edges), f"path({nodes[0]})"


def _encoding_instance(text):
    cascade = Cascade((contains_one(),))
    bound = len(text) + 2
    rulebase = cascade_rulebase(cascade)
    db = cascade_database(cascade, list(text), bound)
    expected = cascade.accepts(list(text), bound)
    return rulebase, db, atom("accept"), expected


def _firings(engine):
    return engine.metrics.counter("model.rule_firings").value


@pytest.mark.parametrize("components", COMPONENT_COUNTS)
@pytest.mark.parametrize("variant", list(VARIANTS), ids=list(VARIANTS))
def test_reachability_timing(benchmark, attach_metrics, variant, components):
    rulebase, db, query = _reachability_instance(components)

    def run():
        engine = PerfectModelEngine(rulebase, **VARIANTS[variant])
        engine.answers(db, query)
        return engine

    engine = benchmark(run)
    benchmark.extra_info["components"] = components
    benchmark.extra_info["variant"] = variant
    attach_metrics(benchmark, engine.metrics)


@pytest.mark.parametrize("variant", list(VARIANTS), ids=list(VARIANTS))
def test_hamiltonian_path_timing(benchmark, attach_metrics, variant):
    rulebase, db, query = _hamiltonian_instance()

    def run():
        engine = PerfectModelEngine(rulebase, **VARIANTS[variant])
        engine.ask(db, query)
        return engine

    engine = benchmark(run)
    benchmark.extra_info["variant"] = variant
    attach_metrics(benchmark, engine.metrics)


@pytest.mark.parametrize("text", ENCODING_INPUTS)
@pytest.mark.parametrize("variant", list(VARIANTS), ids=list(VARIANTS))
def test_encoding_timing(benchmark, attach_metrics, variant, text):
    rulebase, db, goal, expected = _encoding_instance(text)

    def run():
        engine = PerfectModelEngine(rulebase, **VARIANTS[variant])
        assert engine.ask(db, goal) is expected
        return engine

    engine = benchmark(run)
    benchmark.extra_info["input_length"] = len(text)
    benchmark.extra_info["variant"] = variant
    attach_metrics(benchmark, engine.metrics)


@pytest.mark.parametrize("components", COMPONENT_COUNTS)
def test_reachability_demand_fires_strictly_fewer_rules(components):
    """Acceptance criterion: identical answers, strictly fewer firings,
    no fallback on the goal-directed reachability workload."""
    rulebase, db, query = _reachability_instance(components)
    full = PerfectModelEngine(rulebase, **VARIANTS["full"])
    demand = PerfectModelEngine(rulebase, **VARIANTS["demand"])
    assert demand.answers(db, query) == full.answers(db, query)
    assert _firings(demand) < _firings(full)
    assert demand.metrics.counter("engine.demand_fallbacks").value == 0
    assert demand.metrics.counter("demand.rules_rewritten").value > 0
    assert demand.metrics.counter("demand.magic_facts").value > 0


def test_hamiltonian_demand_builds_fewer_models():
    """Acceptance criterion: on the E5 rulebase over two components, a
    goal-directed ``path`` query agrees with full evaluation while
    firing fewer rules and constructing fewer hypothetical models."""
    rulebase, db, query = _hamiltonian_instance()
    full = PerfectModelEngine(rulebase, **VARIANTS["full"])
    demand = PerfectModelEngine(rulebase, **VARIANTS["demand"])
    assert demand.ask(db, query) is full.ask(db, query)
    assert _firings(demand) < _firings(full)
    assert (
        demand.metrics.counter("model.models_computed").value
        < full.metrics.counter("model.models_computed").value
    )


@pytest.mark.parametrize("text", ENCODING_INPUTS)
def test_encoding_demand_fires_strictly_fewer_rules(text):
    """Acceptance criterion: the E8 k = 1 oracle-machine encoding asked
    for ``accept`` stays correct under demand and fires strictly fewer
    rules — the rewrite helps even on machine-generated rulebases."""
    rulebase, db, goal, expected = _encoding_instance(text)
    full = PerfectModelEngine(rulebase, **VARIANTS["full"])
    demand = PerfectModelEngine(rulebase, **VARIANTS["demand"])
    assert full.ask(db, goal) is expected
    assert demand.ask(db, goal) is expected
    assert _firings(demand) < _firings(full)


def test_rejected_query_falls_back_with_identical_answers():
    """A negated query is rejected by the rewrite; the engine falls
    back (counted) and still agrees with full evaluation."""
    rulebase, db, _ = _reachability_instance(2)
    full = PerfectModelEngine(rulebase, **VARIANTS["full"])
    demand = PerfectModelEngine(rulebase, **VARIANTS["demand"])
    query = "~tc(c0_v0, c1_v0)"
    assert demand.ask(db, query) is full.ask(db, query)
    assert demand.metrics.counter("engine.demand_fallbacks").value == 1
