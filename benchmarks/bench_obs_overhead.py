"""Obs overhead guard: disabled tracing must be (near) free.

The tracing layer (``repro.obs``) is threaded through every engine hot
path, guarded by ``tracer.enabled`` checks against the shared no-op
``NULL_TRACER``.  These benchmarks pin the cost of that guard: the
untraced series here is directly comparable with the historical E1/E9
numbers (same workloads), and the traced series shows what turning the
tracer on actually costs — useful context, not a regression gate.

Correctness is asserted inline as usual: traced and untraced runs must
return the same answer and derive identical counter values (the
counters are always on; only span construction is gated).
"""

import pytest

from repro.core.database import Database
from repro.engine.prove import LinearStratifiedProver
from repro.library import addition_chain_rulebase, order_db, order_iteration_rulebase
from repro.obs.trace import Tracer

N_CHAIN = 32


def test_disabled_tracer_counters_match_traced(attach_metrics, benchmark):
    """Counters are tracer-independent: identical deltas either way."""
    rulebase = addition_chain_rulebase(N_CHAIN)

    def run():
        untraced = LinearStratifiedProver(rulebase)
        untraced.ask(Database(), "a1")
        traced = LinearStratifiedProver(rulebase, tracer=Tracer())
        traced.ask(Database(), "a1")
        return untraced, traced

    untraced, traced = benchmark(run)
    assert untraced.metrics.snapshot() == traced.metrics.snapshot()
    attach_metrics(benchmark, untraced.metrics)


@pytest.mark.parametrize("traced", [False, True], ids=["off", "on"])
def test_chain_tracing_cost(benchmark, traced):
    rulebase = addition_chain_rulebase(N_CHAIN)

    def run():
        tracer = Tracer() if traced else None
        prover = LinearStratifiedProver(rulebase, tracer=tracer)
        return prover.ask(Database(), "a1")

    assert benchmark(run) is True
    benchmark.extra_info["traced"] = traced


@pytest.mark.parametrize("traced", [False, True], ids=["off", "on"])
def test_order_walk_tracing_cost(benchmark, traced):
    rulebase = order_iteration_rulebase()
    db = order_db(8)

    def run():
        tracer = Tracer() if traced else None
        prover = LinearStratifiedProver(rulebase, tracer=tracer)
        return prover.ask(db, "a")

    assert benchmark(run) is True
    benchmark.extra_info["traced"] = traced
