"""E11 — Lemma 2 / Corollary 2: the expressibility compiler.

Claims reproduced: a generic yes/no query decided by a machine compiles
to a constant-free linearly-stratified rulebase with the same number of
strata, whose answers match direct evaluation on unordered domains; the
Corollary 2 construction lifts it to a typed query through the
``OUT <- D(x), YES[add: P0(x)]`` rule.

Series reported: compiled-query evaluation time vs domain size for the
nonempty / empty scanners and the typed membership query.
"""

import pytest

from repro.engine.query import Session
from repro.machines.oracle import Cascade
from repro.machines.turing import Machine, Step
from repro.queries.compile import (
    Signature,
    compile_typed_query,
    compile_yes_no_query,
    query_database,
    relation_empty_machine,
    relation_nonempty_machine,
)

SIGNATURE = Signature((("p", 1),))
SIZES = [2, 3]


@pytest.fixture(scope="module")
def nonempty_rulebase():
    machine = relation_nonempty_machine(SIGNATURE, "p")
    return compile_yes_no_query(Cascade((machine,)), SIGNATURE)


@pytest.fixture(scope="module")
def empty_rulebase():
    machine = relation_empty_machine(SIGNATURE, "p")
    return compile_yes_no_query(Cascade((machine,)), SIGNATURE)


@pytest.mark.parametrize("size", SIZES)
def test_compiled_nonempty_positive(benchmark, nonempty_rulebase, size):
    domain = [f"e{index}" for index in range(size)]
    db = query_database(SIGNATURE, domain, {"p": [domain[-1]]})

    def run():
        return Session(nonempty_rulebase, "prove").ask(db, "yes")

    assert benchmark(run) is True
    benchmark.extra_info["domain_size"] = size


@pytest.mark.parametrize("size", SIZES)
def test_compiled_nonempty_negative(benchmark, nonempty_rulebase, size):
    domain = [f"e{index}" for index in range(size)]
    db = query_database(SIGNATURE, domain, {"p": []})

    def run():
        return Session(nonempty_rulebase, "prove").ask(db, "yes")

    assert benchmark(run) is False


@pytest.mark.parametrize("size", SIZES)
def test_compiled_empty_query(benchmark, empty_rulebase, size):
    domain = [f"e{index}" for index in range(size)]
    db = query_database(SIGNATURE, domain, {"p": []})

    def run():
        return Session(empty_rulebase, "prove").ask(db, "yes")

    assert benchmark(run) is True


@pytest.mark.parametrize("rows,expected", [([], True), (["e0"], False)])
def test_sigma2_compiled_query(benchmark, rows, expected):
    """Lemma 2 at k = 2: emptiness via a complemented oracle relay —
    a constant-free Sigma_2^P rulebase on an unordered domain."""
    from repro.machines.library import contains_one
    from repro.queries.compile import translating_relay_machine

    top = translating_relay_machine(SIGNATURE, "p", accept_on_yes=False)
    cascade = Cascade((top, contains_one()))
    rulebase = compile_yes_no_query(cascade, SIGNATURE, extra_time_arity=1)
    db = query_database(SIGNATURE, ["e0", "e1"], {"p": rows})

    def run():
        return Session(rulebase, "prove").ask(db, "yes")

    assert benchmark(run) is expected
    benchmark.extra_info["strata"] = 2


def test_corollary2_typed_query(benchmark):
    signature = Signature((("p0", 1), ("p", 1)))
    steps = []
    for symbol in signature.symbols():
        if symbol == "s11":
            steps.append(Step("scan", symbol, "acc", symbol, 0))
        else:
            steps.append(Step("scan", symbol, "scan", symbol, 1))
    machine = Machine("both", tuple(steps), "scan", frozenset({"acc"}))
    rulebase = compile_typed_query(Cascade((machine,)), signature, 1)
    db = query_database(signature, ["a", "b"], {"p": ["b"]})

    def run():
        return Session(rulebase, "prove").answers(db, "out(X)")

    assert benchmark(run) == {("b",)}
