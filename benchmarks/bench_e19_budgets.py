"""E19 — resource governance: budgets bound search without changing it.

The tentpole claim of the robustness layer (docs/ROBUSTNESS.md) has
three measurable parts, each pinned here on the E5 Hamiltonian
workload (the paper's canonical exponential search):

* **deadlines land on time** — under shrinking wall-clock deadlines
  the raised :class:`~repro.core.errors.ResourceExhausted` arrives
  within 1.2x the configured deadline (the acceptance criterion; the
  poll interval makes the raise land within a few dozen cheap
  operations of the cutoff).  The measured exhaustion latency
  (elapsed - deadline) is recorded per row.
* **partial answers grow monotonically** — evaluation is
  deterministic, so a larger step budget decides a superset of the
  query enumeration; partial answer counts are non-decreasing in the
  budget and always a subset of the unbudgeted answer set (asserted on
  deterministic step budgets, never wall-clock).
* **the disabled path is free** — with no budget configured the
  engines skip every guard behind one ``budget.enabled`` attribute
  test, so the E13/E18 perf-guard counters are unchanged and an
  unlimited budget derives identical counters to no budget at all.

Shape assertions are deterministic (counters and step budgets), so
this file rides the CI perf guard with ``--benchmark-disable``; the
timing series land in the BENCH_*.json record as usual.
"""

import time

import pytest

from repro.bench.workloads import random_graph
from repro.core.errors import ResourceExhausted
from repro.engine.budget import Budget
from repro.engine.model import PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver
from repro.library import graph_db, hamiltonian_rulebase

SEED = 2026
DEADLINES = [0.02, 0.05, 0.1]
STEP_BUDGETS = [2, 8, 32, 128, 512, 2048]

#: Fixed CI slack on top of the 1.2x acceptance bound: poll cadence and
#: scheduler jitter, not proportional to the deadline.
LATENCY_SLACK = 0.05


def _hamiltonian_instance(n):
    nodes, edges = random_graph(n, 0.5, SEED + n)
    return hamiltonian_rulebase(), graph_db(nodes, edges)


def _complete_instance(n):
    # A complete digraph maximizes the model engine's database lattice
    # — the bottom-up search that reliably outlives small deadlines.
    nodes = [f"v{index}" for index in range(n)]
    return hamiltonian_rulebase(), graph_db(
        nodes, [(a, b) for a in nodes for b in nodes if a != b]
    )


def _small_instance():
    return hamiltonian_rulebase(), graph_db(
        ["a", "b", "c", "d"],
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("b", "d")],
    )


# ----------------------------------------------------------------------
# Shrinking deadlines: exhaustion latency
# ----------------------------------------------------------------------


@pytest.mark.parametrize("deadline", DEADLINES)
def test_deadline_exhaustion_latency(benchmark, deadline):
    """Acceptance criterion: the raise lands within 1.2x the deadline
    (plus a fixed poll/scheduler slack) on a search that runs ~0.5s
    unbudgeted — far past every configured deadline."""
    rulebase, db = _complete_instance(8)

    def run():
        engine = PerfectModelEngine(rulebase)
        start = time.monotonic()
        try:
            engine.ask(db, "yes", budget=Budget(timeout=deadline))
        except ResourceExhausted as error:
            return time.monotonic() - start, error
        return time.monotonic() - start, None

    elapsed, error = benchmark(run)
    benchmark.extra_info["deadline_s"] = deadline
    benchmark.extra_info["exhaustion_latency_s"] = max(0.0, elapsed - deadline)
    assert error is not None, "workload finished before the deadline"
    assert error.reason == "deadline"
    assert elapsed <= deadline * 1.2 + LATENCY_SLACK
    assert error.partial.steps > 0


def test_prove_engine_deadline_latency():
    """Same bound through the PROVE cascade's nested Delta closures."""
    rulebase, db = _complete_instance(8)
    deadline = 0.05
    engine = LinearStratifiedProver(rulebase)
    start = time.monotonic()
    try:
        engine.ask(db, "yes", budget=Budget(timeout=deadline))
    except ResourceExhausted as error:
        elapsed = time.monotonic() - start
        assert error.reason == "deadline"
        assert elapsed <= deadline * 1.2 + LATENCY_SLACK


# ----------------------------------------------------------------------
# Monotone partial answers under step budgets (deterministic)
# ----------------------------------------------------------------------


def test_partial_answer_counts_are_monotone():
    """More budget never loses answers: counts are non-decreasing in
    the step budget, every partial set is a subset of the next and of
    the unbudgeted answers, and a generous budget converges exactly."""
    rulebase, db = _small_instance()
    full = LinearStratifiedProver(rulebase).answers(db, "select(Y)")
    partials = []
    for steps in STEP_BUDGETS:
        engine = LinearStratifiedProver(rulebase)
        try:
            found = engine.answers(db, "select(Y)", budget=Budget(max_steps=steps))
        except ResourceExhausted as error:
            found = error.partial.answers or set()
        partials.append((steps, found))
    for (_, smaller), (_, larger) in zip(partials, partials[1:]):
        assert smaller <= larger
    for _, found in partials:
        assert found <= full
    assert partials[-1][1] == full


def test_partial_atoms_are_monotone_in_model_engine():
    """The bottom-up engine's partial *atom* sets grow the same way."""
    rulebase, db = _small_instance()
    engine = PerfectModelEngine(rulebase)
    full = engine.model(db)
    previous = frozenset()
    for steps in STEP_BUDGETS:
        fresh = PerfectModelEngine(rulebase)
        try:
            atoms = frozenset(fresh.model(db, budget=Budget(max_steps=steps)))
        except ResourceExhausted as error:
            atoms = error.partial.atoms or frozenset()
        assert previous <= atoms
        assert atoms <= full
        previous = atoms


# ----------------------------------------------------------------------
# Disabled-path overhead: the perf-guard assertions
# ----------------------------------------------------------------------


def test_unbudgeted_counters_match_unlimited_budget(attach_metrics, benchmark):
    """The guards never change what is computed: an unlimited budget
    derives counter-for-counter the same work as no budget at all (so
    the E13/E18 perf-guard counters are unchanged by this layer)."""
    rulebase, db = _small_instance()

    def run():
        bare = PerfectModelEngine(rulebase)
        bare_result = bare.ask(db, "yes")
        governed = PerfectModelEngine(rulebase)
        governed_result = governed.ask(db, "yes", budget=Budget())
        assert bare_result == governed_result
        return bare, governed

    bare, governed = benchmark(run)
    assert bare.metrics.snapshot() == governed.metrics.snapshot()
    attach_metrics(benchmark, bare.metrics)


@pytest.mark.parametrize("governed", [False, True], ids=["off", "unlimited"])
def test_budget_guard_cost(benchmark, governed):
    """Timing context for the disabled-path claim: the ``off`` series
    is directly comparable with the historical E5/E18 numbers, the
    ``unlimited`` series shows what an active (but never-tripping)
    budget costs.  Recorded, not gated — wall-clock gates flake."""
    rulebase, db = _hamiltonian_instance(7)

    def run():
        engine = LinearStratifiedProver(rulebase)
        budget = Budget() if governed else None
        return engine.ask(db, "yes", budget=budget)

    benchmark(run)
    benchmark.extra_info["governed"] = governed
