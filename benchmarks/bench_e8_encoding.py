"""E8 — Theorem 1 lower bound (Section 5.1): oracle-machine encodings.

Claims reproduced:

* formula (3): ``R(L), DB(s) |- ACCEPT`` iff the cascade accepts ``s``
  — checked against the direct simulator on every instance;
* ``DB(s)`` is built in polynomial time and space (counter + tapes);
* the k = 2 cascade genuinely crosses a stratum boundary (the
  ``~ORACLE`` rule fires on complement instances).

Series reported: encoding-evaluation time vs input length for k = 1
and k = 2, plus database construction cost.
"""

import pytest

from repro.machines.encode import (
    cascade_database,
    cascade_rulebase,
    encode_and_ask,
)
from repro.machines.library import (
    contains_one,
    contains_one_cascade,
    no_ones_cascade,
    suggested_time_bound,
)
from repro.machines.oracle import Cascade

K1_INPUTS = ["", "0", "01", "001", "0001"]
K2_INPUTS = ["", "0", "01"]


@pytest.mark.parametrize("text", K1_INPUTS)
def test_k1_encoding(benchmark, text):
    cascade = Cascade((contains_one(),))
    bound = len(text) + 2
    expected = cascade.accepts(list(text), bound)

    def run():
        return encode_and_ask(cascade, list(text), bound)

    assert benchmark(run) is expected
    benchmark.extra_info["input_length"] = len(text)


@pytest.mark.parametrize("text", K2_INPUTS)
def test_k2_encoding_yes_relay(benchmark, text):
    cascade = contains_one_cascade()
    bound = suggested_time_bound(2, len(text))
    expected = cascade.accepts(list(text), bound)

    def run():
        return encode_and_ask(cascade, list(text), bound)

    assert benchmark(run) is expected


@pytest.mark.parametrize("text", K2_INPUTS)
def test_k2_encoding_complement_relay(benchmark, text):
    cascade = no_ones_cascade()
    bound = suggested_time_bound(2, len(text))

    def run():
        return encode_and_ask(cascade, list(text), bound)

    assert benchmark(run) is ("1" not in text)


@pytest.mark.parametrize("text", ["", "1"])
def test_k3_encoding_double_relay(benchmark, text):
    """One level up the hierarchy: a Sigma_3^P instance, three strata."""
    from repro.machines.library import three_level_cascade

    cascade = three_level_cascade()
    bound = suggested_time_bound(3, len(text))

    def run():
        return encode_and_ask(cascade, list(text), bound)

    assert benchmark(run) is ("1" not in text)
    benchmark.extra_info["k"] = 3


@pytest.mark.parametrize("bound", [8, 16, 32, 64])
def test_database_construction_is_polynomial(benchmark, bound):
    cascade = contains_one_cascade()

    def run():
        return cascade_database(cascade, ["1", "0"], bound)

    db = benchmark(run)
    # Exactly linear in the counter length (Section 5.1.1).
    assert len(db) == 3 * bound + 1


def test_rulebase_construction(benchmark):
    """R(L) is input-independent — built once, polynomial in the
    machine description."""
    cascade = no_ones_cascade()

    def run():
        return cascade_rulebase(cascade)

    rulebase = benchmark(run)
    assert rulebase.is_constant_free
