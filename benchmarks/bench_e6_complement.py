"""E6 — Example 8: the complement rule ``NO <- ~YES``.

Claims reproduced: one extra non-recursive rule makes the rulebase
decide both the NP problem and its complement (and pushes its Theorem 1
classification from NP to Sigma_2^P).  Deciding ``NO`` on a
path-free graph costs as much as exhausting the whole search space —
the coNP side is the expensive one, as expected.

Series reported: time for YES on yes-instances vs time for NO on
no-instances, same sizes.
"""

import pytest

from repro.analysis.classify import classify
from repro.bench.workloads import path_graph
from repro.engine.prove import LinearStratifiedProver
from repro.library import graph_db, hamiltonian_complement_rulebase

SIZES = [3, 4, 5]


@pytest.mark.parametrize("n", SIZES)
def test_yes_on_path_graphs(benchmark, n):
    nodes, edges = path_graph(n)
    db = graph_db(nodes, edges)
    rulebase = hamiltonian_complement_rulebase()

    def run():
        return LinearStratifiedProver(rulebase).ask(db, "yes")

    assert benchmark(run) is True


@pytest.mark.parametrize("n", SIZES)
def test_no_on_disconnected_graphs(benchmark, n):
    nodes, _ = path_graph(n)
    db = graph_db(nodes, [])  # no edges at all
    rulebase = hamiltonian_complement_rulebase()

    def run():
        return LinearStratifiedProver(rulebase).ask(db, "no")

    expected = n > 1  # a single node is trivially a Hamiltonian path
    assert benchmark(run) is expected


def test_classification_jump(benchmark):
    """The Example 8 observation as a measurement: classifying both
    rulebases, asserting NP -> Sigma_2^P."""
    from repro.library import hamiltonian_rulebase

    def run():
        return (
            classify(hamiltonian_rulebase()).class_name,
            classify(hamiltonian_complement_rulebase()).class_name,
        )

    base, extended = benchmark(run)
    assert base == "NP"
    assert extended == "Sigma_2^P"
