"""E21 — provenance: recording cost, off-switch parity, zero re-eval.

The provenance layer (docs/OBSERVABILITY.md) threads a ``record`` hook
through the semi-naive closure, guarded by the shared no-op
``NULL_PROVENANCE`` exactly like the tracer's ``NULL_TRACER``.  This
bench pins the three claims that justify shipping it on by request
only:

* **off is free** — with ``provenance=False`` (the default) the engine
  derives identical counter values to an engine built before the layer
  existed (same discipline as ``bench_obs_overhead``), so the PR-3
  differential baselines (E18) still hold;
* **why is replay, not re-search** — after an ``ask`` the ``why``
  reconstruction touches only recorded edges: ``prov.edges_replayed``
  grows while ``model.rule_firings`` stays exactly flat;
* **recording changes no answers** — the recorded evaluation returns
  the same model/answers as the plain one (lattice reuse is disabled
  while recording, so only counters may differ, never results).

Shape assertions are on deterministic counters, never wall-clock, so
the file runs under ``--benchmark-disable`` in the CI perf guard;
timing series ride along for the BENCH_*.json record.
"""

import pytest

from repro.bench.workloads import random_graph
from repro.engine.model import PerfectModelEngine
from repro.library import (
    graduation_db,
    graduation_rulebase,
    graph_db,
    hamiltonian_rulebase,
    has_hamiltonian_path,
    parity_db,
    parity_rulebase,
)

SEED = 2026


def _parity_instance(size):
    return parity_rulebase(), parity_db([f"x{index}" for index in range(size)])


def _hamiltonian_instance(n):
    nodes, edges = random_graph(n, 0.5, SEED + n)
    return (
        hamiltonian_rulebase(),
        graph_db(nodes, edges),
        has_hamiltonian_path(nodes, edges),
    )


def test_provenance_off_counter_parity_parity_workload():
    """The default engine and an explicit ``provenance=False`` engine
    do byte-for-byte the same counted work (E4 lattice, |A| = 6)."""
    rulebase, db = _parity_instance(6)
    plain = PerfectModelEngine(rulebase)
    off = PerfectModelEngine(rulebase, provenance=False)
    assert plain.model(db) == off.model(db)
    assert plain.metrics.snapshot() == off.metrics.snapshot()
    assert not any(
        name.startswith("prov.") for name in off.metrics.snapshot()
    )


def test_provenance_off_counter_parity_hamiltonian_workload():
    """Same parity pin on the E5 Hamiltonian workload (n = 7)."""
    rulebase, db, expected = _hamiltonian_instance(7)
    plain = PerfectModelEngine(rulebase)
    off = PerfectModelEngine(rulebase, provenance=False)
    assert plain.ask(db, "yes") is expected
    assert off.ask(db, "yes") is expected
    assert plain.metrics.snapshot() == off.metrics.snapshot()


def test_why_is_replay_not_reevaluation():
    """Acceptance criterion: after ``ask``, ``why`` fires zero rules —
    the proof comes entirely from recorded edges."""
    rulebase, db = _parity_instance(6)
    engine = PerfectModelEngine(rulebase, provenance=True)
    assert engine.ask(db, "even") is True
    fired = engine.metrics.counter("model.rule_firings").value
    assert fired > 0
    proof = engine.why(db, "even")
    assert proof is not None
    assert engine.metrics.counter("model.rule_firings").value == fired
    assert engine.metrics.counter("prov.edges_replayed").value > 0


def test_recording_changes_no_answers():
    """Recorded and plain evaluations agree on every workload here."""
    rulebase, db, expected = _hamiltonian_instance(5)
    assert PerfectModelEngine(rulebase, provenance=True).ask(
        db, "yes"
    ) is expected
    assert PerfectModelEngine(
        graduation_rulebase(), provenance=True
    ).answers(graduation_db(), "within_one(S)") == {("tony",), ("sue",)}
    p_rules, p_db = _parity_instance(4)
    assert PerfectModelEngine(p_rules, provenance=True).model(
        p_db
    ) == PerfectModelEngine(p_rules).model(p_db)


@pytest.mark.parametrize("recording", [False, True], ids=["off", "on"])
def test_parity_recording_cost(benchmark, attach_metrics, recording):
    rulebase, db = _parity_instance(6)

    def run():
        engine = PerfectModelEngine(rulebase, provenance=recording)
        assert engine.ask(db, "even") is True
        return engine

    engine = benchmark(run)
    benchmark.extra_info["provenance"] = recording
    attach_metrics(benchmark, engine.metrics)


@pytest.mark.parametrize("recording", [False, True], ids=["off", "on"])
def test_hamiltonian_recording_cost(benchmark, attach_metrics, recording):
    rulebase, db, expected = _hamiltonian_instance(5)

    def run():
        engine = PerfectModelEngine(rulebase, provenance=recording)
        assert engine.ask(db, "yes") is expected
        return engine

    engine = benchmark(run)
    benchmark.extra_info["provenance"] = recording
    attach_metrics(benchmark, engine.metrics)


@pytest.mark.parametrize("mode", ["research", "replay"])
def test_explanation_cost(benchmark, mode):
    """What one explanation costs once evaluation has happened: the
    top-down Explainer re-searches the derivation, provenance replay
    walks recorded edges.  Evaluation itself is outside the timed
    region for both series."""
    rulebase, db = _parity_instance(4)
    if mode == "replay":
        engine = PerfectModelEngine(rulebase, provenance=True)
        assert engine.ask(db, "even") is True
        proof = benchmark(lambda: engine.why(db, "even"))
    else:
        from repro.engine.proofs import Explainer

        explainer = Explainer(rulebase)
        proof = benchmark(lambda: explainer.explain(db, "even"))
    assert proof is not None
    benchmark.extra_info["mode"] = mode
