"""E3 — Examples 1-3: the university-policy workload.

Claims reproduced: the object-level queries of Examples 1-2 (one-shot
hypothetical ask; the "within one course" retrieval) and the Example 3
joint-degree rulebase (which needs the general-language engine).

Series reported: time vs enrolment size for the retrieval query.
"""

import pytest

from repro.core.database import Database
from repro.engine.prove import LinearStratifiedProver
from repro.engine.topdown import TopDownEngine
from repro.library import (
    degree_db,
    degree_rulebase,
    graduation_rulebase,
)


def enrolment_db(students: int) -> Database:
    """Synthetic enrolment: every third student is one course short."""
    rows = []
    names = [f"s{index}" for index in range(students)]
    for index, name in enumerate(names):
        rows.append((name, "his101"))
        rows.append((name, "eng201"))
        if index % 3 == 0:
            rows.append((name, "cs250"))
    return Database.from_relations({"student": names, "take": rows})


@pytest.mark.parametrize("students", [4, 8, 16])
def test_example1_single_ask(benchmark, students):
    rulebase = graduation_rulebase()
    db = enrolment_db(students)

    def run():
        return LinearStratifiedProver(rulebase).ask(
            db, "grad(s1)[add: take(s1, cs250)]"
        )

    assert benchmark(run) is True


@pytest.mark.parametrize("students", [4, 8, 16])
def test_example2_within_one_retrieval(benchmark, students):
    rulebase = graduation_rulebase()
    db = enrolment_db(students)

    def run():
        return LinearStratifiedProver(rulebase).answers(db, "within_one(S)")

    rows = benchmark(run)
    # Everyone is within one course (two thirds need cs250, one third
    # has graduated outright).
    assert len(rows) == students


def test_example3_joint_degree(benchmark):
    rulebase = degree_rulebase()
    db = degree_db()

    def run():
        return TopDownEngine(rulebase).answers(db, "grad(S, mathphys)")

    assert benchmark(run) == {("ada",), ("bob",)}
