"""E2 — Example 5: iterating a stored linear order.

Claim reproduced: ``R, DB |- A`` iff ``R, DB + {B(a_1)..B(a_n)} |- D``
— the rulebase walks the stored ``FIRST``/``NEXT``/``LAST`` order,
hypothetically marking every element, and the check predicate ``d``
verifies full coverage.

Series reported: time vs order length, for the PROVE and top-down
engines.
"""

import pytest

from repro.engine.prove import LinearStratifiedProver
from repro.engine.topdown import TopDownEngine
from repro.library import order_db, order_iteration_rulebase

LENGTHS = [4, 8, 16, 32]


@pytest.mark.parametrize("n", LENGTHS)
def test_order_iteration_prove(benchmark, n):
    rulebase = order_iteration_rulebase()
    db = order_db(n)

    def run():
        return LinearStratifiedProver(rulebase).ask(db, "a")

    assert benchmark(run) is True


@pytest.mark.parametrize("n", LENGTHS)
def test_order_iteration_topdown(benchmark, n):
    rulebase = order_iteration_rulebase()
    db = order_db(n)

    def run():
        return TopDownEngine(rulebase).ask(db, "a")

    assert benchmark(run) is True
