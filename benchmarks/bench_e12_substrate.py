"""E12 — the Datalog substrate (Bancilhon-Ramakrishnan, reference [2]).

Claim reproduced: semi-naive evaluation beats naive evaluation on
recursive queries, by a factor that grows with the recursion depth —
the classic transitive-closure result the paper's reference [2]
surveys.  Both evaluators must of course produce identical models.

Series reported: time and rule firings vs chain length for both
evaluators; the shape assertion checks semi-naive fires strictly fewer
rules.
"""

import pytest

from repro.bench.workloads import chain_edges_db, transitive_closure_rules
from repro.engine.datalog import (
    FixpointStats,
    naive_least_fixpoint,
    seminaive_least_fixpoint,
)

LENGTHS = [10, 20, 40]


@pytest.mark.parametrize("n", LENGTHS)
def test_naive_transitive_closure(benchmark, n):
    rules = transitive_closure_rules().rules
    db = chain_edges_db(n)

    def run():
        return naive_least_fixpoint(rules, db)

    model = benchmark(run)
    assert model.count("path") == n * (n - 1) // 2


@pytest.mark.parametrize("n", LENGTHS)
def test_seminaive_transitive_closure(benchmark, n):
    rules = transitive_closure_rules().rules
    db = chain_edges_db(n)

    def run():
        return seminaive_least_fixpoint(rules, db)

    model = benchmark(run)
    assert model.count("path") == n * (n - 1) // 2


@pytest.mark.parametrize("n", [20, 40])
def test_seminaive_wins_on_firings(benchmark, n):
    """The who-wins assertion, measured in rule firings (deterministic,
    machine-independent)."""
    rules = transitive_closure_rules().rules
    db = chain_edges_db(n)

    def run():
        naive_stats, semi_stats = FixpointStats(), FixpointStats()
        naive_least_fixpoint(rules, db, stats=naive_stats)
        seminaive_least_fixpoint(rules, db, stats=semi_stats)
        return naive_stats.firings, semi_stats.firings

    naive_firings, semi_firings = benchmark(run)
    assert semi_firings < naive_firings
    benchmark.extra_info["naive_firings"] = naive_firings
    benchmark.extra_info["seminaive_firings"] = semi_firings
