"""E18 — differential evaluation: semi-naive strata + lattice reuse.

PR 3 replaced the model engine's naive per-stratum fixpoints with
delta-driven (semi-naive) iteration and added lattice model reuse
(children of ``model(DB + {B...})`` seed from the parent's monotone
prefix).  This bench pins the two claims that justify the machinery:

* **strictly fewer firings** — on the E4 parity lattice (|A| = 6) and
  the E5 Hamiltonian workload (n = 7) the differential engine fires
  strictly fewer rule instances than the naive engine while producing
  the *identical* perfect model;
* **the lattice is reused** — ``model.models_seeded`` > 0 on the
  parity lattice (children enter the incremental path), and on a
  negation-free workload (graduation, Example 2) the children inherit
  actual derived atoms (``model.atoms_seeded`` total > 0).

All shape assertions are on deterministic counters, never wall-clock,
so this file doubles as the CI perf guard (run with
``--benchmark-disable``).  Timing series ride along for the
BENCH_*.json record.
"""

import pytest

from repro.bench.workloads import random_graph
from repro.engine.model import PerfectModelEngine
from repro.library import (
    graduation_db,
    graduation_rulebase,
    graph_db,
    hamiltonian_rulebase,
    has_hamiltonian_path,
    parity_db,
    parity_rulebase,
)

SEED = 2026
PARITY_SIZES = [4, 6]
HAMILTONIAN_SIZES = [5, 7]

VARIANTS = {
    "naive": dict(strategy="naive", reuse_models=False),
    "seminaive": dict(strategy="seminaive", reuse_models=False),
    "differential": dict(strategy="seminaive", reuse_models=True),
}


def _parity_instance(size):
    return parity_rulebase(), parity_db([f"x{index}" for index in range(size)])


def _hamiltonian_instance(n):
    nodes, edges = random_graph(n, 0.5, SEED + n)
    return hamiltonian_rulebase(), graph_db(nodes, edges), has_hamiltonian_path(nodes, edges)


def _firings(engine):
    return engine.metrics.counter("model.rule_firings").value


@pytest.mark.parametrize("size", PARITY_SIZES)
@pytest.mark.parametrize("variant", list(VARIANTS), ids=list(VARIANTS))
def test_parity_timing(benchmark, attach_metrics, variant, size):
    rulebase, db = _parity_instance(size)

    def run():
        engine = PerfectModelEngine(rulebase, **VARIANTS[variant])
        assert engine.ask(db, "even") is (size % 2 == 0)
        return engine

    engine = benchmark(run)
    benchmark.extra_info["size"] = size
    benchmark.extra_info["variant"] = variant
    attach_metrics(benchmark, engine.metrics)


@pytest.mark.parametrize("n", HAMILTONIAN_SIZES)
@pytest.mark.parametrize("variant", list(VARIANTS), ids=list(VARIANTS))
def test_hamiltonian_timing(benchmark, attach_metrics, variant, n):
    rulebase, db, expected = _hamiltonian_instance(n)

    def run():
        engine = PerfectModelEngine(rulebase, **VARIANTS[variant])
        assert engine.ask(db, "yes") is expected
        return engine

    engine = benchmark(run)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["variant"] = variant
    attach_metrics(benchmark, engine.metrics)


def test_parity_differential_fires_strictly_fewer_rules():
    """Acceptance criterion: on |A| = 6 the differential engine fires
    strictly fewer rules than naive, agrees with it exactly, and enters
    the incremental (seeded) path on the subset lattice."""
    rulebase, db = _parity_instance(6)
    naive = PerfectModelEngine(rulebase, **VARIANTS["naive"])
    differential = PerfectModelEngine(rulebase, **VARIANTS["differential"])
    assert differential.model(db) == naive.model(db)
    assert _firings(differential) < _firings(naive)
    assert differential.metrics.counter("model.models_seeded").value > 0


def test_hamiltonian_differential_fires_strictly_fewer_rules():
    """Acceptance criterion: on n = 7 the differential engine fires
    strictly fewer rules than naive and matches the Held-Karp oracle."""
    rulebase, db, expected = _hamiltonian_instance(7)
    naive = PerfectModelEngine(rulebase, **VARIANTS["naive"])
    differential = PerfectModelEngine(rulebase, **VARIANTS["differential"])
    assert naive.ask(db, "yes") is expected
    assert differential.ask(db, "yes") is expected
    assert differential.model(db) == naive.model(db)
    assert _firings(differential) < _firings(naive)


def test_monotone_workload_inherits_derived_atoms():
    """On the negation-free graduation rulebase (Example 2), lattice
    reuse inherits real derived atoms, not just the incremental path."""
    engine = PerfectModelEngine(graduation_rulebase(), **VARIANTS["differential"])
    assert engine.answers(graduation_db(), "within_one(S)") == {
        ("tony",),
        ("sue",),
    }
    assert engine.metrics.counter("model.models_seeded").value > 0
    assert engine.metrics.histogram("model.atoms_seeded").total > 0
