"""E4 — Example 6: relation parity (EVEN).

Claim reproduced: ``R, DB |- EVEN`` iff ``|A|`` is even, on every
engine.  The interesting shape: the number of reachable databases is
``2^|A|`` (one per copied subset), so the cost grows exponentially in
``|A|`` even though the query is semantically trivial — hypothetical
copying pays for its expressive power.

Series reported: time vs ``|A|`` per engine.
"""

import pytest

from repro.library import parity_db, parity_rulebase

SIZES = [2, 4, 6, 8]


@pytest.mark.parametrize("size", SIZES)
def test_parity_by_engine(benchmark, any_engine, size):
    name, factory = any_engine
    rulebase = parity_rulebase()
    db = parity_db([f"x{index}" for index in range(size)])

    def run():
        return factory(rulebase).ask(db, "even")

    assert benchmark(run) is (size % 2 == 0)
    benchmark.extra_info["engine"] = name
    benchmark.extra_info["relation_size"] = size


@pytest.mark.parametrize("size", [3, 5])
def test_parity_odd_instances(benchmark, size):
    from repro.engine.prove import LinearStratifiedProver

    rulebase = parity_rulebase()
    db = parity_db([f"x{index}" for index in range(size)])

    def run():
        return LinearStratifiedProver(rulebase).ask(db, "odd")

    assert benchmark(run) is True
