"""Diff two cumulative ``BENCH_*.json`` snapshots into a speedup table.

Usage::

    python benchmarks/compare.py BENCH_pr7.json BENCH_pr8.json
    python benchmarks/compare.py OLD.json NEW.json --fail-on-regression
    python benchmarks/compare.py OLD.json NEW.json --filter bench_e5

Each input is the ``{"runs": [...]}`` format written by
``report.py --merge-into``; the *last* run of each file is compared
(override with ``--run-a`` / ``--run-b``, negative indices allowed).
Benchmarks are matched by ``fullname``; the table prints one row per
common benchmark with both medians and the speedup ``old / new``
(> 1.00x means the new snapshot is faster).  Rows whose change exceeds
``--threshold`` (default 1.25x either way) are flagged ``faster`` /
``SLOWER`` so drive-by regressions stand out of the noise band.

Exit status is 0 unless ``--fail-on-regression`` is given and at least
one row regressed past the threshold — CI runs without the flag as a
warn-only trend check (wall-clock on shared runners is too noisy to
gate merges on; the counter-asserted benchmarks are the hard gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional


def _load_run(path: str, index: int) -> dict:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    runs = payload.get("runs") or []
    if not runs:
        raise SystemExit(f"error: {path} contains no runs")
    try:
        return runs[index]
    except IndexError:
        raise SystemExit(
            f"error: {path} has {len(runs)} runs; index {index} is out of range"
        ) from None


def _medians(run: dict) -> dict[str, float]:
    return {
        bench["fullname"]: bench["median"]
        for bench in run.get("benchmarks", [])
        if bench.get("median") is not None
    }


def _format_seconds(value: float) -> str:
    if value < 1e-3:
        return f"{value * 1e6:9.1f}us"
    if value < 1:
        return f"{value * 1e3:9.2f}ms"
    return f"{value:9.2f}s "


def compare(
    old: dict[str, float],
    new: dict[str, float],
    threshold: float,
    name_filter: Optional[str] = None,
) -> tuple[list[str], int, int]:
    """Render the table; return (lines, faster_count, slower_count)."""
    common = sorted(set(old) & set(new))
    if name_filter:
        common = [name for name in common if name_filter in name]
    width = max((len(name) for name in common), default=20)
    lines = [
        f"{'benchmark':<{width}}  {'old':>11}  {'new':>11}  {'speedup':>8}"
    ]
    faster = slower = 0
    for name in common:
        before, after = old[name], new[name]
        ratio = before / after if after else float("inf")
        flag = ""
        if ratio >= threshold:
            flag = "  faster"
            faster += 1
        elif ratio <= 1 / threshold:
            flag = "  SLOWER"
            slower += 1
        lines.append(
            f"{name:<{width}}  {_format_seconds(before)}  "
            f"{_format_seconds(after)}  {ratio:7.2f}x{flag}"
        )
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    lines.append(
        f"{len(common)} compared, {faster} faster, {slower} slower "
        f"(beyond {threshold:.2f}x); {len(only_new)} new, "
        f"{len(only_old)} dropped"
    )
    return lines, faster, slower


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json snapshots into a speedup table"
    )
    parser.add_argument("old", help="baseline snapshot (BENCH_*.json)")
    parser.add_argument("new", help="candidate snapshot (BENCH_*.json)")
    parser.add_argument(
        "--run-a",
        type=int,
        default=-1,
        metavar="I",
        help="run index inside the baseline file (default: last)",
    )
    parser.add_argument(
        "--run-b",
        type=int,
        default=-1,
        metavar="I",
        help="run index inside the candidate file (default: last)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        metavar="R",
        help="flag rows changed beyond this ratio (default 1.25)",
    )
    parser.add_argument(
        "--filter",
        dest="name_filter",
        metavar="SUBSTR",
        help="only compare benchmarks whose fullname contains SUBSTR",
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when any row slowed beyond the threshold",
    )
    options = parser.parse_args(argv)
    old = _medians(_load_run(options.old, options.run_a))
    new = _medians(_load_run(options.new, options.run_b))
    lines, _, slower = compare(
        old, new, options.threshold, options.name_filter
    )
    print("\n".join(lines))
    if options.fail_on_regression and slower:
        print(
            f"error: {slower} benchmark(s) regressed beyond "
            f"{options.threshold:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
