"""Shared helpers for the benchmark harness.

Every file in this directory regenerates one experiment from
EXPERIMENTS.md (the paper has no numeric tables; each experiment
operationalizes a definition, example, or theorem — see DESIGN.md
section 5 for the index).  Run with::

    pytest benchmarks/ --benchmark-only

Benchmarks assert their *correctness* conditions inline (the "iff"
statements of the paper), so a bench run doubles as an end-to-end
check; the timing series are the reproduction of the complexity
*shapes* (exponential vs polynomial growth, who wins, crossovers).
"""

from __future__ import annotations

import pytest


def engine_factory(name: str):
    """Build a fresh engine of the given kind for a rulebase."""
    from repro.engine.model import PerfectModelEngine
    from repro.engine.prove import LinearStratifiedProver
    from repro.engine.topdown import TopDownEngine

    return {
        "prove": LinearStratifiedProver,
        "model": PerfectModelEngine,
        "topdown": TopDownEngine,
    }[name]


@pytest.fixture(params=["prove", "model", "topdown"])
def any_engine(request):
    """Parametrize a bench over all three engines."""
    return request.param, engine_factory(request.param)


def attach_metrics(benchmark, metrics, *, key: str = "metrics") -> None:
    """Stash an engine's metric snapshot on a benchmark row.

    ``metrics`` is a :class:`repro.obs.metrics.MetricsRegistry` (every
    engine exposes one as ``.metrics``).  The non-zero values land in
    ``benchmark.extra_info[key]``, which pytest-benchmark writes into
    its JSON dump — ``report.py --merge-into`` then carries them into
    the cumulative ``BENCH_*.json``.
    """
    benchmark.extra_info[key] = metrics.snapshot(zeros=False)


@pytest.fixture(name="attach_metrics")
def attach_metrics_fixture():
    """The :func:`attach_metrics` helper as a fixture, so bench files
    need no cross-conftest import."""
    return attach_metrics
