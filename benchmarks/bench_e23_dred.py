"""E23 — deletion propagation (DRed) and first-class ``[del:]``.

This PR made hypothetical deletions first-class in the bottom-up
engine and gave retracts true incremental maintenance: a cached model
is *patched* — over-delete, re-derive, re-close — instead of
refixpointed (docs/INCREMENTAL.md).  This bench pins the two claims
that justify the machinery:

* **retracts are proportional to the change** — on a multi-chain
  reachability workload, retracting one middle edge after a full
  evaluation fires at least 5x fewer rule instances (counting DRed's
  own over-deletion firings against it) than a from-scratch fixpoint
  on the smaller database, while producing the identical model;
* **``[del:]`` runs bottom-up** — the E14 redundancy-analysis workload
  that previously raised on the bottom-up engine now answers there,
  agrees with the top-down oracle exactly, and serves its
  counterfactual children by patching the parent's live model
  (``dred.models_patched`` > 0).

All shape assertions are on deterministic counters, never wall-clock,
so this file doubles as the CI perf guard (run with
``--benchmark-disable``).  Timing series — including the bottom-up vs
top-down ``[del:]`` comparison recorded for BENCH_*.json — ride along.
"""

import pytest

from repro.core.database import Database
from repro.core.parser import parse_program
from repro.core.terms import atom
from repro.engine.model import PerfectModelEngine
from repro.engine.topdown import TopDownEngine

CHAINS = 12
LENGTH = 10

PATH_RULES = """
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
"""

REDUNDANCY_RULES = """
alarm :- wired(S), live(S).
fragile(S) :- wired(S), ~still_alarm(S).
still_alarm(S) :- wired(S), alarm[del: live(S)].
"""

SENSOR_SIZES = [2, 4, 8]


def chain_db(chains: int, length: int) -> Database:
    facts = []
    for chain in range(chains):
        for hop in range(length - 1):
            facts.append(atom("edge", f"n{chain}_{hop}", f"n{chain}_{hop+1}"))
    return Database(facts)


def sensor_db(sensors: int) -> Database:
    names = [f"s{index}" for index in range(sensors)]
    return Database.from_relations({"wired": names, "live": names})


def total_firings(engine: PerfectModelEngine) -> int:
    """Rule firings charged to an engine, DRed's own work included —
    the ratio assertion must not hide over-deletion behind a separate
    counter."""
    return (
        engine.metrics.counter("model.rule_firings").value
        + engine.metrics.counter("dred.overdelete_firings").value
    )


# -- the acceptance criterion: 1-fact retract >= 5x fewer firings -------


def test_retract_is_proportional_to_the_change():
    db = chain_db(CHAINS, LENGTH)
    smaller = db.without_facts(atom("edge", "n0_4", "n0_5"))

    engine = PerfectModelEngine(parse_program(PATH_RULES))
    engine.model(db)
    before = total_firings(engine)
    patched = engine.model(smaller)
    incremental = total_firings(engine) - before
    assert engine.metrics.counter("dred.models_patched").value == 1

    scratch = PerfectModelEngine(parse_program(PATH_RULES))
    assert scratch.model(smaller) == patched
    full = total_firings(scratch)

    assert incremental * 5 <= full, (incremental, full)


def test_rederivation_is_exercised_not_bypassed():
    """The ratio must come from genuine DRed, not a degenerate
    workload: deleting a middle edge over-deletes the chain suffix
    reachabilities, and the re-derivation phase restores every path
    that still has support."""
    db = chain_db(CHAINS, LENGTH).with_facts(
        atom("edge", "n0_0", "n0_5")  # a bypass around the cut edge
    )
    engine = PerfectModelEngine(parse_program(PATH_RULES))
    engine.model(db)
    smaller = db.without_facts(atom("edge", "n0_4", "n0_5"))
    assert engine.ask(smaller, "path(n0_0, n0_9)")
    assert engine.metrics.counter("dred.atoms_rederived").value > 0


# -- [del:] premises run bottom-up, in parity with the oracle -----------


@pytest.mark.parametrize("sensors", SENSOR_SIZES)
def test_counterfactual_parity_with_topdown(sensors):
    rulebase = parse_program(REDUNDANCY_RULES)
    db = sensor_db(sensors)
    bottom_up = PerfectModelEngine(rulebase)
    expected = TopDownEngine(rulebase).answers(db, "fragile(S)")
    assert bottom_up.answers(db, "fragile(S)") == expected
    # Counterfactual children were patched from the live parent, not
    # refixpointed from scratch.
    assert bottom_up.metrics.counter("dred.models_patched").value > 0


# -- timing series (recorded, never gated) ------------------------------


@pytest.mark.parametrize("mode", ["patched", "scratch"])
def test_retract_timing(benchmark, attach_metrics, mode):
    db = chain_db(CHAINS, LENGTH)
    smaller = db.without_facts(atom("edge", "n0_4", "n0_5"))
    rulebase = parse_program(PATH_RULES)

    if mode == "patched":
        def run():
            engine = PerfectModelEngine(rulebase)
            engine.model(db)
            engine.model(smaller)
            return engine
    else:
        def run():
            engine = PerfectModelEngine(rulebase)
            engine.model(db)
            PerfectModelEngine(rulebase).model(smaller)
            return engine

    engine = benchmark(run)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["chains"] = CHAINS
    benchmark.extra_info["length"] = LENGTH
    attach_metrics(benchmark, engine.metrics)


@pytest.mark.parametrize("engine_name", ["model", "topdown"])
@pytest.mark.parametrize("sensors", SENSOR_SIZES)
def test_counterfactual_timing(benchmark, attach_metrics, engine_name, sensors):
    rulebase = parse_program(REDUNDANCY_RULES)
    db = sensor_db(sensors)
    factory = PerfectModelEngine if engine_name == "model" else TopDownEngine

    def run():
        engine = factory(rulebase)
        assert engine.answers(db, "fragile(S)") == set()
        return engine

    engine = benchmark(run)
    benchmark.extra_info["engine"] = engine_name
    benchmark.extra_info["sensors"] = sensors
    attach_metrics(benchmark, engine.metrics)
