"""E5 — Example 7: Hamiltonian path, the NP-hardness witness.

Claims reproduced:

* correctness — ``R, DB |- YES`` iff the graph has a directed
  Hamiltonian path (validated against an independent Held-Karp
  oracle);
* shape — cost grows exponentially with the node count (the rulebase
  *is* an NP-complete problem), and the hand-written dynamic program
  beats the logic engine by a large constant factor while sharing the
  exponential envelope.  That is exactly what "data-complete for NP"
  predicts on a deterministic machine.

Series reported: time vs n for (a) the PROVE engine on dense random
graphs, (b) the memoized model engine, (c) the Held-Karp baseline.
"""

import pytest

from repro.bench.workloads import random_graph
from repro.engine.model import PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver
from repro.library import graph_db, hamiltonian_rulebase, has_hamiltonian_path

SIZES = [3, 4, 5, 6]
SEED = 2026


def _instance(n):
    nodes, edges = random_graph(n, 0.5, SEED + n)
    return nodes, edges, graph_db(nodes, edges)


@pytest.mark.parametrize("n", SIZES)
def test_hamiltonian_prove_engine(benchmark, n):
    nodes, edges, db = _instance(n)
    rulebase = hamiltonian_rulebase()
    expected = has_hamiltonian_path(nodes, edges)

    def run():
        return LinearStratifiedProver(rulebase).ask(db, "yes")

    assert benchmark(run) is expected
    benchmark.extra_info["n"] = n
    benchmark.extra_info["has_path"] = expected


@pytest.mark.parametrize("n", SIZES)
def test_hamiltonian_model_engine(benchmark, n):
    nodes, edges, db = _instance(n)
    rulebase = hamiltonian_rulebase()
    expected = has_hamiltonian_path(nodes, edges)

    def run():
        return PerfectModelEngine(rulebase).ask(db, "yes")

    assert benchmark(run) is expected


@pytest.mark.parametrize("n", SIZES + [8, 10])
def test_hamiltonian_heldkarp_baseline(benchmark, n):
    nodes, edges, _ = _instance(n)

    def run():
        return has_hamiltonian_path(nodes, edges)

    benchmark(run)
    benchmark.extra_info["n"] = n


@pytest.mark.parametrize("n", [3, 4, 5])
def test_hamiltonian_negative_instances(benchmark, n):
    """Sparse graphs with no path: the search must exhaust all orders."""
    nodes = [f"v{index}" for index in range(n)]
    edges = [("v0", target) for target in nodes[1:]]  # a star: no path for n>2
    db = graph_db(nodes, edges)
    rulebase = hamiltonian_rulebase()
    expected = has_hamiltonian_path(nodes, edges)

    def run():
        return LinearStratifiedProver(rulebase).ask(db, "yes")

    assert benchmark(run) is expected
