"""E14 — extension: hypothetical deletions (the [4] EXPTIME variant).

The paper's introduction notes that allowing hypothetical *deletions*
raises data-complexity from PSPACE to EXPTIME.  This bench exercises
the extension end to end on a redundancy-analysis workload: "would the
alarm still fire with sensor X removed?" — one counterfactual deletion
per sensor — and scales the sensor count.

Series reported: time vs number of sensors for the top-down engine
(the only engine covering the extension), plus the classification
check (EXPTIME).
"""

import pytest

from repro.analysis.classify import classify
from repro.core.database import Database
from repro.core.parser import parse_program
from repro.engine.topdown import TopDownEngine

SIZES = [2, 4, 8]


def redundancy_rulebase():
    return parse_program(
        """
        alarm :- wired(S), live(S).
        fragile(S) :- wired(S), ~still_alarm(S).
        still_alarm(S) :- wired(S), alarm[del: live(S)].
        """
    )


def sensor_db(sensors: int, live: int) -> Database:
    names = [f"s{index}" for index in range(sensors)]
    return Database.from_relations(
        {"wired": names, "live": names[:live]}
    )


@pytest.mark.parametrize("sensors", SIZES)
def test_redundancy_analysis(benchmark, sensors):
    rulebase = redundancy_rulebase()
    db = sensor_db(sensors, live=sensors)

    def run():
        return TopDownEngine(rulebase).answers(db, "fragile(S)")

    fragile = benchmark(run)
    # Every sensor live: removing any one of >= 2 still fires the alarm.
    assert fragile == set()
    benchmark.extra_info["sensors"] = sensors


@pytest.mark.parametrize("sensors", SIZES)
def test_single_point_of_failure(benchmark, sensors):
    rulebase = redundancy_rulebase()
    db = sensor_db(sensors, live=1)  # only s0 is live

    def run():
        return TopDownEngine(rulebase).answers(db, "fragile(S)")

    assert benchmark(run) == {("s0",)}


def test_classification_is_exptime(benchmark):
    def run():
        return classify(redundancy_rulebase()).class_name

    assert benchmark(run) == "EXPTIME"
