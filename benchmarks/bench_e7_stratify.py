"""E7 — Lemma 1: deciding and computing linear stratifications.

Claim reproduced: linear stratifiability is decidable in polynomial
time and the relaxation algorithm produces a stratification in
polynomial time.  The series below scales the number of predicates (at
fixed strata) and the number of strata (at fixed predicates); growth
should stay low-order polynomial — the qualitative opposite of the
evaluation benches.

Series reported: analysis time vs rulebase size; a super-linearity
check asserts the polynomial shape (time grows no faster than
cubically in the size here, with generous slack for timer noise).
"""

import time

import pytest

from repro.analysis.stratify import linear_stratification
from repro.bench.workloads import random_layered_rulebase

PREDICATE_COUNTS = [20, 40, 80, 160, 320]


@pytest.mark.parametrize("predicates", PREDICATE_COUNTS)
def test_stratify_scaling_in_predicates(benchmark, predicates):
    rulebase = random_layered_rulebase(predicates, 4, seed=17)

    def run():
        return linear_stratification(rulebase)

    stratification = benchmark(run)
    assert stratification.k == 4
    benchmark.extra_info["rules"] = len(rulebase)


@pytest.mark.parametrize("strata", [1, 2, 4, 8, 16])
def test_stratify_scaling_in_strata(benchmark, strata):
    rulebase = random_layered_rulebase(64, strata, seed=23)

    def run():
        return linear_stratification(rulebase)

    assert benchmark(run).k == strata


def test_polynomial_shape(benchmark):
    """Doubling the rulebase must not square the runtime (with slack)."""

    def measure(predicates):
        rulebase = random_layered_rulebase(predicates, 4, seed=31)
        start = time.perf_counter()
        linear_stratification(rulebase)
        return time.perf_counter() - start

    def run():
        small = max(measure(40), 1e-5)
        large = max(measure(320), 1e-5)
        return large / small

    ratio = benchmark(run)
    # 8x the predicates; a cubic algorithm would give <= 512x, an
    # exponential one would blow far past it.  Allow noise headroom.
    assert ratio < 2000
