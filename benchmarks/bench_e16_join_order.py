"""E16 — ablation: greedy join ordering of positive premises.

The engines reorder a rule body's positive premises most-bound-first
(a textbook join-planning heuristic).  This bench writes a rule whose
*textual* order is adversarial — an unselective premise first — and
measures evaluation with the optimizer on and off.  Semantics are
unaffected (asserted); only the join order changes.
"""

import time

import pytest

from repro.core.database import Database
from repro.core.parser import parse_program
from repro.engine.topdown import TopDownEngine
from repro.engine.stratified import perfect_model

# Adversarial textual order: the wide cross-product pair first, the
# selective guard last.
BAD_ORDER = parse_program(
    """
    hit(X) :- wide(Y), wide(Z), anchor(X), link(X, Y), link(X, Z).
    """
)


def workload(width: int) -> Database:
    wide = [f"w{index}" for index in range(width)]
    return Database.from_relations(
        {
            "wide": wide,
            "anchor": ["a"],
            "link": [("a", wide[0]), ("a", wide[1])],
        }
    )


@pytest.mark.parametrize("width", [10, 20, 40])
@pytest.mark.parametrize("optimized", [True, False], ids=["greedy", "textual"])
def test_topdown_join_order(benchmark, width, optimized):
    db = workload(width)

    def run():
        engine = TopDownEngine(BAD_ORDER, optimize_joins=optimized)
        return engine.answers(db, "hit(X)")

    assert benchmark(run) == {("a",)}
    benchmark.extra_info["width"] = width
    benchmark.extra_info["optimized"] = optimized


@pytest.mark.parametrize("optimized", [True, False], ids=["greedy", "textual"])
def test_stratified_substrate_join_order(benchmark, optimized):
    db = workload(30)

    def run():
        model = perfect_model(BAD_ORDER, db, optimize_joins=optimized)
        return model.count("hit")

    assert benchmark(run) == 1


def test_greedy_wins(benchmark):
    """The who-wins assertion, measured inline on one instance."""
    db = workload(40)

    def measure(optimized: bool) -> float:
        start = time.perf_counter()
        TopDownEngine(BAD_ORDER, optimize_joins=optimized).answers(db, "hit(X)")
        return time.perf_counter() - start

    def run():
        return measure(True), measure(False)

    greedy, textual = benchmark(run)
    assert greedy < textual
    benchmark.extra_info["speedup"] = round(textual / max(greedy, 1e-9), 1)
