"""E16 — ablation: join ordering of positive premises.

The engines reorder a rule body's positive premises before joining.
Two planners are available: ``greedy`` (most-bound-first, the textbook
heuristic) and ``cost`` (binding-selectivity estimates over live
relation sizes, the default).  This bench writes a rule whose *textual*
order is adversarial — an unselective premise first — and measures
evaluation under each policy.  Semantics are unaffected (asserted);
only the join order changes.

The cost planner also has to win its keep: ``test_cost_no_slower`` pins
it at no-slower-than-greedy on this workload, and
``bench_e17_analysis.py`` holds a workload where greedy actively loses.
"""

import time

import pytest

from repro.core.database import Database
from repro.core.parser import parse_program
from repro.engine.topdown import TopDownEngine
from repro.engine.stratified import perfect_model

# Adversarial textual order: the wide cross-product pair first, the
# selective guard last.
BAD_ORDER = parse_program(
    """
    hit(X) :- wide(Y), wide(Z), anchor(X), link(X, Y), link(X, Z).
    """
)

MODES = ["cost", "greedy", False]
MODE_IDS = ["cost", "greedy", "textual"]


def workload(width: int) -> Database:
    wide = [f"w{index}" for index in range(width)]
    return Database.from_relations(
        {
            "wide": wide,
            "anchor": ["a"],
            "link": [("a", wide[0]), ("a", wide[1])],
        }
    )


@pytest.mark.parametrize("width", [10, 20, 40])
@pytest.mark.parametrize("mode", MODES, ids=MODE_IDS)
def test_topdown_join_order(benchmark, width, mode):
    db = workload(width)

    def run():
        engine = TopDownEngine(BAD_ORDER, optimize_joins=mode)
        return engine.answers(db, "hit(X)")

    assert benchmark(run) == {("a",)}
    benchmark.extra_info["width"] = width
    benchmark.extra_info["mode"] = mode if mode else "textual"


@pytest.mark.parametrize("mode", MODES, ids=MODE_IDS)
def test_stratified_substrate_join_order(benchmark, mode):
    db = workload(30)

    def run():
        model = perfect_model(BAD_ORDER, db, optimize_joins=mode)
        return model.count("hit")

    assert benchmark(run) == 1


def _topdown_seconds(mode, db) -> float:
    start = time.perf_counter()
    TopDownEngine(BAD_ORDER, optimize_joins=mode).answers(db, "hit(X)")
    return time.perf_counter() - start


def test_planned_orders_beat_textual(benchmark):
    """The who-wins assertion, measured inline on one instance."""
    db = workload(40)

    def run():
        return (
            _topdown_seconds("cost", db),
            _topdown_seconds("greedy", db),
            _topdown_seconds(False, db),
        )

    cost, greedy, textual = benchmark(run)
    assert cost < textual
    assert greedy < textual
    benchmark.extra_info["cost_speedup"] = round(textual / max(cost, 1e-9), 1)
    benchmark.extra_info["greedy_speedup"] = round(
        textual / max(greedy, 1e-9), 1
    )


def test_cost_no_slower_than_greedy(benchmark):
    """Acceptance gate: the default planner must not regress E16.

    Measured with a small margin — plan caching makes cost mode
    actually *faster* here, but the assertion only demands parity.
    """
    db = workload(40)

    def run():
        cost = min(_topdown_seconds("cost", db) for _ in range(3))
        greedy = min(_topdown_seconds("greedy", db) for _ in range(3))
        return cost, greedy

    cost, greedy = benchmark(run)
    assert cost <= greedy * 1.25
    benchmark.extra_info["cost_ms"] = round(cost * 1e3, 2)
    benchmark.extra_info["greedy_ms"] = round(greedy * 1e3, 2)
