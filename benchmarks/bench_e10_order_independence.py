"""E10 — Sections 6.2.1 / 6.2.3: hypothetical orders and genericity.

Claims reproduced:

* the order-assertion rules let a rulebase count an *unordered* domain
  (the domain-parity query answers correctly with no order in the
  database);
* the answer is identical under every domain renaming — re-ordering is
  renaming, and generic queries cannot tell (Section 6.2.3);
* cost: negative instances must try many orders, so odd domains (where
  the walk always refutes) are the expensive direction, growing with
  n! in the worst case.

Series reported: time vs domain size; a renaming-invariance check.
"""

import pytest

from repro.core.database import Database
from repro.engine.prove import LinearStratifiedProver
from repro.queries.generic import domain_permutations
from repro.queries.order import domain_parity_rulebase

SIZES = [2, 3, 4, 5]


def domain_db(size: int) -> Database:
    return Database.from_relations({"dom": [f"e{index}" for index in range(size)]})


@pytest.mark.parametrize("size", SIZES)
def test_domain_parity_via_hypothetical_order(benchmark, size):
    rulebase = domain_parity_rulebase()
    db = domain_db(size)

    def run():
        return LinearStratifiedProver(rulebase).ask(db, "domeven")

    assert benchmark(run) is (size % 2 == 0)
    benchmark.extra_info["domain_size"] = size


@pytest.mark.parametrize("size", [3, 4])
def test_order_independence_under_renamings(benchmark, size):
    rulebase = domain_parity_rulebase()
    db = domain_db(size)

    def run():
        engine = LinearStratifiedProver(rulebase)
        baseline = engine.ask(db, "domeven")
        for mapping in domain_permutations(db, trials=3, seed=size):
            renamed_engine = LinearStratifiedProver(rulebase)
            if renamed_engine.ask(db.rename(mapping), "domeven") != baseline:
                return False
        return True

    assert benchmark(run) is True
