"""E15 — extension: the cost of explanations.

Proof objects replay the winning derivation on top of the decision
procedure, so explaining should cost a small multiple of deciding (the
engine's memo tables prune failed branches for both).  This bench
measures decide-vs-explain on the paper's workloads and asserts the
produced proofs verify under the independent Definition 3 checker.
"""

import pytest

from repro.core.database import Database
from repro.engine.proofs import Explainer, verify_proof
from repro.engine.topdown import TopDownEngine
from repro.library import (
    addition_chain_rulebase,
    coloring_db,
    coloring_rulebase,
    graph_db,
    hamiltonian_rulebase,
)

CHAIN_LENGTHS = [8, 16, 32]


@pytest.mark.parametrize("n", CHAIN_LENGTHS)
def test_decide_chain(benchmark, n):
    rulebase = addition_chain_rulebase(n)

    def run():
        return TopDownEngine(rulebase).ask(Database(), "a1")

    assert benchmark(run) is True


@pytest.mark.parametrize("n", CHAIN_LENGTHS)
def test_explain_chain(benchmark, n):
    rulebase = addition_chain_rulebase(n)

    def run():
        return Explainer(rulebase).explain(Database(), "a1")

    proof = benchmark(run)
    assert proof is not None
    assert proof.depth() >= n


@pytest.mark.parametrize("n", [3, 4, 5])
def test_explain_hamiltonian(benchmark, n):
    rulebase = hamiltonian_rulebase()
    nodes = [f"v{index}" for index in range(n)]
    edges = list(zip(nodes, nodes[1:]))
    db = graph_db(nodes, edges)

    def run():
        return Explainer(rulebase).explain(db, "yes")

    proof = benchmark(run)
    assert proof is not None


def test_verify_is_cheap(benchmark):
    """Verification walks the finished tree once (negations aside)."""
    rulebase = coloring_rulebase()
    db = coloring_db(
        ["a", "b", "c", "d"],
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")],
        ["red", "green"],
    )
    proof = Explainer(rulebase).explain(db, "yes")
    assert proof is not None

    def run():
        return verify_proof(rulebase, proof)

    assert benchmark(run) is True
