"""Turn a pytest-benchmark JSON dump into per-experiment series tables.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python benchmarks/report.py bench.json

Prints, per experiment file, one row per benchmark with its sweep
parameters (from ``benchmark.extra_info``) and the median time — the
"series" each EXPERIMENTS.md row describes, regenerated from raw data.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict


def _format_seconds(value: float) -> str:
    if value < 1e-3:
        return f"{value * 1e6:8.1f}us"
    if value < 1:
        return f"{value * 1e3:8.2f}ms"
    return f"{value:8.2f}s "


def main(path: str) -> int:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)

    by_experiment: dict[str, list[dict]] = defaultdict(list)
    for bench in payload.get("benchmarks", []):
        # fullname looks like "benchmarks/bench_e5_hamiltonian.py::test_x[3]"
        experiment = bench["fullname"].split("::")[0].split("/")[-1]
        by_experiment[experiment].append(bench)

    for experiment in sorted(by_experiment):
        print(f"== {experiment} ==")
        rows = by_experiment[experiment]
        rows.sort(key=lambda bench: bench["fullname"])
        for bench in rows:
            name = bench["fullname"].split("::")[-1]
            median = bench["stats"]["median"]
            extras = bench.get("extra_info") or {}
            extra_text = " ".join(
                f"{key}={value}" for key, value in sorted(extras.items())
            )
            print(f"  {name:<55} {_format_seconds(median)}  {extra_text}")
        print()
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    sys.exit(main(sys.argv[1]))
