"""Turn a pytest-benchmark JSON dump into per-experiment series tables.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python benchmarks/report.py bench.json
    python benchmarks/report.py bench.json --merge-into BENCH_ALL.json

Prints, per experiment file, one row per benchmark with its sweep
parameters (from ``benchmark.extra_info``) and the median time — the
"series" each EXPERIMENTS.md row describes, regenerated from raw data.
Benchmarks that attach no parameters are annotated
``(unparameterized)`` so a missing ``extra_info`` is visible rather
than silently blank.

``--merge-into FILE`` additionally folds the run into a cumulative
``BENCH_*.json``: each invocation appends one entry to the file's
``runs`` list carrying the source path, the dump's timestamp, and per
benchmark the median plus the full ``extra_info`` (including any
engine-metric snapshot attached via
``benchmarks.conftest.attach_metrics``).  This is how longitudinal
numbers survive individual bench.json files being overwritten.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from typing import Optional


def _format_seconds(value: float) -> str:
    if value < 1e-3:
        return f"{value * 1e6:8.1f}us"
    if value < 1:
        return f"{value * 1e3:8.2f}ms"
    return f"{value:8.2f}s "


def _extra_text(extras: dict) -> str:
    """Render extra_info for a table row; flag missing parameters."""
    if not extras:
        return "(unparameterized)"
    parts = []
    for key, value in sorted(extras.items()):
        if isinstance(value, dict):
            # e.g. an attached metrics snapshot — summarize, don't dump.
            parts.append(f"{key}[{len(value)}]")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def merge_runs(payload: dict, source: str, merge_path: str) -> None:
    """Append this dump's medians + extra_info to a cumulative file.

    The cumulative file is ``{"runs": [...]}``; unknown existing
    content is preserved (we only append to ``runs``).
    """
    try:
        with open(merge_path, encoding="utf-8") as handle:
            merged = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        merged = {}
    runs = merged.setdefault("runs", [])
    runs.append(
        {
            "source": source,
            "datetime": payload.get("datetime"),
            "benchmarks": [
                {
                    "fullname": bench["fullname"],
                    "median": bench["stats"]["median"],
                    "extra_info": bench.get("extra_info") or {},
                }
                for bench in payload.get("benchmarks", [])
            ],
        }
    )
    with open(merge_path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(path: str, merge_into: Optional[str] = None) -> int:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)

    by_experiment: dict[str, list[dict]] = defaultdict(list)
    for bench in payload.get("benchmarks", []):
        # fullname looks like "benchmarks/bench_e5_hamiltonian.py::test_x[3]"
        experiment = bench["fullname"].split("::")[0].split("/")[-1]
        by_experiment[experiment].append(bench)

    for experiment in sorted(by_experiment):
        print(f"== {experiment} ==")
        rows = by_experiment[experiment]
        rows.sort(key=lambda bench: bench["fullname"])
        for bench in rows:
            name = bench["fullname"].split("::")[-1]
            median = bench["stats"]["median"]
            extras = bench.get("extra_info") or {}
            print(
                f"  {name:<55} {_format_seconds(median)}  {_extra_text(extras)}"
            )
        print()

    if merge_into:
        merge_runs(payload, path, merge_into)
        print(f"merged into {merge_into}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("path", help="pytest-benchmark JSON dump")
    parser.add_argument(
        "--merge-into",
        metavar="FILE",
        default=None,
        help="append this run's medians and extra_info to a "
        "cumulative BENCH_*.json",
    )
    options = parser.parse_args()
    sys.exit(main(options.path, merge_into=options.merge_into))
