"""E9 — Theorem 1 upper bound (Section 5.2, Appendix A).

Claims reproduced:

* the PROVE cascade agrees with the reference evaluators (sampled
  here; exhaustively in the test suite);
* *proof-sequence length is polynomial* for linear rulebases
  (Theorem 3 of Appendix A): the sigma-goal counter grows linearly on
  the Example 4 chains and polynomially on the Example 5 order walks,
  instead of the exponential growth evaluation itself can exhibit.

Series reported: sigma goals and time vs instance size.
"""

import pytest

from repro.core.database import Database
from repro.engine.model import PerfectModelEngine
from repro.engine.prove import LinearStratifiedProver
from repro.library import (
    addition_chain_rulebase,
    order_db,
    order_iteration_rulebase,
    parity_db,
    parity_rulebase,
)


@pytest.mark.parametrize("n", [8, 16, 32, 64])
def test_proof_sequence_length_linear_on_chains(benchmark, n):
    rulebase = addition_chain_rulebase(n)

    def run():
        prover = LinearStratifiedProver(rulebase)
        prover.ask(Database(), "a1")
        return prover.stats.sigma_goals

    goals = benchmark(run)
    assert goals <= 4 * n + 8  # Theorem 3: polynomial (here linear)
    benchmark.extra_info["sigma_goals"] = goals


@pytest.mark.parametrize("size", [2, 4, 6])
def test_theorem3_envelope(benchmark, size):
    """Measured goal counts stay inside the concrete Appendix A bound
    (explicit constants; see repro.analysis.bounds)."""
    from repro.analysis.bounds import proof_sequence_bound
    from repro.analysis.stratify import linear_stratification

    rulebase = parity_rulebase()
    stratification = linear_stratification(rulebase)
    db = parity_db([f"x{index}" for index in range(size)])

    def run():
        prover = LinearStratifiedProver(rulebase, stratification)
        prover.ask(db, "even")
        return prover.stats.sigma_goals, len(prover.domain(db))

    goals, domain_size = benchmark(run)
    bound = proof_sequence_bound(stratification, 1, domain_size)
    assert goals <= bound.value
    benchmark.extra_info["sigma_goals"] = goals
    benchmark.extra_info["theorem3_bound"] = bound.value


@pytest.mark.parametrize("n", [4, 8, 16])
def test_proof_sequence_length_on_order_walks(benchmark, n):
    rulebase = order_iteration_rulebase()
    db = order_db(n)

    def run():
        prover = LinearStratifiedProver(rulebase)
        prover.ask(db, "a")
        return prover.stats.sigma_goals

    goals = benchmark(run)
    assert goals <= 4 * n * n + 16
    benchmark.extra_info["sigma_goals"] = goals


@pytest.mark.parametrize("n", [3, 5])
def test_prove_vs_model_agreement_sampled(benchmark, n):
    rulebase = parity_rulebase()
    db = parity_db([f"x{index}" for index in range(n)])

    def run():
        prove = LinearStratifiedProver(rulebase).ask(db, "even")
        model = PerfectModelEngine(rulebase).ask(db, "even")
        return prove, model

    prove, model = benchmark(run)
    assert prove == model == (n % 2 == 0)
