"""Quickstart: hypothetical queries over a university database.

Reproduces Examples 1-3 of Bonner (PODS 1989).  Run with::

    python examples/quickstart.py
"""

from repro import Database, Session, classify, parse_program

# ----------------------------------------------------------------------
# A rulebase with an ordinary Horn rule and a hypothetical rule.
# ``grad(S)`` — student S can graduate;
# ``within_one(S)`` — S could graduate after one more course
#                     (the hypothetical premise of Example 2).
# ----------------------------------------------------------------------
RULES = parse_program(
    """
    grad(S) :- take(S, his101), take(S, eng201), take(S, cs250).
    within_one(S) :- student(S), grad(S)[add: take(S, C)].
    """
)

DB = Database.from_relations(
    {
        "student": ["tony", "sue", "pat"],
        "take": [
            ("tony", "his101"),
            ("tony", "eng201"),
            ("sue", "his101"),
            ("sue", "eng201"),
            ("sue", "cs250"),
            ("pat", "his101"),
        ],
    }
)


def main() -> None:
    session = Session(RULES)
    print(f"engine selected: {session.engine_name}")
    print(f"classification:  {classify(RULES)}")
    print()

    # Example 1: "If Tony took cs250, would he be eligible to graduate?"
    question = "grad(tony)[add: take(tony, cs250)]"
    print(f"?- {question}")
    print("   ->", session.ask(DB, question))

    # The same question for pat, who is two courses short.
    question = "grad(pat)[add: take(pat, cs250)]"
    print(f"?- {question}")
    print("   ->", session.ask(DB, question))
    print()

    # Example 2: "Retrieve those students who could graduate if they
    # took one more course."
    print("?- within_one(S)")
    for (student,) in sorted(session.answers(DB, "within_one(S)")):
        print(f"   -> {student}")
    print()

    # Example 3: hypothetical queries inside rule premises — the joint
    # math-and-physics degree.  This rulebase is NOT linearly
    # stratified (within1/grad recurse non-linearly), so the session
    # transparently switches to the general-language engine.
    degree_rules = parse_program(
        """
        within1(S, D) :- grad(S, D)[add: take(S, C)].
        grad(S, mathphys) :- within1(S, math), within1(S, phys).
        grad(S, math) :- take(S, alg1), take(S, anal1).
        grad(S, phys) :- take(S, mech1), take(S, em1).
        """
    )
    degree_db = Database.from_relations(
        {
            "take": [
                ("ada", "alg1"),
                ("ada", "mech1"),
                ("bob", "alg1"),
                ("bob", "anal1"),
                ("bob", "mech1"),
                ("cyd", "alg1"),
            ]
        }
    )
    degree_session = Session(degree_rules)
    print(f"degree rulebase: {classify(degree_rules)}")
    print(f"engine selected: {degree_session.engine_name}")
    print("?- grad(S, mathphys)")
    for (student,) in sorted(degree_session.answers(degree_db, "grad(S, mathphys)")):
        print(f"   -> {student}")


if __name__ == "__main__":
    main()
