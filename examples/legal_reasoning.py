"""Legal reasoning with hypothetical rules.

The paper's introduction motivates hypothetical premises with the legal
domain: Gabbay's reading of the British Nationality Act — *"you are
eligible for citizenship if your father would be eligible if he were
still alive"* — and McCarty's contract/tax consultation systems.

This example encodes a small statute of that shape:

* citizens by birthplace or by descent from a citizen parent;
* the counterfactual clause: a deceased parent is treated *as if
  alive* when assessing the child's claim — a hypothetical insertion;
* a benefits clause with negation-by-failure: residents who are not
  citizens may apply for naturalization.

Run with::

    python examples/legal_reasoning.py
"""

from repro import Database, Session, classify, parse_program

STATUTE = parse_program(
    """
    % Citizenship by birth on the territory, for the living.
    citizen(X) :- born_in_territory(X), alive(X).

    % Citizenship by descent from a citizen parent.
    citizen(X) :- parent(P, X), citizen(P), alive(X).

    % The counterfactual clause: if a deceased parent WOULD be a
    % citizen were they still alive, the child may still claim descent.
    citizen(X) :- parent(P, X), deceased(P), alive(X),
                  citizen(P)[add: alive(P)].

    % Naturalization track: residents who cannot claim citizenship.
    may_naturalize(X) :- resident(X), alive(X), ~citizen(X).
    """
)

FAMILY = Database.from_relations(
    {
        # george was born on the territory but died before his
        # grandchild's claim is assessed.
        "born_in_territory": ["george"],
        "parent": [("george", "diana"), ("diana", "ella")],
        "alive": ["diana", "ella", "omar"],
        "deceased": ["george"],
        "resident": ["ella", "omar"],
    }
)


def main() -> None:
    print(f"statute classification: {classify(STATUTE)}")
    session = Session(STATUTE)
    print(f"engine: {session.engine_name}")
    print()

    print("citizens:")
    for (person,) in sorted(session.answers(FAMILY, "citizen(X)")):
        print(f"   -> {person}")
    print()

    # diana's claim rests on the counterfactual: george is deceased,
    # but WOULD be a citizen if he were alive.
    print("?- citizen(george)                ->",
          session.ask(FAMILY, "citizen(george)"))
    print("?- citizen(george)[add: alive(george)] ->",
          session.ask(FAMILY, "citizen(george)[add: alive(george)]"))
    print()

    print("may apply for naturalization:")
    for (person,) in sorted(session.answers(FAMILY, "may_naturalize(X)")):
        print(f"   -> {person}")

    # Sanity: the descent chain works through the counterfactual.
    assert session.ask(FAMILY, "citizen(diana)")
    assert session.ask(FAMILY, "citizen(ella)")
    assert not session.ask(FAMILY, "citizen(george)")  # not alive
    assert session.answers(FAMILY, "may_naturalize(X)") == {("omar",)}


if __name__ == "__main__":
    main()
