"""Counting without arithmetic: parity via hypothetical copying.

Two constructions from the paper:

* Example 6 — ``EVEN`` holds iff the ``a`` relation has evenly many
  tuples: the rulebase copies ``a`` into a scratch relation one tuple
  at a time, flipping EVEN/ODD as it goes.
* Section 6.2.1 — counting an *unordered domain* by hypothetically
  asserting a linear order and walking it; genericity guarantees every
  asserted order gives the same answer.

Run with::

    python examples/parity_counting.py
"""

from repro import Database, Session, classify
from repro.library import parity_db, parity_rulebase
from repro.queries.order import domain_parity_rulebase


def example6() -> None:
    rules = parity_rulebase()
    print(f"Example 6 rulebase: {classify(rules)}")
    session = Session(rules)
    print(f"{'|a|':>4} {'even':>6} {'odd':>6}")
    for size in range(7):
        db = parity_db([f"item{index}" for index in range(size)])
        even = session.ask(db, "even")
        odd = session.ask(db, "odd")
        print(f"{size:>4} {str(even):>6} {str(odd):>6}")
        assert even == (size % 2 == 0)
        assert odd == (size % 2 == 1)


def order_independence() -> None:
    rules = parity_rulebase()
    session = Session(rules)
    db = parity_db(["w", "x", "y", "z"])
    renamed = db.rename({"w": "z", "z": "w", "x": "y", "y": "x"})
    print("\norder independence (Example 6 / Section 6.2.3):")
    print(f"  even on original domain: {session.ask(db, 'even')}")
    print(f"  even on renamed domain:  {session.ask(renamed, 'even')}")


def hypothetical_order() -> None:
    rules = domain_parity_rulebase()
    print(f"\nSection 6.2.1 rulebase: {classify(rules)}")
    session = Session(rules)
    print("domain parity via hypothetically asserted orders:")
    print(f"{'|dom|':>6} {'domeven':>8}")
    for size in range(1, 6):
        db = Database.from_relations(
            {"dom": [f"e{index}" for index in range(size)]}
        )
        result = session.ask(db, "domeven")
        print(f"{size:>6} {str(result):>8}")
        assert result == (size % 2 == 0)


if __name__ == "__main__":
    example6()
    order_independence()
    hypothetical_order()
