"""Explanations: derivations for hypothetical conclusions.

Runs the legal-domain statute from ``legal_reasoning.py`` and prints a
full derivation of the counterfactual citizenship claim — the rule
applications, the hypothetical world change (``+{alive(george)}``),
and the negation-by-failure steps.  The proof object is then verified
by an independent Definition 3 checker.

Then asks the same questions of the bottom-up engine's provenance
layer (docs/OBSERVABILITY.md): ``why`` replays a recorded derivation
without re-searching, ``why_not`` explains an underivable claim, and
``assumptions`` reports which hypothetical facts the derivation
leaned on.

Also demonstrates the Kripke-semantics validator of Section 3's
footnote: persistence and the implication law, checked world by world
on a small negation-free rulebase.

Run with::

    python examples/explanations.py
"""

from repro import (
    Database,
    Explainer,
    PerfectModelEngine,
    format_assumptions,
    format_proof,
    format_why_not,
    parse_program,
    verify_proof,
)
from repro.semantics import KripkeStructure

STATUTE = parse_program(
    """
    citizen(X) :- born_in_territory(X), alive(X).
    citizen(X) :- parent(P, X), citizen(P), alive(X).
    citizen(X) :- parent(P, X), deceased(P), alive(X),
                  citizen(P)[add: alive(P)].
    """
)

FAMILY = Database.from_relations(
    {
        "born_in_territory": ["george"],
        "parent": [("george", "diana")],
        "alive": ["diana"],
        "deceased": ["george"],
    }
)


def explain_the_counterfactual() -> None:
    explainer = Explainer(STATUTE)
    proof = explainer.explain(FAMILY, "citizen(diana)")
    assert proof is not None
    print("derivation of citizen(diana):")
    print(format_proof(proof))
    print()
    print("independent check against Definition 3:",
          verify_proof(STATUTE, proof))
    print(f"proof size: {proof.size()} nodes, depth {proof.depth()}")


def ask_the_provenance_layer() -> None:
    # The same questions, answered from recorded why-provenance edges
    # instead of a fresh top-down search.
    engine = PerfectModelEngine(STATUTE, provenance=True)
    proof = engine.why(FAMILY, "citizen(diana)")
    assert proof is not None and verify_proof(STATUTE, proof)
    print()
    print("replayed from recorded provenance (no re-search):")
    print(format_proof(proof))
    print()
    print(format_why_not(engine.why_not(FAMILY, "citizen(zeno)")))
    assumed = engine.assumptions(FAMILY, "citizen(diana)")
    print()
    print("the derivation hypothetically assumed —")
    print(format_assumptions(assumed))


def check_intuitionistic_reading() -> None:
    # Footnote 3 of the paper: the system has an intuitionistic
    # semantics.  Verify persistence and the Kripke implication clause
    # exhaustively on a small negation-free rulebase.
    rules = parse_program(
        """
        goal :- b1, b2.
        step1 :- step2[add: b1].
        step2 :- goal[add: b2].
        """
    )
    structure = KripkeStructure.build(rules, Database())
    print()
    print(f"Kripke structure: {len(structure.worlds)} worlds")
    print("persistence law:  ",
          "holds" if structure.check_persistence() is None else "VIOLATED")
    print("implication law:  ",
          "holds" if structure.check_implication_law() is None else "VIOLATED")


if __name__ == "__main__":
    explain_the_counterfactual()
    ask_the_provenance_layer()
    check_intuitionistic_reading()
