"""The Theorem 1 lower bound, executed (Section 5.1).

Builds the cascade ``M_2 (copy & query) -> M_1 (contains a 1)``,
encodes it as a two-stratum hypothetical rulebase plus a database per
input string, and verifies formula (3) of the paper::

    R(L), DB(s) |- ACCEPT   iff   s in L

against the direct oracle-machine simulator.  The complement cascade
exercises the ``~ORACLE`` rule — the stratum boundary.

Run with::

    python examples/machine_encoding.py
"""

from repro import Session, classify, linear_stratification
from repro.machines import (
    cascade_database,
    cascade_rulebase,
    contains_one_cascade,
    no_ones_cascade,
    suggested_time_bound,
)


def demonstrate(cascade, description: str) -> None:
    rulebase = cascade_rulebase(cascade)
    stratification = linear_stratification(rulebase)
    print(f"{description}")
    print(f"  rules: {len(rulebase)}, constant-free: {rulebase.is_constant_free}")
    print(f"  classification: {classify(rulebase)}")
    print(f"  strata: {stratification.k} (one per machine, as Theorem 1 builds)")
    session = Session(rulebase, "prove")
    print(f"  {'input':>7} {'rulebase':>9} {'simulator':>10}")
    for text in ["", "0", "1", "01", "10"]:
        bound = suggested_time_bound(cascade.k, len(text))
        db = cascade_database(cascade, list(text), bound)
        from_rules = session.ask(db, "accept")
        from_simulator = cascade.accepts(list(text), bound)
        print(f"  {text!r:>7} {str(from_rules):>9} {str(from_simulator):>10}")
        assert from_rules == from_simulator
    print()


def main() -> None:
    demonstrate(
        contains_one_cascade(),
        "k = 2 cascade: accept iff the input contains a 1 (oracle relay)",
    )
    demonstrate(
        no_ones_cascade(),
        "k = 2 cascade: accept iff the input contains NO 1 (complement "
        "via ~ORACLE)",
    )

    # Show a slice of the generated rulebase, Example 9 style.
    rulebase = cascade_rulebase(no_ones_cascade())
    print("a sample of the generated rules:")
    for item in list(rulebase)[:4]:
        print(f"  {item}")
    print("  ...")
    oracle_rules = [
        item for item in rulebase if item.head.predicate.startswith("oracle")
    ]
    for item in oracle_rules:
        print(f"  {item}")


if __name__ == "__main__":
    main()
