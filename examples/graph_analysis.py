"""Hamiltonian-path analysis with hypothetical rules (Examples 7-8).

The rulebase searches for a Hamiltonian path by hypothetically marking
visited nodes — the paper's NP-hardness witness.  Adding the single
rule ``no :- ~yes`` makes the same rulebase decide the complement and
jump a level in the polynomial hierarchy.

Run with::

    python examples/graph_analysis.py
"""

from repro import Session, classify, parse_program
from repro.library import graph_db, has_hamiltonian_path

RULES = parse_program(
    """
    yes :- node(X), path(X)[add: pnode(X)].
    path(X) :- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].
    path(X) :- ~select(Y).
    select(Y) :- node(Y), ~pnode(Y).
    """
)

COMPLEMENT = RULES + parse_program("no :- ~yes.")

GRAPHS = {
    "path a->b->c": (["a", "b", "c"], [("a", "b"), ("b", "c")]),
    "star from a": (["a", "b", "c"], [("a", "b"), ("a", "c")]),
    "3-cycle": (["a", "b", "c"], [("a", "b"), ("b", "c"), ("c", "a")]),
    "two islands": (["a", "b", "c", "d"], [("a", "b"), ("c", "d")]),
    "detour": (
        ["a", "b", "c", "d"],
        [("a", "b"), ("b", "c"), ("c", "d"), ("b", "d")],
    ),
}


def main() -> None:
    print(f"Example 7 rulebase: {classify(RULES)}")
    print(f"Example 8 rulebase: {classify(COMPLEMENT)}")
    print()

    session = Session(RULES)
    complement_session = Session(COMPLEMENT)
    print(f"{'graph':<14} {'rulebase':>8} {'oracle':>7} {'~yes':>6}")
    for name, (nodes, edges) in GRAPHS.items():
        db = graph_db(nodes, edges)
        from_rules = session.ask(db, "yes")
        from_oracle = has_hamiltonian_path(nodes, edges)
        from_complement = complement_session.ask(db, "no")
        print(
            f"{name:<14} {str(from_rules):>8} {str(from_oracle):>7} "
            f"{str(from_complement):>6}"
        )
        assert from_rules == from_oracle
        assert from_complement == (not from_oracle)
    print()

    # Inspect a search: which nodes are still selectable after fixing
    # a partial path hypothetically?
    nodes, edges = GRAPHS["detour"]
    db = graph_db(nodes, edges)
    print("selectable nodes with a, b already on the path:")
    from repro import atom

    marked = db.with_facts(atom("pnode", "a"), atom("pnode", "b"))
    for (node,) in sorted(session.answers(marked, "select(Y)")):
        print(f"   -> {node}")


if __name__ == "__main__":
    main()
