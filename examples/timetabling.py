"""Exam timetabling as hypothetical graph coloring.

The same construction pattern as Example 7 (record choices by
hypothetical insertion, close with negation-by-failure), applied to a
classic scheduling problem: assign each exam a slot so that no student
has two exams in the same slot.  Exams sharing a student form the
conflict graph; slots are the colors.

Run with::

    python examples/timetabling.py
"""

from itertools import combinations

from repro import Session, classify
from repro.library import coloring_db, coloring_rulebase, is_colorable

# Which student sits which exams.
ENROLMENT = {
    "ada": ["algebra", "logic", "databases"],
    "bob": ["logic", "compilers"],
    "cyd": ["databases", "compilers", "networks"],
    "dee": ["algebra", "networks"],
}


def conflict_graph() -> tuple[list[str], list[tuple[str, str]]]:
    exams = sorted({exam for exams in ENROLMENT.values() for exam in exams})
    edges = set()
    for student_exams in ENROLMENT.values():
        for left, right in combinations(sorted(student_exams), 2):
            edges.add((left, right))
    return exams, sorted(edges)


def main() -> None:
    rules = coloring_rulebase()
    print(f"rulebase: {classify(rules)}")
    session = Session(rules)
    exams, conflicts = conflict_graph()
    print(f"{len(exams)} exams, {len(conflicts)} conflicts")
    for slot_count in (1, 2, 3, 4):
        slots = [f"slot{index}" for index in range(1, slot_count + 1)]
        db = coloring_db(exams, conflicts, slots)
        feasible = session.ask(db, "yes")
        oracle = is_colorable(exams, conflicts, slots)
        marker = "feasible" if feasible else "infeasible"
        print(f"  {slot_count} slot(s): {marker}")
        assert feasible == oracle
    # Show one concrete schedule via a derivation.
    from repro import Explainer, format_proof

    slots = ["slot1", "slot2", "slot3"]
    db = coloring_db(exams, conflicts, slots)
    proof = Explainer(rules).explain(db, "yes")
    if proof is not None:
        assignments = [
            line.strip()
            for line in format_proof(proof).splitlines()
            if "+{col(" in line
        ]
        print("one valid schedule (from the proof):")
        for line in assignments:
            print(f"  {line}")


if __name__ == "__main__":
    main()
