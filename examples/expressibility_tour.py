"""A guided tour of the Section 6 expressibility construction.

Walks the full pipeline of Lemma 2 on an *unordered* domain:

1. hypothetically assert a linear order (Section 6.2.1);
2. lift it to tuple counters (Section 6.2.2);
3. encode the database as a bitmap via ``INITIAL`` rules;
4. simulate a Turing machine cascade against the derived counter —
   first a single NP machine (k = 1), then a genuine oracle cascade
   (k = 2), whose compiled rulebase classifies as Sigma_2^P.

Everything is constant-free, so genericity guarantees the same answer
under every domain renaming — which the script also checks.

Run with::

    python examples/expressibility_tour.py
"""

from repro import Session, classify
from repro.machines.library import contains_one
from repro.machines.oracle import Cascade
from repro.queries import (
    Signature,
    check_genericity,
    compile_yes_no_query,
    query_database,
    relation_nonempty_machine,
    translating_relay_machine,
)

SIGNATURE = Signature((("p", 1),))


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def k1_nonempty() -> None:
    banner("k = 1: 'is p nonempty?' as a one-stratum rulebase")
    machine = relation_nonempty_machine(SIGNATURE, "p")
    rulebase = compile_yes_no_query(Cascade((machine,)), SIGNATURE)
    print(f"compiled: {len(rulebase)} rules, constant-free: "
          f"{rulebase.is_constant_free}")
    print(f"classification: {classify(rulebase)}")
    session = Session(rulebase, "prove")
    for rows in ([], ["a"], ["a", "b"]):
        db = query_database(SIGNATURE, ["a", "b"], {"p": rows})
        print(f"  p = {rows!r:14} -> yes: {session.ask(db, 'yes')}")


def k2_empty_via_oracle() -> None:
    banner("k = 2: 'is p empty?' through a complemented oracle relay")
    top = translating_relay_machine(SIGNATURE, "p", accept_on_yes=False)
    cascade = Cascade((top, contains_one()))
    rulebase = compile_yes_no_query(cascade, SIGNATURE, extra_time_arity=1)
    print(f"compiled: {len(rulebase)} rules")
    print(f"classification: {classify(rulebase)}  "
          f"(one stratum per machine, as Lemma 2 promises)")
    session = Session(rulebase, "prove")
    for rows in ([], ["a"], ["a", "b"]):
        db = query_database(SIGNATURE, ["a", "b"], {"p": rows})
        answer = session.ask(db, "yes")
        print(f"  p = {rows!r:14} -> yes: {answer}")
        assert answer == (not rows)


def order_independence() -> None:
    banner("genericity: the answer survives every domain renaming")
    machine = relation_nonempty_machine(SIGNATURE, "p")
    rulebase = compile_yes_no_query(Cascade((machine,)), SIGNATURE)
    session = Session(rulebase, "prove")

    def query(db):
        return {()} if session.ask(db, "yes") else set()

    db = query_database(SIGNATURE, ["a", "b"], {"p": ["b"]})
    generic = check_genericity(query, db, trials=4)
    print(f"consistency criterion holds on sampled permutations: {generic}")
    assert generic


if __name__ == "__main__":
    k1_nonempty()
    k2_empty_via_oracle()
    order_independence()
