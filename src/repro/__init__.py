"""Hypothetical Datalog: negation and linear recursion.

A reproduction of Bonner (PODS 1989) as a working Python library:

* the hypothetical inference system ``R, DB |- A`` with premises
  ``A``, ``~A``, and ``A[add: B]`` (Section 3);
* linear stratification analysis and the Lemma 1 algorithm (Section 4);
* two evaluation engines — the reference perfect-model evaluator and
  the paper's PROVE_Sigma / PROVE_Delta cascade (Section 5.2);
* oracle-Turing-machine encodings (Section 5.1) and the
  order-assertion / expressibility compiler (Section 6).

Quickstart::

    from repro import parse_program, Database, Session

    rules = parse_program(
        "grad(S) :- take(S, his101), take(S, eng201)."
    )
    db = Database.from_relations({"take": [("tony", "his101")]})
    session = Session(rules)
    session.ask(db, "grad(tony)[add: take(tony, eng201)]")  # True
"""

from .analysis import (
    ComplexityReport,
    LinearStratification,
    classify,
    is_linearly_stratified,
    linear_stratification,
)
from .core import (
    Atom,
    Constant,
    Database,
    Hypothetical,
    HypotheticalDatalogError,
    Negated,
    Positive,
    Premise,
    Rule,
    Rulebase,
    Term,
    Variable,
    atom,
    fact,
    parse_atom,
    parse_database,
    parse_premise,
    parse_program,
    parse_rule,
    rule,
    term,
)
from .engine import (
    Explainer,
    LinearStratifiedProver,
    PerfectModelEngine,
    Proof,
    Session,
    TopDownEngine,
    answers,
    ask,
    format_proof,
    verify_proof,
)
from .obs import (
    WhyNotReport,
    format_assumptions,
    format_why_not,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Atom",
    "Constant",
    "Term",
    "Variable",
    "atom",
    "term",
    "Positive",
    "Negated",
    "Hypothetical",
    "Premise",
    "Rule",
    "Rulebase",
    "rule",
    "fact",
    "Database",
    "parse_atom",
    "parse_database",
    "parse_premise",
    "parse_program",
    "parse_rule",
    "HypotheticalDatalogError",
    # analysis
    "linear_stratification",
    "is_linearly_stratified",
    "LinearStratification",
    "classify",
    "ComplexityReport",
    # engines
    "Session",
    "ask",
    "answers",
    "PerfectModelEngine",
    "LinearStratifiedProver",
    "TopDownEngine",
    "Explainer",
    "Proof",
    "verify_proof",
    "format_proof",
    # provenance explanations (docs/OBSERVABILITY.md)
    "WhyNotReport",
    "format_why_not",
    "format_assumptions",
]
