"""Fault injection at the evaluators' guarded sites.

Every budget check inside the engines names its *site* (a dotted
string, usually matching the metric the site already increments —
``"topdown.goals"``, ``"delta.firings"``, ...).  This module lets a
test arm a failpoint at any such site so the check raises on demand:

    from repro.testing import failpoints

    with failpoints.armed("topdown.goals", reason="deadline", skip=10):
        engine.ask(db, "yes", budget=Budget())   # 11th goal trips

The failure surfaces exactly as a real budget trip would — a
:class:`~repro.core.errors.ResourceExhausted` with the given reason —
so the same graceful-degradation paths (partial results, cache
hygiene, CLI exit codes) are exercised without constructing a workload
that organically exhausts the budget.  ``kind="invariant"`` raises
:class:`~repro.core.errors.InvariantViolation` instead, which drives
the differential engine's naive-fallback path.

Failpoints only fire for *enabled* budgets: a site is reached through
``Budget.charge``/``poll``/``check_depth``, which the engines skip
entirely when no budget is configured, so production hot paths pay a
single module-level boolean read only while a budget is active — and
nothing at all otherwise.

:data:`KNOWN_SITES` is the canonical registry of guarded sites; the
fault-injection matrix (``tests/test_failpoints.py``) iterates it to
prove every site degrades gracefully.  Add new sites there when adding
new budget checks.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from ..core.errors import InvariantViolation, ResourceExhausted

__all__ = [
    "KNOWN_SITES",
    "NETWORK_SITES",
    "armed",
    "enabled",
    "reset",
    "trigger",
]

#: Guarded sites at the network layer (repro.server): unlike the engine
#: sites these are reached per connection/frame rather than per budget
#: charge, and the server converts a trip into a degraded single
#: request/connection, never a dead process (docs/SERVER.md).  The
#: fault-injection matrix for them lives in tests/test_server.py; the
#: engine matrix in tests/test_failpoints.py skips them.
NETWORK_SITES: frozenset[str] = frozenset(
    {
        "server.accept",
        "server.read_frame",
        "server.evaluate",
        "server.write_response",
    }
)

# The canonical guarded sites, grouped by evaluator.  Keep in sync with
# the engines' budget checks and docs/ROBUSTNESS.md.
KNOWN_SITES: frozenset[str] = NETWORK_SITES | frozenset(
    {
        # the paper's PROVE cascade (repro.engine.prove)
        "prove.sigma_goals",
        "prove.delta_models",
        "prove.delta_firings",
        "prove.delta_atoms",
        "prove.exists",
        # tabled top-down search (repro.engine.topdown)
        "topdown.goals",
        "topdown.exists",
        # bottom-up model engine (repro.engine.model)
        "model.models_computed",
        "model.exists",
        "model.invariant",
        # shared differential stratum closure (repro.engine.delta),
        # reached from model/stratified/datalog evaluation
        "delta.round",
        "delta.firings",
        "delta.derived",
        # stratified substrate (repro.engine.stratified)
        "stratified.stratum",
    }
)

#: Fast-path flag read by ``Budget`` on every charge; True only while
#: at least one failpoint is armed.
enabled = False

_armed: Dict[str, "_Failpoint"] = {}


class _Failpoint:
    """One armed site: what to raise, after how many hits."""

    __slots__ = ("site", "kind", "reason", "skip", "hits")

    def __init__(self, site: str, kind: str, reason: str, skip: int) -> None:
        self.site = site
        self.kind = kind
        self.reason = reason
        self.skip = skip
        self.hits = 0

    def fire(self) -> None:
        if self.skip > 0:
            self.skip -= 1
            return
        self.hits += 1
        if self.kind == "invariant":
            raise InvariantViolation(
                f"failpoint {self.site!r}: injected invariant violation"
            )
        raise ResourceExhausted(
            f"failpoint {self.site!r}: injected {self.reason}",
            reason=self.reason,
            site=self.site,
        )


def trigger(site: str) -> None:
    """Fire the failpoint armed at ``site``, if any.

    Called by :meth:`repro.engine.budget.Budget.charge` and friends;
    a no-op unless a matching failpoint is armed.
    """
    failpoint = _armed.get(site)
    if failpoint is not None:
        failpoint.fire()


@contextmanager
def armed(
    site: str,
    *,
    kind: str = "exhaustion",
    reason: str = "injected",
    skip: int = 0,
) -> Iterator[_Failpoint]:
    """Arm one failpoint for the duration of the ``with`` block.

    ``kind`` is ``"exhaustion"`` (raise :class:`ResourceExhausted` with
    ``reason``; use reason ``"cancelled"`` to simulate Ctrl-C) or
    ``"invariant"`` (raise :class:`InvariantViolation`).  ``skip``
    lets the first N hits through, so mid-evaluation failures can be
    staged deterministically.  The yielded handle's ``hits`` counts
    how many times the site actually fired.
    """
    if site not in KNOWN_SITES:
        raise ValueError(
            f"unknown failpoint site {site!r}; registered sites: "
            f"{', '.join(sorted(KNOWN_SITES))}"
        )
    if kind not in ("exhaustion", "invariant"):
        raise ValueError(f"unknown failpoint kind {kind!r}")
    global enabled
    failpoint = _Failpoint(site, kind, reason, skip)
    _armed[site] = failpoint
    enabled = True
    try:
        yield failpoint
    finally:
        _armed.pop(site, None)
        enabled = bool(_armed)


def reset() -> None:
    """Disarm every failpoint (test-suite hygiene)."""
    global enabled
    _armed.clear()
    enabled = False
