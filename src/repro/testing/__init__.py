"""Test-support utilities shipped with the library.

* :mod:`repro.testing.failpoints` — fault injection: force resource
  exhaustion, cancellation, or invariant violations at named guarded
  sites inside the evaluators, to prove they degrade gracefully
  everywhere (docs/ROBUSTNESS.md).
"""

from . import failpoints

__all__ = ["failpoints"]
