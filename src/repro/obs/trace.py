"""Structured inference tracing: nestable spans over the evaluators.

A :class:`Tracer` records a tree of :class:`TraceSpan` — one per unit
of inference work (a stratum fixpoint, a rule application, a
hypothetical sub-derivation, a goal expansion) — plus instant
:class:`TraceEvent` markers (plan choices, cache outcomes).  Spans
carry wall-clock nanoseconds, free-form ``args``, and optionally the
:class:`~repro.core.spans.Span` of the rule or premise that caused the
work, so trace views can point back at ``file:line:col``.

The span taxonomy (``query`` > ``goal``/``model``/``delta`` >
``stratum`` > ``rule`` > ``hypothesis`` > ...) is documented in
``docs/OBSERVABILITY.md``; exporters live in :mod:`repro.obs.export`.

Tracing is **off by default**.  Engines hold :data:`NULL_TRACER`, a
singleton whose ``span``/``event`` do nothing and allocate nothing —
``span`` returns one shared context manager, so a disabled hot path
pays a truthiness test or one no-op call, never an allocation.  Hot
call sites follow the pattern::

    trace = self._tracer
    ctx = trace.span("goal", str(goal)) if trace.enabled else NULL_SPAN
    with ctx:
        ...

which keeps a single code path while ensuring label formatting only
happens when a real tracer is attached.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, Optional, Union

from ..core.spans import Span as SourceSpan

__all__ = [
    "TraceSpan",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "walk",
]


class TraceSpan:
    """A timed, nestable unit of work."""

    __slots__ = ("kind", "label", "start_ns", "end_ns", "src", "args", "children")

    def __init__(
        self,
        kind: str,
        label: str = "",
        start_ns: int = 0,
        src: Optional[SourceSpan] = None,
        args: Optional[dict] = None,
    ) -> None:
        self.kind = kind
        self.label = label
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.src = src
        self.args = args if args is not None else {}
        self.children: list[Union["TraceSpan", "TraceEvent"]] = []

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def is_span(self) -> bool:
        return True

    def __repr__(self) -> str:
        return (
            f"TraceSpan({self.kind}:{self.label}, "
            f"{self.duration_ns / 1e6:.3f}ms, {len(self.children)} children)"
        )


class TraceEvent:
    """An instant marker attached to the enclosing span."""

    __slots__ = ("kind", "label", "ts_ns", "src", "args")

    def __init__(
        self,
        kind: str,
        label: str = "",
        ts_ns: int = 0,
        src: Optional[SourceSpan] = None,
        args: Optional[dict] = None,
    ) -> None:
        self.kind = kind
        self.label = label
        self.ts_ns = ts_ns
        self.src = src
        self.args = args if args is not None else {}

    @property
    def is_span(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"TraceEvent({self.kind}:{self.label})"


class _SpanContext:
    """Context manager opening one span on the tracer's stack."""

    __slots__ = ("_tracer", "_kind", "_label", "_src", "_args", "_span")

    def __init__(
        self,
        tracer: "Tracer",
        kind: str,
        label: str,
        src: Optional[SourceSpan],
        args: Optional[dict],
    ) -> None:
        self._tracer = tracer
        self._kind = kind
        self._label = label
        self._src = src
        self._args = args

    def __enter__(self) -> TraceSpan:
        tracer = self._tracer
        span = TraceSpan(
            self._kind, self._label, tracer._clock(), self._src, self._args
        )
        tracer._stack[-1].children.append(span)
        tracer._stack.append(span)
        self._span = span
        return span

    def __exit__(self, *exc_info: object) -> None:
        tracer = self._tracer
        self._span.end_ns = tracer._clock()
        # Pop back to this span even if a nested span leaked open
        # (e.g. a generator abandoned mid-iteration).
        stack = tracer._stack
        while len(stack) > 1 and stack[-1] is not self._span:
            stack[-1].end_ns = self._span.end_ns
            stack.pop()
        if len(stack) > 1:
            stack.pop()


class _NullSpanContext:
    """Shared do-nothing context manager: ``NULL_TRACER.span(...)`` and
    the ``NULL_SPAN`` fast-path constant both resolve to one instance,
    so disabled tracing performs no per-call allocation."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_SPAN = _NullSpanContext()


class Tracer:
    """Records a span tree; one per profiled run.

    ``clock`` is injectable (nanosecond callable) so tests can produce
    deterministic timings; it defaults to :func:`time.perf_counter_ns`.
    """

    enabled = True

    def __init__(self, *, clock: Callable[[], int] = time.perf_counter_ns) -> None:
        self._clock = clock
        self.root = TraceSpan("trace", "session", clock())
        self._stack: list[TraceSpan] = [self.root]

    def span(
        self,
        kind: str,
        label: str = "",
        src: Optional[SourceSpan] = None,
        args: Optional[dict] = None,
    ) -> _SpanContext:
        """Open a nested span: ``with tracer.span("rule", "grad") as sp:``."""
        return _SpanContext(self, kind, label, src, args)

    def event(
        self,
        kind: str,
        label: str = "",
        src: Optional[SourceSpan] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Attach an instant event to the currently open span."""
        self._stack[-1].children.append(
            TraceEvent(kind, label, self._clock(), src, args)
        )

    @property
    def current(self) -> TraceSpan:
        return self._stack[-1]

    def finish(self) -> TraceSpan:
        """Close any open spans (including the root) and return the root."""
        now = self._clock()
        while len(self._stack) > 1:
            self._stack[-1].end_ns = now
            self._stack.pop()
        if self.root.end_ns is None:
            self.root.end_ns = now
        return self.root


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``enabled`` is ``False`` so call sites can skip label formatting;
    ``span`` returns the shared :data:`NULL_SPAN` context manager.
    """

    enabled = False

    __slots__ = ()

    def span(
        self,
        kind: str,
        label: str = "",
        src: Optional[SourceSpan] = None,
        args: Optional[dict] = None,
    ) -> _NullSpanContext:
        return NULL_SPAN

    def event(
        self,
        kind: str,
        label: str = "",
        src: Optional[SourceSpan] = None,
        args: Optional[dict] = None,
    ) -> None:
        return None

    def finish(self) -> None:
        return None


NULL_TRACER = NullTracer()


def walk(
    node: Union[TraceSpan, TraceEvent], depth: int = 0
) -> Iterator[tuple[int, Union[TraceSpan, TraceEvent]]]:
    """Depth-first traversal yielding ``(depth, node)`` pairs."""
    yield depth, node
    if node.is_span:
        for child in node.children:  # type: ignore[union-attr]
            yield from walk(child, depth + 1)
