"""Validate emitted Chrome-trace files: ``python -m repro.obs.validate FILE...``.

Exit status 0 when every file conforms to the subset of the
``trace_event`` format :mod:`repro.obs.export` emits, 1 when any file
has structural problems, 2 on unreadable/unparseable input.  Used by
the CI profile smoke step to gate the ``hypodatalog profile`` output.
"""

from __future__ import annotations

import json
import sys
from typing import Optional, Sequence

from .export import validate_chrome_trace

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        print(__doc__)
        return 2
    status = 0
    for path in paths:
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"{path}: unreadable: {error}", file=sys.stderr)
            return 2
        problems = validate_chrome_trace(payload)
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            events = len(payload.get("traceEvents", []))
            print(f"{path}: ok ({events} events)")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
