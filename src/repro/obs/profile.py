"""Profiling glue: run one query with tracing on, package the results.

This is what ``hypodatalog profile`` and the REPL's ``:profile``
command call: build a traced :class:`~repro.engine.query.Session`,
decide the query, and return a :class:`ProfileReport` bundling the
answer, the span tree, and the metrics snapshot.  Exporting to a file
format is the caller's choice (:mod:`repro.obs.export`).

Imported lazily by the CLI/REPL so that merely importing
:mod:`repro.obs` never pulls in the engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..core.ast import Positive, Premise
from ..core.database import Database
from ..core.parser import parse_premise
from ..core.terms import Atom
from .export import render_tree
from .metrics import MetricsRegistry
from .trace import Tracer, TraceSpan

__all__ = ["ProfileReport", "profile_query"]

Query = Union[str, Atom, Premise]


@dataclass
class ProfileReport:
    """Everything one profiled query produced."""

    query: str
    engine_name: str
    result: Union[bool, set]
    tracer: Tracer
    metrics: MetricsRegistry
    wall_ns: int = 0

    @property
    def root(self) -> TraceSpan:
        return self.tracer.root

    def result_text(self) -> str:
        if isinstance(self.result, bool):
            return "yes" if self.result else "no"
        if not self.result:
            return "no"
        rows = sorted(self.result, key=str)
        return "\n".join(
            ", ".join(str(value) for value in row) for row in rows
        )

    def render(
        self, *, max_depth: Optional[int] = None, timings: bool = True
    ) -> str:
        """The terminal report: header, span tree, metrics table."""
        header = (
            f"profile: {self.query}\n"
            f"engine:  {self.engine_name}\n"
            f"answer:  {self.result_text()}\n"
            f"wall:    {self.wall_ns / 1e6:.2f}ms"
        )
        tree = render_tree(self.root, max_depth=max_depth, timings=timings)
        table = self.metrics.render_table()
        return (
            f"{header}\n\n-- spans "
            + "-" * 32
            + f"\n{tree}\n\n-- metrics "
            + "-" * 30
            + f"\n{table}"
        )


def profile_query(
    rulebase,
    db: Database,
    query: Query,
    *,
    engine: str = "auto",
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    budget=None,
) -> ProfileReport:
    """Decide ``query`` at ``db`` with tracing enabled.

    A plain atom pattern with variables is profiled as an ``answers``
    enumeration (mirroring the REPL's query behaviour); everything
    else as a yes/no ``ask``.  ``budget`` (a
    :class:`~repro.engine.budget.Budget`) bounds the profiled run; on
    exhaustion :class:`~repro.core.errors.ResourceExhausted` propagates
    with partial results attached.
    """
    from ..engine.query import Session

    tracer = tracer if tracer is not None else Tracer()
    metrics = metrics if metrics is not None else MetricsRegistry()
    session = Session(rulebase, engine, metrics=metrics, tracer=tracer)
    premise = parse_premise(query) if isinstance(query, str) else query
    if isinstance(premise, Atom):
        premise = Positive(premise)
    text = str(premise)
    variables = list(dict.fromkeys(premise.variables()))
    start = tracer._clock()
    with tracer.span("query", text):
        if variables and isinstance(premise, Positive):
            result: Union[bool, set] = session.answers(
                db, premise.atom, budget=budget
            )
        else:
            result = session.ask(db, premise, budget=budget)
    wall = tracer._clock() - start
    tracer.finish()
    return ProfileReport(
        query=text,
        engine_name=session.engine_name,
        result=result,
        tracer=tracer,
        metrics=metrics,
        wall_ns=wall,
    )
