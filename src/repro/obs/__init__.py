"""Observability: unified tracing and metrics for the evaluators.

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of named
  counters/gauges/histograms; the single home for every engine's work
  counters (the historical per-engine stats structs are thin views).
* :mod:`repro.obs.trace` — :class:`Tracer` with nestable spans
  (stratum/rule/hypothesis/goal) carrying wall time and source spans;
  :data:`NULL_TRACER` is the zero-overhead disabled default.
* :mod:`repro.obs.export` — tree summary, JSON-lines, and Chrome
  ``trace_event`` exporters plus a structural validator.
* :mod:`repro.obs.profile` — glue for ``hypodatalog profile`` and the
  REPL ``:profile`` command (imported lazily; pulls in the engines).

See ``docs/OBSERVABILITY.md`` for the span taxonomy and metric names.
"""

from .export import (
    render_tree,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, StatsView
from .trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    TraceSpan,
    Tracer,
    walk,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsView",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "TraceSpan",
    "TraceEvent",
    "walk",
    "render_tree",
    "to_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]
