"""Observability: unified tracing and metrics for the evaluators.

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of named
  counters/gauges/histograms; the single home for every engine's work
  counters (the historical per-engine stats structs are thin views).
* :mod:`repro.obs.trace` — :class:`Tracer` with nestable spans
  (stratum/rule/hypothesis/goal) carrying wall time and source spans;
  :data:`NULL_TRACER` is the zero-overhead disabled default.
* :mod:`repro.obs.export` — tree summary, JSON-lines, and Chrome
  ``trace_event`` exporters plus a structural validator.
* :mod:`repro.obs.provenance` — why-provenance recording for the
  bottom-up evaluators (:class:`ProvenanceRecorder` /
  :data:`NULL_PROVENANCE`): derivation edges captured during
  evaluation, proof replay, why-not witnesses, assumption sets.
* :mod:`repro.obs.profile` — glue for ``hypodatalog profile`` and the
  REPL ``:profile`` command (imported lazily; pulls in the engines).

See ``docs/OBSERVABILITY.md`` for the span taxonomy and metric names.
"""

from .export import (
    render_tree,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, StatsView
from .provenance import (
    NULL_PROVENANCE,
    NullProvenance,
    PremiseFailure,
    ProvenanceRecorder,
    WhyNotReport,
    explain_absence,
    format_assumptions,
    format_why_not,
)
from .trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    TraceSpan,
    Tracer,
    walk,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsView",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "TraceSpan",
    "TraceEvent",
    "walk",
    "render_tree",
    "to_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "ProvenanceRecorder",
    "NullProvenance",
    "NULL_PROVENANCE",
    "PremiseFailure",
    "WhyNotReport",
    "explain_absence",
    "format_why_not",
    "format_assumptions",
]
