"""Trace exporters: tree summary, JSON-lines, Chrome ``trace_event``.

Three views over one :class:`~repro.obs.trace.Tracer` run:

* :func:`render_tree` — an indented human-readable summary for
  terminals (the ``hypodatalog profile`` default output);
* :func:`to_jsonl` — one JSON object per span/event, depth-annotated,
  for machine consumption and golden tests (``redact_timings=True``
  zeroes the clock fields so the output is stable across runs);
* :func:`to_chrome_trace` — the Chrome ``trace_event`` "JSON object
  format" (``{"traceEvents": [...]}``) with complete (``ph="X"``) and
  instant (``ph="i"``) events, loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev.

:func:`validate_chrome_trace` checks the emitted structure against the
subset of the trace-event spec we rely on — a zero-dependency schema
check used by the tests and the CI smoke step
(``python -m repro.obs.validate FILE``).
"""

from __future__ import annotations

import json
from typing import Optional, Union

from .metrics import MetricsRegistry
from .trace import TraceEvent, TraceSpan, Tracer, walk

__all__ = [
    "render_tree",
    "to_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]

_Root = Union[Tracer, TraceSpan]


def _root_of(trace: _Root) -> TraceSpan:
    if isinstance(trace, Tracer):
        return trace.finish()
    return trace


def _format_ns(ns: int) -> str:
    if ns < 1_000:
        return f"{ns}ns"
    if ns < 1_000_000:
        return f"{ns / 1e3:.1f}us"
    if ns < 1_000_000_000:
        return f"{ns / 1e6:.2f}ms"
    return f"{ns / 1e9:.2f}s"


def _args_text(args: dict) -> str:
    return " ".join(f"{key}={value}" for key, value in args.items())


def render_tree(
    trace: _Root,
    *,
    max_depth: Optional[int] = None,
    max_children: int = 24,
    timings: bool = True,
) -> str:
    """Indented text tree of the span hierarchy.

    ``max_children`` elides the tail of very wide levels (a fixpoint
    can apply thousands of rule instances) behind a ``... (+N more)``
    line; ``max_depth`` truncates deep recursions.
    """
    lines: list[str] = []

    def emit(node: Union[TraceSpan, TraceEvent], depth: int) -> None:
        indent = "  " * depth
        if max_depth is not None and depth > max_depth:
            return
        if node.is_span:
            clock = f"  {_format_ns(node.duration_ns)}" if timings else ""
            extra = _args_text(node.args)
            src = f"  [{node.src.location}]" if node.src is not None else ""
            label = f" {node.label}" if node.label else ""
            extra_text = f"  {extra}" if extra else ""
            lines.append(f"{indent}{node.kind}{label}{clock}{extra_text}{src}")
            children = node.children
            shown = children[:max_children]
            for child in shown:
                emit(child, depth + 1)
            if len(children) > len(shown):
                lines.append(
                    f"{indent}  ... (+{len(children) - len(shown)} more)"
                )
        else:
            extra = _args_text(node.args)
            extra_text = f"  {extra}" if extra else ""
            lines.append(f"{indent}@{node.kind} {node.label}{extra_text}")

    emit(_root_of(trace), 0)
    return "\n".join(lines)


def to_jsonl(
    trace: _Root,
    *,
    metrics: Optional[MetricsRegistry] = None,
    redact_timings: bool = False,
) -> str:
    """One JSON object per line: spans, events, then a metrics record.

    Span lines: ``{"type": "span", "kind", "label", "depth",
    "start_us", "dur_us", "src", "args"}``; event lines replace the
    timing pair with ``"ts_us"``.  With ``redact_timings=True`` all
    clock fields are 0, making the stream a pure structural record
    suitable for golden tests.
    """
    root = _root_of(trace)
    origin = root.start_ns
    lines: list[str] = []
    for depth, node in walk(root):
        record: dict[str, object] = {
            "type": "span" if node.is_span else "event",
            "kind": node.kind,
            "label": node.label,
            "depth": depth,
        }
        if node.is_span:
            record["start_us"] = (
                0 if redact_timings else round((node.start_ns - origin) / 1e3, 3)
            )
            record["dur_us"] = (
                0 if redact_timings else round(node.duration_ns / 1e3, 3)
            )
        else:
            record["ts_us"] = (
                0 if redact_timings else round((node.ts_ns - origin) / 1e3, 3)
            )
        if node.src is not None:
            record["src"] = node.src.location
        if node.args:
            record["args"] = node.args
        lines.append(json.dumps(record, sort_keys=True, default=str))
    if metrics is not None:
        lines.append(
            json.dumps(
                {"type": "metrics", "values": metrics.snapshot(zeros=False)},
                sort_keys=True,
                default=str,
            )
        )
    return "\n".join(lines)


def to_chrome_trace(
    trace: _Root,
    *,
    metrics: Optional[MetricsRegistry] = None,
    redact_timings: bool = False,
) -> dict:
    """The Chrome ``trace_event`` JSON-object payload.

    Spans become complete events (``ph="X"``) with microsecond ``ts``
    (relative to the trace start) and ``dur``; instant events become
    ``ph="i"`` with thread scope.  The metrics snapshot, when given,
    rides along in ``otherData`` so one file carries the whole profile.
    """
    root = _root_of(trace)
    origin = root.start_ns
    events: list[dict] = []
    for _, node in walk(root):
        args = {str(key): value for key, value in node.args.items()}
        if node.src is not None:
            args["src"] = node.src.location
        name = f"{node.kind}:{node.label}" if node.label else node.kind
        if node.is_span:
            events.append(
                {
                    "name": name,
                    "cat": node.kind,
                    "ph": "X",
                    "ts": 0 if redact_timings else (node.start_ns - origin) / 1e3,
                    "dur": 0 if redact_timings else node.duration_ns / 1e3,
                    "pid": 1,
                    "tid": 1,
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "name": name,
                    "cat": node.kind,
                    "ph": "i",
                    "s": "t",
                    "ts": 0 if redact_timings else (node.ts_ns - origin) / 1e3,
                    "pid": 1,
                    "tid": 1,
                    "args": args,
                }
            )
    payload: dict = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "hypodatalog"},
    }
    if metrics is not None:
        payload["otherData"]["metrics"] = metrics.snapshot(zeros=False)
    return payload


def write_chrome_trace(
    path: str,
    trace: _Root,
    *,
    metrics: Optional[MetricsRegistry] = None,
    redact_timings: bool = False,
) -> None:
    payload = to_chrome_trace(
        trace, metrics=metrics, redact_timings=redact_timings
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, default=str)
        handle.write("\n")


_PHASE_REQUIRED = {
    "X": ("name", "cat", "ph", "ts", "dur", "pid", "tid"),
    "i": ("name", "cat", "ph", "ts", "s", "pid", "tid"),
}


def validate_chrome_trace(payload: object) -> list[str]:
    """Structural check of a Chrome-trace payload; returns problems.

    An empty list means the payload conforms to the subset of the
    ``trace_event`` format this package emits (JSON object format,
    ``X`` and ``i`` phases, numeric timestamps, string names).
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload.traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where} must be an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASE_REQUIRED:
            problems.append(f"{where}.ph must be 'X' or 'i', got {phase!r}")
            continue
        for key in _PHASE_REQUIRED[phase]:
            if key not in event:
                problems.append(f"{where} missing required key {key!r}")
        for key in ("name", "cat"):
            if key in event and not isinstance(event[key], str):
                problems.append(f"{where}.{key} must be a string")
        for key in ("ts", "dur"):
            if key in event and not isinstance(event[key], (int, float)):
                problems.append(f"{where}.{key} must be a number")
        for key in ("pid", "tid"):
            if key in event and not isinstance(event[key], int):
                problems.append(f"{where}.{key} must be an integer")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}.args must be an object")
    return problems
