"""Engine-wide metrics: named counters, gauges, and histograms.

Before this module each evaluator kept its own ad-hoc stats struct
(``FixpointStats`` in :mod:`repro.engine.datalog`, ``EngineStats`` in
:mod:`repro.engine.model`, ...) with overlapping counters under
different names.  :class:`MetricsRegistry` unifies them: every engine
counts into one registry under dotted metric names
(``prove.sigma_goals``, ``model.cache_hits``, ...), and the historical
structs survive as thin :class:`StatsView` subclasses reading through
to the registry, so existing callers keep working.

Design constraints (the hot paths run millions of increments):

* a :class:`Counter` is a ``__slots__`` cell; engines look it up once
  at construction and then do ``counter.value += 1`` — the same cost
  as the attribute increments the old structs used;
* the registry itself is only touched at setup, snapshot, and merge
  time, never inside evaluation loops;
* no dependencies beyond the standard library.

The canonical metric names are catalogued in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
from typing import Iterator, Mapping, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsView",
]

Number = Union[int, float]


class Counter:
    """A monotonically growing count.  Increment via ``.value += n``
    on hot paths or :meth:`inc` elsewhere."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (search depth, cache size, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: Number) -> None:
        self.value = value

    def set_max(self, value: Number) -> None:
        if value > self.value:
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming summary of observed values (count/total/min/max).

    Deliberately not bucketed: the engines observe quantities like
    per-model fixpoint sizes where a four-number summary answers the
    tuning questions and costs O(1) memory.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def observe(self, value: Number) -> None:
        if self.count == 0:
            self.min = self.max = float(value)
        else:
            if value < self.min:
                self.min = float(value)
            if value > self.max:
                self.max = float(value)
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """A namespace of counters, gauges, and histograms.

    ``counter``/``gauge``/``histogram`` get-or-create by name, so
    independent components agreeing on a name share the instrument.
    A name may not be registered as two different kinds.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- registration --------------------------------------------------

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            self._check_free(name, self._counters)
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            self._check_free(name, self._gauges)
            found = self._gauges[name] = Gauge(name)
        return found

    def histogram(self, name: str) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            self._check_free(name, self._histograms)
            found = self._histograms[name] = Histogram(name)
        return found

    def _check_free(self, name: str, own: Mapping[str, object]) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind"
                )

    # -- reading -------------------------------------------------------

    def __iter__(self) -> Iterator[Union[Counter, Gauge, Histogram]]:
        yield from self._counters.values()
        yield from self._gauges.values()
        yield from self._histograms.values()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def snapshot(self, *, zeros: bool = True) -> dict[str, object]:
        """All metric values keyed by name, sorted for stable output.

        Counters and gauges map to numbers, histograms to their summary
        dict.  ``zeros=False`` drops never-touched instruments.
        """
        values: dict[str, object] = {}
        for name, counter in self._counters.items():
            if zeros or counter.value:
                values[name] = counter.value
        for name, gauge in self._gauges.items():
            if zeros or gauge.value:
                values[name] = gauge.value
        for name, histogram in self._histograms.items():
            if zeros or histogram.count:
                values[name] = histogram.summary()
        return dict(sorted(values.items()))

    def to_json(self, **kwargs: object) -> str:
        return json.dumps(self.snapshot(**kwargs), indent=2, sort_keys=True)

    def render_table(self, *, zeros: bool = False) -> str:
        """Aligned two-column summary, the CLI/REPL metrics table."""
        rows: list[tuple[str, str]] = []
        for name, value in self.snapshot(zeros=zeros).items():
            if isinstance(value, dict):
                text = (
                    f"n={value['count']} mean={value['mean']:.3g} "
                    f"min={value['min']:.3g} max={value['max']:.3g}"
                )
            else:
                text = str(value)
            rows.append((name, text))
        if not rows:
            return "(no metrics recorded)"
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {text}" for name, text in rows)

    # -- lifecycle -----------------------------------------------------

    def reset(self) -> None:
        """Zero every instrument *in place* (engines keep their bound
        references, so the objects must survive)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0
        for histogram in self._histograms.values():
            histogram.count = 0
            histogram.total = 0.0
            histogram.min = 0.0
            histogram.max = 0.0

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (counters add, gauges
        take the max, histograms combine)."""
        for name, counter in other._counters.items():
            self.counter(name).value += counter.value
        for name, gauge in other._gauges.items():
            self.gauge(name).set_max(gauge.value)
        for name, histogram in other._histograms.items():
            own = self.histogram(name)
            if histogram.count:
                if own.count == 0:
                    own.min, own.max = histogram.min, histogram.max
                else:
                    own.min = min(own.min, histogram.min)
                    own.max = max(own.max, histogram.max)
                own.count += histogram.count
                own.total += histogram.total

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} metrics)"


def _counter_property(metric: str) -> property:
    def fget(self: "StatsView") -> int:
        return self.registry.counter(metric).value

    def fset(self: "StatsView", value: int) -> None:
        self.registry.counter(metric).value = value

    return property(fget, fset)


def _gauge_property(metric: str) -> property:
    def fget(self: "StatsView") -> Number:
        return self.registry.gauge(metric).value

    def fset(self: "StatsView", value: Number) -> None:
        self.registry.gauge(metric).value = value

    return property(fget, fset)


class StatsView:
    """Base for the deprecated per-engine stats structs.

    Subclasses declare ``_counter_fields`` / ``_gauge_fields`` mapping
    legacy attribute names to registry metric names; matching
    read/write properties are installed automatically.  A view created
    without a registry owns a private one, which keeps the historical
    ``stats = FixpointStats()`` idiom working.
    """

    _counter_fields: Mapping[str, str] = {}
    _gauge_fields: Mapping[str, str] = {}

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        for attr, metric in cls._counter_fields.items():
            setattr(cls, attr, _counter_property(metric))
        for attr, metric in cls._gauge_fields.items():
            setattr(cls, attr, _gauge_property(metric))

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def snapshot(self) -> dict[str, Number]:
        return {
            attr: getattr(self, attr)
            for attr in (*self._counter_fields, *self._gauge_fields)
        }

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"{type(self).__name__}({inner})"
