"""Why-provenance for bottom-up evaluation.

Bonner's hypothetical rules were motivated by consultation-style
applications where a *yes* must come with a justification — and where
an answer's dependence on assumed premises (``[add: ...]``) is the
whole point of the logic.  The top-down :class:`~repro.engine.proofs.Explainer`
justifies answers by re-searching; this module instead has the
bottom-up evaluators *record* why each atom was derived, as it is
derived, so explanations are reconstructed from the evaluation that
actually happened:

* :class:`ProvenanceRecorder` — a per-evaluation derivation DAG keyed
  by ``(atom, db)``.  The semi-naive closure
  (:func:`repro.engine.delta.close_layer`) calls a bound *sink* once
  per rule firing; the recorder keeps up to
  :data:`MAX_ALTERNATIVES` distinct edges per derived atom (firing
  rule + premise bindings).  The **first** edge of every atom is
  well founded: within a round all firings read the interpretation as
  of the round start, so an edge's supports are always strictly older
  than its head.
* :meth:`ProvenanceRecorder.replay` — rebuilds a
  :class:`~repro.engine.proofs.Proof` directly from recorded edges
  (zero re-evaluation; ``prov.edges_replayed`` counts the walk), in
  the exact shape :func:`~repro.engine.proofs.verify_proof` certifies.
* :func:`explain_absence` — a *why-not* witness for an atom outside
  the model: per candidate rule, the first premise with no support
  (including "blocked by negation on X" and "no derivation in child
  db under [add: ...]").
* :meth:`ProvenanceRecorder.assumptions` — the set of hypothetical
  additions a derivation actually used, minimized per node over the
  recorded alternative edges.

Recording is **off by default** and follows the ``NULL_TRACER``
discipline: engines hold :data:`NULL_PROVENANCE` (``enabled`` False)
and the closure's ``record`` hook is ``None``, so the disabled hot
path pays one ``is None`` test per rule evaluation and allocates
nothing.

Demand interplay (docs/DEMAND.md): when the recording engine evaluates
a magic-rewritten program, the sink is created with the rewrite's
auxiliary predicates (``magic__``/``sup__``/seed).  Edges whose head is
auxiliary are skipped, auxiliary guard premises are stripped from the
recorded rule (a guarded rule is the original body plus a prepended
magic guard, so the stripped rule *is* the original rule and the
firing binding covers all its variables), and database keys drop
injected magic facts — so demand-on provenance explains the original
program and replays verify against the original rulebase.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from ..core.ast import Hypothetical, Negated, Positive, Premise, Rule, Rulebase
from ..core.database import Database
from ..core.terms import Atom, Constant
from ..core.unify import Substitution, ground_instances, match

__all__ = [
    "ProvenanceRecorder",
    "NullProvenance",
    "NULL_PROVENANCE",
    "MAX_ALTERNATIVES",
    "PremiseFailure",
    "WhyNotReport",
    "explain_absence",
    "format_why_not",
    "format_assumptions",
]

#: Distinct edges kept per derived atom.  The first edge alone suffices
#: for ``why``; the alternatives feed assumption minimization.  Beyond
#: the cap further firings bump ``prov.edges_dropped`` and are ignored.
MAX_ALTERNATIVES = 8

#: Candidate-binding cap for the why-not walk: the witness search is a
#: diagnostic, not an evaluator, so it is bounded rather than complete.
_WHYNOT_BINDINGS = 256


class _Cell:
    """Minimal stand-in for an obs Counter when no registry is given."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


class ProvEdge:
    """One recorded rule firing: ``rule`` under ``binding`` derived a
    head atom.  ``sig`` is the dedup signature."""

    __slots__ = ("rule", "binding", "sig")

    def __init__(self, rule: Rule, binding: Substitution, sig) -> None:
        self.rule = rule
        self.binding = binding
        self.sig = sig

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProvEdge({self.rule.head.predicate}, {self.binding})"


class NullProvenance:
    """Disabled recorder: engines hold this singleton by default."""

    enabled = False

    def sink(self, db: Database, aux: frozenset = frozenset()):
        return None

    def __repr__(self) -> str:
        return "NULL_PROVENANCE"


NULL_PROVENANCE = NullProvenance()


class ProvenanceRecorder:
    """A derivation DAG recorded during bottom-up evaluation.

    Edges are keyed by ``(atom, db)`` where ``db`` is the database the
    deriving fixpoint ran over (auxiliary demand facts stripped).  One
    recorder may serve several engines — the demand path shares the
    parent engine's recorder with its delegate so edges land in one
    DAG regardless of which program derived them.
    """

    enabled = True

    def __init__(self, metrics=None) -> None:
        self._dbs: dict[Database, dict[Atom, list[ProvEdge]]] = {}
        # Demand-stripped variants of guarded rules, cached by identity
        # (rule objects live as long as their rulebase, which the
        # recording engine holds).
        self._stripped: dict[int, Rule] = {}
        if metrics is not None:
            counter = metrics.counter
            self.n_edges = counter("prov.edges")
            self.n_atoms = counter("prov.atoms")
            self.n_dropped = counter("prov.edges_dropped")
            self.n_replayed = counter("prov.edges_replayed")
        else:
            self.n_edges = _Cell()
            self.n_atoms = _Cell()
            self.n_dropped = _Cell()
            self.n_replayed = _Cell()

    # -- recording -----------------------------------------------------

    def sink(
        self, db: Database, aux: frozenset = frozenset()
    ) -> Callable[[Rule, Atom, Substitution], None]:
        """A bound ``record(rule, head, binding)`` callback for one
        fixpoint over ``db``; hand it to
        :func:`~repro.engine.delta.close_layer`.

        ``aux`` names demand-rewrite auxiliary predicates: edges for
        auxiliary heads are skipped, auxiliary premises are stripped
        from recorded rules, and injected auxiliary facts are dropped
        from the database key.
        """
        key = self._strip_db(db, aux) if aux else db
        atoms = self._dbs.setdefault(key, {})
        cap = MAX_ALTERNATIVES
        n_edges = self.n_edges
        n_atoms = self.n_atoms
        n_dropped = self.n_dropped
        strip_rule = self._strip_rule

        def record(rule: Rule, head: Atom, binding: Substitution) -> None:
            if aux:
                if head.predicate in aux:
                    return
                rule = strip_rule(rule, aux)
            edges = atoms.get(head)
            if edges is None:
                edges = atoms[head] = []
                n_atoms.value += 1
            elif len(edges) >= cap:
                n_dropped.value += 1
                return
            sig = (id(rule), frozenset(binding.items()))
            for edge in edges:
                if edge.sig == sig:
                    return
            edges.append(ProvEdge(rule, dict(binding), sig))
            n_edges.value += 1

        return record

    def _strip_rule(self, rule: Rule, aux: frozenset) -> Rule:
        cached = self._stripped.get(id(rule))
        if cached is None:
            body = tuple(
                premise
                for premise in rule.body
                if premise.goal.predicate not in aux
            )
            cached = (
                rule
                if len(body) == len(rule.body)
                else Rule(rule.head, body, span=rule.span)
            )
            self._stripped[id(rule)] = cached
        return cached

    @staticmethod
    def _strip_db(db: Database, aux: frozenset) -> Database:
        extra = [item for item in db.facts if item.predicate in aux]
        return db.without_facts(*extra) if extra else db

    # -- inspection ----------------------------------------------------

    def edges(self, atom: Atom, db: Database) -> Sequence[ProvEdge]:
        """The recorded alternative edges for ``(atom, db)``."""
        atoms = self._dbs.get(db)
        if atoms is None:
            return ()
        return tuple(atoms.get(atom, ()))

    def databases(self) -> int:
        return len(self._dbs)

    def clear(self) -> None:
        self._dbs.clear()
        self._stripped.clear()

    # -- why: proof replay ---------------------------------------------

    def replay(self, rulebase: Rulebase, goal: Atom, db: Database):
        """A :class:`~repro.engine.proofs.Proof` of ``goal`` at ``db``
        rebuilt from recorded edges, or ``None`` if none were recorded.

        Pure replay: no rule is re-fired and no model is re-computed;
        ``prov.edges_replayed`` counts each edge walked.  The first
        recorded edge per atom is well founded, so the walk terminates;
        the path guard only matters when falling through to alternative
        edges.
        """
        from ..engine.proofs import PremiseStep, Proof
        from ..analysis.planner import ordered_premises

        n_replayed = self.n_replayed
        dbs = self._dbs

        def build(atom: Atom, at: Database, path: set):
            if atom in at:
                return Proof(atom, at)
            key = (atom, at)
            if key in path:
                return None
            atoms = dbs.get(at)
            edges = atoms.get(atom) if atoms else None
            if not edges:
                return None
            path.add(key)
            try:
                for edge in edges:
                    n_replayed.value += 1
                    steps = []
                    for premise in ordered_premises(edge.rule.body):
                        grounded = premise.substitute(edge.binding)
                        if isinstance(grounded, Positive):
                            sub = build(grounded.atom, at, path)
                            if sub is None:
                                break
                            steps.append(PremiseStep(grounded, sub))
                        elif isinstance(grounded, Hypothetical):
                            child = at.without_facts(
                                *grounded.deletions
                            ).with_facts(*grounded.additions)
                            sub = build(grounded.atom, child, path)
                            if sub is None:
                                break
                            steps.append(PremiseStep(grounded, sub))
                        else:
                            steps.append(PremiseStep(grounded, None))
                    else:
                        return Proof(atom, at, edge.rule, tuple(steps))
            finally:
                path.discard(key)
            return None

        return build(goal, db, set())

    # -- which hypotheses: assumption sets -----------------------------

    def assumptions(self, goal: Atom, db: Database) -> Optional[frozenset[Atom]]:
        """The hypothetical additions a recorded derivation of ``goal``
        at ``db`` actually used: every time the derivation crosses a
        recursion-case hypothetical premise, the facts that genuinely
        enlarged the database at that step count — collapse-case
        crossings add nothing (the answer holds without assuming).
        Minimized per node over the recorded alternative edges (greedy
        bottom-up minimization, the per-derivation reading; global
        set-cover minimality is not attempted).  ``None`` when no
        derivation was recorded.
        """
        dbs = self._dbs
        n_replayed = self.n_replayed
        memo: dict[tuple[Atom, Database], Optional[frozenset[Atom]]] = {}
        missing = object()

        def best(atom: Atom, at: Database, path: set):
            if atom in at:
                # A database fact of the current context assumes
                # nothing new: whatever put it there was already
                # charged at the step that added it.
                return frozenset()
            key = (atom, at)
            found = memo.get(key, missing)
            if found is not missing:
                return found
            if key in path:
                return None
            atoms = dbs.get(at)
            edges = atoms.get(atom, ()) if atoms else ()
            options: list[frozenset[Atom]] = []
            path.add(key)
            try:
                for edge in edges:
                    n_replayed.value += 1
                    used: frozenset[Atom] = frozenset()
                    for premise in edge.rule.body:
                        grounded = premise.substitute(edge.binding)
                        if isinstance(grounded, Positive):
                            sub = best(grounded.atom, at, path)
                        elif isinstance(grounded, Hypothetical):
                            child = at.without_facts(
                                *grounded.deletions
                            ).with_facts(*grounded.additions)
                            sub = best(grounded.atom, child, path)
                            if sub is not None:
                                sub = sub | (child.facts - at.facts)
                        else:
                            continue  # negation: assumes nothing
                        if sub is None:
                            used = None
                            break
                        used |= sub
                    if used is not None:
                        options.append(used)
            finally:
                path.discard(key)
            result = min(options, key=len) if options else None
            memo[key] = result
            return result

        return best(goal, db, set())


# ----------------------------------------------------------------------
# Why-not: failure witnesses
# ----------------------------------------------------------------------


class PremiseFailure:
    """One candidate rule's failure: the first premise (in evaluation
    order) with no support, plus the premises that did hold."""

    __slots__ = ("rule", "premise", "reason", "detail", "satisfied", "truncated")

    def __init__(
        self,
        rule: Rule,
        premise: Optional[Premise],
        reason: str,
        detail: str,
        satisfied: tuple[Premise, ...] = (),
        truncated: bool = False,
    ) -> None:
        self.rule = rule
        self.premise = premise
        #: "head-mismatch" | "no-support" | "blocked-by-negation"
        #: | "no-child-derivation" | "incomplete"
        self.reason = reason
        self.detail = detail
        self.satisfied = satisfied
        self.truncated = truncated


class WhyNotReport:
    """A failure witness for ``R, DB |/- goal``.

    ``kind`` is ``"absent"`` (with one :class:`PremiseFailure` per
    candidate rule) or ``"holds"`` (the goal is derivable after all —
    no witness; ask *why* instead).  ``note`` carries context such as
    the hypothetical premise the walk descended through.
    """

    __slots__ = ("goal", "db_size", "kind", "failures", "note")

    def __init__(
        self,
        goal: Atom,
        db_size: int,
        kind: str,
        failures: tuple[PremiseFailure, ...] = (),
        note: str = "",
    ) -> None:
        self.goal = goal
        self.db_size = db_size
        self.kind = kind
        self.failures = failures
        self.note = note


def explain_absence(
    rulebase: Rulebase,
    goal: Atom,
    db: Database,
    model_of: Callable[[Database], "object"],
    domain: Sequence[Constant],
    budget=None,
    note: str = "",
) -> WhyNotReport:
    """A why-not witness for a ground ``goal`` at ``db``.

    ``model_of(db)`` must return an
    :class:`~repro.engine.interpretation.Interpretation`-like view of
    the perfect model at a database (it is called again for the child
    databases of hypothetical premises).  For every rule defining the
    goal's predicate, candidate bindings are joined premise by premise
    against the model; the first premise that empties the candidate set
    is the rule's failure witness.  Since the model is a fixpoint, a
    rule whose premises all survive would have derived the goal, so
    every defining rule yields a witness (or the candidate search hit
    its cap, which the witness flags as truncated).
    """
    from ..analysis.planner import ordered_premises
    from ..engine.body import nonlocal_variables

    model = model_of(db)
    if goal in model:
        return WhyNotReport(goal, len(db), "holds", note=note)
    failures: list[PremiseFailure] = []
    rules = rulebase.definition(goal.predicate)
    if not rules:
        return WhyNotReport(
            goal,
            len(db),
            "absent",
            note=note
            or (
                f"{goal} is not a database fact and no rule defines "
                f"{goal.predicate}/{len(goal.args)}"
            ),
        )
    governed = budget is not None and budget.enabled
    for rule in rules:
        if governed:
            budget.poll("prov.whynot")
        head_binding = match(rule.head, goal)
        if head_binding is None:
            failures.append(
                PremiseFailure(
                    rule,
                    None,
                    "head-mismatch",
                    f"head {rule.head} does not match {goal}",
                )
            )
            continue
        failures.append(
            _rule_failure(
                rule,
                head_binding,
                db,
                model,
                model_of,
                domain,
                ordered_premises,
                nonlocal_variables,
                budget,
            )
        )
    return WhyNotReport(goal, len(db), "absent", tuple(failures), note)


def _rule_failure(
    rule: Rule,
    head_binding: Substitution,
    db: Database,
    model,
    model_of,
    domain: Sequence[Constant],
    ordered_premises,
    nonlocal_variables,
    budget,
) -> PremiseFailure:
    """Walk one rule's premises with the joint candidate-binding set."""
    bindings: list[Substitution] = [head_binding]
    satisfied: list[Premise] = []
    truncated = False
    governed = budget is not None and budget.enabled
    guards = nonlocal_variables(rule)
    grounded_guards = False
    for premise in ordered_premises(rule.body):
        if governed:
            budget.poll("prov.whynot")
        if isinstance(premise, Negated) and not grounded_guards:
            # Definition 3 grounds every non-local variable before the
            # negations (mirrors ``satisfy_body``'s ``ground_first``).
            grounded_guards = True
            extended: list[Substitution] = []
            for binding in bindings:
                unbound = [var for var in guards if var not in binding]
                if not unbound:
                    extended.append(binding)
                    continue
                for grounding in ground_instances(unbound, domain, binding):
                    extended.append(grounding)
                    if len(extended) >= _WHYNOT_BINDINGS:
                        truncated = True
                        break
                if truncated:
                    break
            bindings = extended
        survivors: list[Substitution] = []
        witness = ""
        if isinstance(premise, Positive):
            for binding in bindings:
                for extended in model.matches(premise.atom, binding):
                    survivors.append(extended)
                    if len(survivors) >= _WHYNOT_BINDINGS:
                        truncated = True
                        break
                if truncated:
                    break
            reason = "no-support"
            pattern = premise.substitute(bindings[0]) if bindings else premise
            detail = f"no support for {pattern.goal}"
        elif isinstance(premise, Hypothetical):
            for binding in bindings:
                unbound = [
                    var
                    for var in dict.fromkeys(premise.variables())
                    if var not in binding
                ]
                for grounding in ground_instances(unbound, domain, binding):
                    if governed:
                        budget.poll("prov.whynot")
                    grounded = premise.substitute(grounding)
                    child = db.with_facts(*grounded.additions)
                    holds = (
                        grounded.atom in model
                        if child == db
                        else grounded.atom in model_of(child)
                    )
                    if holds:
                        survivors.append(grounding)
                        if len(survivors) >= _WHYNOT_BINDINGS:
                            truncated = True
                            break
                if truncated:
                    break
            reason = "no-child-derivation"
            pattern = premise.substitute(bindings[0]) if bindings else premise
            additions = ", ".join(str(a) for a in pattern.additions)
            detail = (
                f"no derivation of {pattern.goal} in child db "
                f"under [add: {additions}]"
            )
        else:  # Negated: remaining variables are local ("no instance")
            for binding in bindings:
                pattern = premise.atom.substitute(binding)
                found = next(model.matches(pattern), None)
                if found is None:
                    survivors.append(binding)
                    if len(survivors) >= _WHYNOT_BINDINGS:
                        truncated = True
                        break
                elif not witness:
                    witness = str(pattern.substitute(found))
            reason = "blocked-by-negation"
            detail = f"blocked by negation on {witness}" if witness else (
                f"blocked by negation on "
                f"{premise.atom.substitute(bindings[0]) if bindings else premise.atom}"
            )
        if not survivors:
            shown = premise.substitute(bindings[0]) if bindings else premise
            return PremiseFailure(
                rule, shown, reason, detail, tuple(satisfied), truncated
            )
        satisfied.append(premise)
        bindings = survivors
    return PremiseFailure(
        rule,
        None,
        "incomplete",
        "every premise found support"
        + (" (candidate search truncated)" if truncated else "")
        + "; no single failing premise to report",
        tuple(satisfied),
        truncated,
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def format_why_not(report: WhyNotReport) -> str:
    """Human rendering of a :class:`WhyNotReport`."""
    lines: list[str] = []
    if report.kind == "holds":
        lines.append(f"{report.goal} is derivable — ask why, not why-not")
        if report.note:
            lines.append(f"  note: {report.note}")
        return "\n".join(lines)
    lines.append(f"not derivable: {report.goal}  [db: {report.db_size} facts]")
    if report.note:
        lines.append(f"  {report.note}")
    for failure in report.failures:
        lines.append(f"  rule {failure.rule}")
        for premise in failure.satisfied:
            lines.append(f"    ok:    {premise}")
        if failure.premise is not None:
            lines.append(f"    fails: {failure.premise}  — {failure.detail}")
        else:
            lines.append(f"    {failure.detail}")
        if failure.truncated:
            lines.append(
                f"    (candidate search truncated at "
                f"{_WHYNOT_BINDINGS} bindings)"
            )
    return "\n".join(lines)


def format_assumptions(assumed: Optional[Iterable[Atom]]) -> str:
    """Human rendering of an assumption set."""
    if assumed is None:
        return "not provable"
    items = sorted(assumed, key=str)
    if not items:
        return "assumptions: (none — derivable from the database alone)"
    return "assumptions: " + ", ".join(str(item) for item in items)
