"""Graph coloring by hypothetical assignment.

Not a worked example of the paper, but the same construction pattern
as Example 7: nondeterministically pick an unprocessed element, record
a choice by hypothetically inserting a fact, and close the recursion
with negation-by-failure once nothing is left to process.  Where the
Hamiltonian rulebase records set membership (``pnode``), this one
records a *function* (``col(N, C)``) and guards each choice::

    yes :- ~uncolored(N).
    yes :- uncolored(N), color(C), ok(N, C), yes[add: col(N, C)].
    uncolored(N) :- node(N), ~has_color(N).
    has_color(N) :- col(N, C).
    ok(N, C) :- ~clash(N, C).
    clash(N, C) :- edge(N, M), col(M, C).
    clash(N, C) :- edge(M, N), col(M, C).

``R, DB |- yes`` iff the graph is properly colorable with the colors in
the ``color`` relation.  The rulebase is linear (one recursive premise)
and classifies as NP — graph k-colorability being the textbook
NP-complete problem.  Used by the timetabling example and the E15
workload.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.ast import Rulebase
from ..core.database import Database
from ..core.parser import parse_program

__all__ = ["coloring_rulebase", "coloring_db", "is_colorable"]


def coloring_rulebase() -> Rulebase:
    """``yes`` iff the ``node``/``edge`` graph is ``color``-colorable."""
    return parse_program(
        """
        yes :- ~uncolored(N).
        yes :- uncolored(N), color(C), ok(N, C), yes[add: col(N, C)].
        uncolored(N) :- node(N), ~has_color(N).
        has_color(N) :- col(N, C).
        ok(N, C) :- ~clash(N, C).
        clash(N, C) :- edge(N, M), col(M, C).
        clash(N, C) :- edge(M, N), col(M, C).
        """
    )


def coloring_db(
    nodes: Iterable[str],
    edges: Iterable[Sequence[str]],
    colors: Iterable[str],
) -> Database:
    """A coloring instance: graph plus available colors."""
    return Database.from_relations(
        {
            "node": list(nodes),
            "edge": [tuple(edge) for edge in edges],
            "color": list(colors),
        }
    )


def is_colorable(
    nodes: Sequence[str],
    edges: Iterable[Sequence[str]],
    colors: Sequence[str],
) -> bool:
    """Independent brute-force oracle (backtracking) for validation."""
    node_list = list(nodes)
    color_list = list(colors)
    index = {name: position for position, name in enumerate(node_list)}
    neighbours: list[set[int]] = [set() for _ in node_list]
    for source, target in edges:
        if source in index and target in index and source != target:
            neighbours[index[source]].add(index[target])
            neighbours[index[target]].add(index[source])

    assignment: list[int] = [-1] * len(node_list)

    def extend(position: int) -> bool:
        if position == len(node_list):
            return True
        for color in range(len(color_list)):
            if all(
                assignment[other] != color for other in neighbours[position]
            ):
                assignment[position] = color
                if extend(position + 1):
                    return True
                assignment[position] = -1
        return False

    if not color_list and node_list:
        return False
    return extend(0)
