"""The stratification showcase rulebases of Examples 9 and 10.

Example 9 is a three-stratum rulebase, the i-th stratum defining the
0-ary predicate ``a_i`` with one linear hypothetical rule and one rule
that steps down through negation.

Example 10 is H-stratified but *not* linearly stratifiable: its top
predicate recurses through two hypothetical premises at once — the
shape of rule (2), whose exclusion is the whole point of linearity.
"""

from __future__ import annotations

from ..core.ast import Rulebase
from ..core.parser import parse_program

__all__ = ["example9_rulebase", "example10_rulebase", "layered_rulebase"]


def example9_rulebase() -> Rulebase:
    """Example 9: three strata of alternating linearity and negation."""
    return parse_program(
        """
        a3 :- b3, a3[add: c3].
        a3 :- d3, ~a2.
        a2 :- b2, a2[add: c2].
        a2 :- d2, ~a1.
        a1 :- b1, a1[add: c1].
        a1 :- d1.
        """
    )


def example10_rulebase() -> Rulebase:
    """Example 10: H-stratified but not linearly stratified.

    The first rule has two recursive hypothetical premises, so the
    mutual-recursion class of ``a2`` has both hypothetical and
    non-linear recursion — the second Lemma 1 test rejects it.
    """
    return parse_program(
        """
        a2 :- a2[add: e2], a2[add: f2].
        a2 :- ~b2.
        b2 :- ~c2, b2.
        c2 :- ~d2, c2.
        d2 :- a1[add: g1].
        a1 :- a1[add: e1].
        a1 :- a1[add: f1].
        a1 :- ~b1.
        """
    )


def layered_rulebase(k: int) -> Rulebase:
    """A generalization of Example 9 to ``k`` strata.

    Stratum ``i`` defines ``a{i}`` with a linear hypothetical rule over
    EDB triggers ``b{i}``/``c{i}`` and a descent rule ``a{i} :- d{i},
    ~a{i-1}``; the bottom stratum closes with ``a1 :- d1``.  Used by the
    stratification benches, where ``k`` is the scaling knob.
    """
    if k < 1:
        raise ValueError("layered_rulebase needs k >= 1")
    lines: list[str] = []
    for index in range(k, 1, -1):
        lines.append(f"a{index} :- b{index}, a{index}[add: c{index}].")
        lines.append(f"a{index} :- d{index}, ~a{index - 1}.")
    lines.append("a1 :- b1, a1[add: c1].")
    lines.append("a1 :- d1.")
    return parse_program("\n".join(lines))
