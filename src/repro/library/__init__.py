"""Ready-made rulebases for every worked example in the paper.

================  =====================================================
Module            Paper locus
================  =====================================================
``university``    Examples 1-3 (hypothetical queries; rule premises)
``chains``        Examples 4-5 (chained additions; order iteration)
``coloring``      graph coloring (Example 7's pattern, beyond the paper)
``parity``        Example 6 (relation parity / EVEN)
``hamiltonian``   Examples 7-8 (Hamiltonian path; complement)
``strata``        Examples 9-10 (linear stratification showcases)
================  =====================================================
"""

from .chains import addition_chain_rulebase, order_db, order_iteration_rulebase
from .coloring import coloring_db, coloring_rulebase, is_colorable
from .hamiltonian import (
    graph_db,
    hamiltonian_complement_rulebase,
    hamiltonian_rulebase,
    has_hamiltonian_path,
)
from .parity import parity_db, parity_rulebase
from .strata import example9_rulebase, example10_rulebase, layered_rulebase
from .university import (
    degree_db,
    degree_rulebase,
    graduation_db,
    graduation_rulebase,
)

__all__ = [
    "graduation_rulebase",
    "graduation_db",
    "degree_rulebase",
    "degree_db",
    "addition_chain_rulebase",
    "order_iteration_rulebase",
    "order_db",
    "coloring_rulebase",
    "coloring_db",
    "is_colorable",
    "parity_rulebase",
    "parity_db",
    "hamiltonian_rulebase",
    "hamiltonian_complement_rulebase",
    "graph_db",
    "has_hamiltonian_path",
    "example9_rulebase",
    "example10_rulebase",
    "layered_rulebase",
]
