"""The relation-parity rulebase of Example 6.

``R, DB |- even`` iff the database has an even number of ``a`` entries.
The rulebase hypothetically copies ``a`` to a scratch relation ``b``
one tuple at a time, flipping between the 0-ary predicates ``even`` and
``odd`` as it goes; when the difference ``a - b`` is empty the third
rule closes the recursion with ``even``::

    even :- select(X...), odd[add: b(X...)].
    odd  :- select(X...), even[add: b(X...)].
    even :- ~select(X...).
    select(X...) :- a(X...), ~b(X...).

The paper highlights that *every* copying order yields the same answer
— the order-independence idea that powers the Section 6 expressibility
construction.  Experiment E4 checks the iff; the property tests check
order independence under domain renamings.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from ..core.ast import Rulebase
from ..core.database import Database
from ..core.parser import parse_program

__all__ = ["parity_rulebase", "parity_db"]


def parity_rulebase(arity: int = 1) -> Rulebase:
    """Example 6 for an ``a`` relation of the given arity."""
    if arity < 1:
        raise ValueError("parity_rulebase needs arity >= 1")
    variables = ", ".join(f"X{index}" for index in range(1, arity + 1))
    return parse_program(
        f"""
        even :- select({variables}), odd[add: b({variables})].
        odd  :- select({variables}), even[add: b({variables})].
        even :- ~select({variables}).
        select({variables}) :- a({variables}), ~b({variables}).
        """
    )


def parity_db(rows: Iterable[Union[str, int, Sequence[Union[str, int]]]]) -> Database:
    """A database whose ``a`` relation holds the given rows."""
    return Database.from_relations({"a": list(rows)})
