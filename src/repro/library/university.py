"""The university-policy rulebases of Examples 1-3.

Example 1 asks "if Tony took cs452, would he be eligible to graduate?"
— the object-level query ``grad(tony)[add: take(tony, cs452)]``.
Example 2 retrieves the students who could graduate if they took one
more course: ``exists C. grad(S)[add: take(S, C)]``.  Example 3 uses a
hypothetical query as a rule premise to define a joint math-and-physics
degree.

The Example 3 rulebase is deliberately *not* linearly stratifiable:
``grad`` and ``within1`` are mutually recursive, and the ``mathphys``
rule mentions ``within1`` twice, so the recursion is non-linear while
``within1`` recurses hypothetically.  (The paper cites [3] for the fact
that such rules cannot be expressed in Datalog at all.)  The session
API therefore falls back to the reference PSPACE engine for it — a nice
live illustration of the Lemma 1 tests.
"""

from __future__ import annotations

from ..core.database import Database
from ..core.parser import parse_program
from ..core.ast import Rulebase

__all__ = [
    "graduation_rulebase",
    "graduation_db",
    "degree_rulebase",
    "degree_db",
]


def graduation_rulebase() -> Rulebase:
    """Single-discipline graduation policy (Examples 1 and 2).

    A student graduates after taking his101, eng201, and cs250.
    ``within_one(S)`` is Example 2 packaged as a rule: students who
    could graduate if they took one more course.
    """
    return parse_program(
        """
        grad(S) :- take(S, his101), take(S, eng201), take(S, cs250).
        within_one(S) :- student(S), grad(S)[add: take(S, C)].
        """
    )


def graduation_db() -> Database:
    """Sample enrolment data.

    * tony has two of the three required courses — one course short;
    * sue has all three — already eligible (and trivially within one);
    * pat has one course — two short.
    """
    return Database.from_relations(
        {
            "student": ["tony", "sue", "pat"],
            "take": [
                ("tony", "his101"),
                ("tony", "eng201"),
                ("sue", "his101"),
                ("sue", "eng201"),
                ("sue", "cs250"),
                ("pat", "his101"),
            ],
        }
    )


def degree_rulebase() -> Rulebase:
    """Example 3: the math-and-physics joint degree policy.

    ``grad(S, D)`` — student S is eligible for a degree in discipline D;
    ``within1(S, D)`` — S is within one course of a degree in D.
    """
    return parse_program(
        """
        within1(S, D) :- grad(S, D)[add: take(S, C)].
        grad(S, mathphys) :- within1(S, math), within1(S, phys).
        grad(S, math) :- take(S, alg1), take(S, anal1).
        grad(S, phys) :- take(S, mech1), take(S, em1).
        """
    )


def degree_db() -> Database:
    """Sample data for Example 3.

    * ada has alg1 and mech1: one course from math *and* one from
      physics — eligible for mathphys;
    * bob has a full math degree but nothing in physics beyond mech1 —
      also within one of physics, hence mathphys;
    * cyd has only alg1 — within one of math but two from physics.
    """
    return Database.from_relations(
        {
            "take": [
                ("ada", "alg1"),
                ("ada", "mech1"),
                ("bob", "alg1"),
                ("bob", "anal1"),
                ("bob", "mech1"),
                ("cyd", "alg1"),
            ],
        }
    )
