"""The Hamiltonian-path rulebases of Examples 7 and 8.

Example 7: over a directed graph stored as ``node``/``edge`` facts,

    yes     :- node(X), path(X)[add: pnode(X)].
    path(X) :- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].
    path(X) :- ~select(Y).
    select(Y) :- node(Y), ~pnode(Y).

``R, DB |- yes`` iff the graph has a directed Hamiltonian path — the
rulebase records visited nodes by hypothetically asserting ``pnode``
and closes when no unvisited node remains.  This is the paper's
NP-hardness witness.

Example 8 adds the single non-recursive rule ``no :- ~yes``, making the
rulebase decide both the problem and its complement (NP and coNP
behaviour from one rulebase).  The paper's prose says "circuit" for
``R'`` but adding a non-recursive rule cannot change what ``yes``
means; we read it as the path problem and its complement (noted in
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.ast import Rulebase
from ..core.database import Database
from ..core.parser import parse_program

__all__ = [
    "hamiltonian_rulebase",
    "hamiltonian_complement_rulebase",
    "graph_db",
    "has_hamiltonian_path",
]

_RULES = """
yes :- node(X), path(X)[add: pnode(X)].
path(X) :- select(Y), edge(X, Y), path(Y)[add: pnode(Y)].
path(X) :- ~select(Y).
select(Y) :- node(Y), ~pnode(Y).
"""


def hamiltonian_rulebase() -> Rulebase:
    """Example 7: ``yes`` iff a directed Hamiltonian path exists."""
    return parse_program(_RULES)


def hamiltonian_complement_rulebase() -> Rulebase:
    """Example 8: Example 7 plus ``no :- ~yes``."""
    return parse_program(_RULES + "no :- ~yes.\n")


def graph_db(
    nodes: Iterable[str], edges: Iterable[Sequence[str]]
) -> Database:
    """A directed graph as ``node``/``edge`` facts."""
    return Database.from_relations(
        {"node": list(nodes), "edge": [tuple(edge) for edge in edges]}
    )


def has_hamiltonian_path(
    nodes: Sequence[str], edges: Iterable[Sequence[str]]
) -> bool:
    """Independent brute-force oracle used to validate the rulebase.

    Held-Karp style dynamic programming over (visited-set, endpoint):
    exponential, but by a different algorithm than the rulebase, so the
    two confirm each other.
    """
    node_list = list(nodes)
    if not node_list:
        return False
    index = {name: position for position, name in enumerate(node_list)}
    successors: list[list[int]] = [[] for _ in node_list]
    for source, target in edges:
        if source in index and target in index:
            successors[index[source]].append(index[target])
    full = (1 << len(node_list)) - 1
    reachable: set[tuple[int, int]] = {
        (1 << position, position) for position in range(len(node_list))
    }
    frontier = list(reachable)
    while frontier:
        visited, endpoint = frontier.pop()
        if visited == full:
            return True
        for target in successors[endpoint]:
            bit = 1 << target
            if visited & bit:
                continue
            state = (visited | bit, target)
            if state not in reachable:
                reachable.add(state)
                frontier.append(state)
    return False
