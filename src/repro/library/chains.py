"""The chained-addition rulebases of Examples 4 and 5.

Example 4 is a chain of ``n`` hypothetical rules::

    A_1 <- A_2[add: B_1]
    ...
    A_n <- A_{n+1}[add: B_n]
    A_{n+1} <- D

so that ``R, DB |- A_i`` iff ``R, DB + {B_i, ..., B_n} |- D``.

Example 5 iterates over a linear order stored in the database, adding
``B(a_j)`` for every element::

    A <- FIRST(x), A'(x)[add: B(x)]
    A'(x) <- NEXT(x, y), A'(y)[add: B(y)]
    A'(x) <- LAST(x), D

so that ``R, DB |- A`` iff ``R, DB + {B(a_1), ..., B(a_n)} |- D``.

In both cases the paper leaves ``D``'s definition abstract ("Horn rules
defining a predicate D").  The builders here define ``D`` to hold iff
*every* ``B`` entry of the construction is present, which makes the
"iff" statements fully checkable: proving ``A_i`` succeeds exactly when
the chain starting at ``i`` supplies everything ``D`` needs.
"""

from __future__ import annotations

from ..core.ast import Rulebase
from ..core.database import Database
from ..core.parser import parse_program

__all__ = [
    "addition_chain_rulebase",
    "order_iteration_rulebase",
    "order_db",
]


def addition_chain_rulebase(n: int) -> Rulebase:
    """Example 4 with ``D <- B_1, ..., B_n``.

    Predicates are 0-ary: ``a1 ... a{n+1}``, ``b1 ... b{n}``, ``d``.
    Over the empty database, ``a1`` is provable and ``a2 ... a{n+1}``
    are not (each skips at least ``b1``); adding ``b1, ..., b_{i-1}``
    to the database makes ``a_i`` provable.
    """
    if n < 1:
        raise ValueError("addition_chain_rulebase needs n >= 1")
    lines = [f"a{i} :- a{i + 1}[add: b{i}]." for i in range(1, n + 1)]
    lines.append(f"a{n + 1} :- d.")
    body = ", ".join(f"b{i}" for i in range(1, n + 1))
    lines.append(f"d :- {body}.")
    return parse_program("\n".join(lines))


def order_iteration_rulebase() -> Rulebase:
    """Example 5 with ``D`` defined to require ``B`` on every element.

    ``d`` walks the stored order checking that ``b`` holds from the
    first element to the last, so ``a`` is provable on a pure-order
    database (no ``b`` facts) iff the iteration really visited every
    element.
    """
    return parse_program(
        """
        a :- first(X), ap(X)[add: b(X)].
        ap(X) :- next(X, Y), ap(Y)[add: b(Y)].
        ap(X) :- last(X), d.
        d :- first(X), covered(X).
        covered(X) :- b(X), last(X).
        covered(X) :- b(X), next(X, Y), covered(Y).
        """
    )


def order_db(n: int, prefix: str = "a") -> Database:
    """A stored linear order ``FIRST(a1), NEXT(a1, a2), ..., LAST(an)``.

    This is the database shape of Example 5 (and of the Section 5.1
    counter, which uses integer constants instead; see
    :func:`repro.machines.encode.counter_facts`).
    """
    if n < 1:
        raise ValueError("order_db needs n >= 1")
    names = [f"{prefix}{index}" for index in range(1, n + 1)]
    relations: dict = {
        "first": [names[0]],
        "last": [names[-1]],
        "next": [(left, right) for left, right in zip(names, names[1:])],
    }
    if n == 1:
        relations["next"] = []
    return Database.from_relations(relations)
