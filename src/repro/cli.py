"""Command-line interface.

Installed as ``hypodatalog`` (also ``python -m repro``).  Subcommands:

* ``classify RULES`` — Theorem 1 complexity classification;
* ``stratify RULES`` — print the linear stratification, Example 9 style;
* ``query RULES -d DB "premise"`` — decide a query;
* ``answers RULES -d DB "pattern"`` — enumerate answers;
* ``model RULES -d DB`` — print the full perfect model;
* ``lint RULES`` — static hygiene warnings;
* ``graph RULES`` — Graphviz DOT of the dependency graph;
* ``explain RULES -d DB "query"`` — print a derivation;
* ``repl [RULES] [-d DB]`` — interactive console.

``RULES`` and ``DB`` are file paths in the textual syntax of
:mod:`repro.core.parser`; ``-`` reads from stdin.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis.classify import classify
from .analysis.stratify import linear_stratification
from .core.database import Database
from .core.errors import HypotheticalDatalogError
from .core.parser import parse_database, parse_program
from .core.pretty import format_database, format_stratification
from .engine.model import PerfectModelEngine
from .engine.query import Session

__all__ = ["main"]


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _load_db(path: Optional[str]) -> Database:
    if path is None:
        return Database()
    return parse_database(_read(path))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hypodatalog",
        description="Hypothetical Datalog with negation and linear recursion "
        "(Bonner, PODS 1989).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    classify_cmd = commands.add_parser(
        "classify", help="data-complexity classification (Theorem 1)"
    )
    classify_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")

    stratify_cmd = commands.add_parser(
        "stratify", help="print the linear stratification (Lemma 1)"
    )
    stratify_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")

    query_cmd = commands.add_parser("query", help="decide a query")
    query_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")
    query_cmd.add_argument("premise", help="query text, e.g. 'grad(tony)[add: take(tony, cs452)]'")
    query_cmd.add_argument("-d", "--db", help="database file")
    query_cmd.add_argument(
        "-e", "--engine", default="auto", choices=("auto", "prove", "topdown", "model")
    )

    answers_cmd = commands.add_parser("answers", help="enumerate answers")
    answers_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")
    answers_cmd.add_argument("pattern", help="atom pattern, e.g. 'grad(S)'")
    answers_cmd.add_argument("-d", "--db", help="database file")
    answers_cmd.add_argument(
        "-e", "--engine", default="auto", choices=("auto", "prove", "topdown", "model")
    )

    model_cmd = commands.add_parser("model", help="print the perfect model")
    model_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")
    model_cmd.add_argument("-d", "--db", help="database file")

    lint_cmd = commands.add_parser(
        "lint", help="static hygiene warnings for a rulebase"
    )
    lint_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")

    explain_cmd = commands.add_parser(
        "explain", help="print a derivation of a provable query"
    )
    explain_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")
    explain_cmd.add_argument("premise", help="query text")
    explain_cmd.add_argument("-d", "--db", help="database file")

    graph_cmd = commands.add_parser(
        "graph", help="emit the predicate dependency graph as Graphviz DOT"
    )
    graph_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")

    repl_cmd = commands.add_parser("repl", help="interactive console")
    repl_cmd.add_argument("rules", nargs="?", help="rulebase file to preload")
    repl_cmd.add_argument("-d", "--db", help="database file to preload")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    options = _build_parser().parse_args(argv)
    try:
        return _dispatch(options)
    except HypotheticalDatalogError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _dispatch(options: argparse.Namespace) -> int:
    if options.command == "repl":
        from .repl import run

        rulebase = (
            parse_program(_read(options.rules)) if options.rules else None
        )
        return run(rulebase, _load_db(options.db))
    rulebase = parse_program(_read(options.rules))
    if options.command == "classify":
        report = classify(rulebase)
        print(report)
        for note in report.notes:
            print(f"  note: {note}")
        return 0
    if options.command == "stratify":
        print(format_stratification(linear_stratification(rulebase)))
        return 0
    if options.command == "query":
        session = Session(rulebase, options.engine)
        result = session.ask(_load_db(options.db), options.premise)
        print("yes" if result else "no")
        return 0 if result else 1
    if options.command == "answers":
        session = Session(rulebase, options.engine)
        rows = session.answers(_load_db(options.db), options.pattern)
        for row in sorted(rows, key=str):
            print(", ".join(str(value) for value in row))
        return 0
    if options.command == "model":
        engine = PerfectModelEngine(rulebase)
        model = engine.model(_load_db(options.db))
        print(format_database(Database(model)))
        return 0
    if options.command == "graph":
        from .analysis.depgraph import DependencyGraph

        print(DependencyGraph.from_rulebase(rulebase).to_dot())
        return 0
    if options.command == "lint":
        from .analysis.lint import lint

        findings = lint(rulebase)
        for finding in findings:
            print(finding)
        if not findings:
            print("no findings")
        warnings = [f for f in findings if f.severity == "warning"]
        return 1 if warnings else 0
    if options.command == "explain":
        from .engine.proofs import Explainer, format_proof

        proof = Explainer(rulebase).explain(_load_db(options.db), options.premise)
        if proof is None:
            print("not provable")
            return 1
        print(format_proof(proof))
        return 0
    raise AssertionError(f"unhandled command {options.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
