"""Command-line interface.

Installed as ``hypodatalog`` (also ``python -m repro``).  Subcommands:

* ``classify RULES`` — Theorem 1 complexity classification;
* ``stratify RULES`` — print the linear stratification, Example 9 style;
* ``query RULES -d DB "premise"`` — decide a query (``--demand`` turns
  on goal-directed magic-sets evaluation for the bottom-up engine);
* ``answers RULES -d DB "pattern"`` — enumerate answers (``--demand``
  as for ``query``);
* ``model RULES -d DB`` — print the full perfect model;
* ``profile RULES -q QUERY [-d DB]`` — run one query with tracing on
  and print the span tree plus a metrics table; ``--trace-out FILE``
  writes a Chrome ``trace_event`` file (chrome://tracing / Perfetto)
  and ``--jsonl-out FILE`` a JSON-lines trace;
* ``lint RULES`` — static hygiene warnings (legacy codes);
* ``check RULES...`` — full diagnostics: source spans, binding-mode
  findings, cost estimates; ``--format {text,json,sarif}`` and a
  ``--fail-on`` severity gate for CI;
* ``graph RULES`` — Graphviz DOT of the dependency graph;
* ``explain RULES -d DB "query"`` — print a derivation.  ``--why``
  replays a proof from recorded provenance edges and certifies it
  with the independent verifier; ``--why-not`` prints a failure
  witness for an underivable query; ``--assumptions`` reports the
  hypothetical additions the derivation used
  (docs/OBSERVABILITY.md); ``--show-rewrite`` prints the
  adorned/demand-rewritten program instead (docs/DEMAND.md), and
  ``--demand`` selects the evaluation mode as for ``query``;
* ``repl [RULES] [-d DB]`` — interactive console;
* ``serve RULES [-d DB]`` — fault-tolerant JSON-lines query server:
  per-connection sessions over one shared rulebase, per-request
  budgets clamped by ``--max-budget-*`` ceilings, bounded admission
  with fast ``overloaded`` rejection, and graceful drain on
  SIGTERM/SIGINT (docs/SERVER.md).

``RULES`` and ``DB`` are file paths in the textual syntax of
:mod:`repro.core.parser`; ``-`` reads from stdin.

``query``/``answers``/``model``/``profile``/``explain`` accept
resource limits —
``--timeout SECONDS``, ``--max-steps N``, ``--max-atoms N``,
``--max-proof-depth N`` — enforced by :mod:`repro.engine.budget`; an
exhausted query prints whatever partial results were established.

Exit codes are stable (docs/ROBUSTNESS.md): 0 success, 1 negative or
gated result, 2 parse/validation/usage error, 3 stratification error,
4 evaluation error, 5 resource budget exhausted.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis.classify import classify
from .analysis.stratify import linear_stratification
from .core.database import Database
from .core.errors import (
    EvaluationError,
    HypotheticalDatalogError,
    ParseError,
    ResourceExhausted,
    StratificationError,
    ValidationError,
)
from .core.parser import parse_database, parse_program
from .core.pretty import format_database, format_stratification
from .engine.model import PerfectModelEngine
from .engine.query import Session

__all__ = ["main"]

#: Stable nonzero exit codes for the error hierarchy (docs/ROBUSTNESS.md).
EXIT_PARSE = 2
EXIT_STRATIFICATION = 3
EXIT_EVALUATION = 4
EXIT_EXHAUSTED = 5


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _load_db(path: Optional[str]) -> Database:
    if path is None:
        return Database()
    return parse_database(_read(path))


def _budget_arguments(cmd: argparse.ArgumentParser) -> None:
    """Resource-limit flags shared by the evaluating subcommands."""
    limits = cmd.add_argument_group(
        "resource limits (exit code 5 when exhausted; partial results "
        "are printed)"
    )
    limits.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline for the evaluation",
    )
    limits.add_argument(
        "--max-steps",
        type=int,
        default=None,
        metavar="N",
        help="inference-step limit (goal expansions / rule firings)",
    )
    limits.add_argument(
        "--max-atoms",
        type=int,
        default=None,
        metavar="N",
        help="cap on derived atoms (memory proxy)",
    )
    limits.add_argument(
        "--max-proof-depth",
        type=int,
        default=None,
        metavar="N",
        help="proof-depth limit for the top-down engines",
    )


def _budget_from(options: argparse.Namespace):
    """A :class:`~repro.engine.budget.Budget` from the CLI flags, or
    ``None`` when no limit was given (the zero-overhead default)."""
    if not any(
        getattr(options, name, None) is not None
        for name in ("timeout", "max_steps", "max_atoms", "max_proof_depth")
    ):
        return None
    from .engine.budget import Budget

    return Budget(
        timeout=options.timeout,
        max_steps=options.max_steps,
        max_atoms=options.max_atoms,
        max_depth=options.max_proof_depth,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hypodatalog",
        description="Hypothetical Datalog with negation and linear recursion "
        "(Bonner, PODS 1989).",
    )
    def _compile_argument(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--compile",
            default="auto",
            choices=("auto", "on", "off"),
            help="generated join kernels for the bottom-up engine "
            "(docs/PERFORMANCE.md); answers are identical either way, "
            "'auto' lets each engine pick",
        )

    commands = parser.add_subparsers(dest="command", required=True)

    classify_cmd = commands.add_parser(
        "classify", help="data-complexity classification (Theorem 1)"
    )
    classify_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")

    stratify_cmd = commands.add_parser(
        "stratify", help="print the linear stratification (Lemma 1)"
    )
    stratify_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")

    query_cmd = commands.add_parser("query", help="decide a query")
    query_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")
    query_cmd.add_argument("premise", help="query text, e.g. 'grad(tony)[add: take(tony, cs452)]'")
    query_cmd.add_argument("-d", "--db", help="database file")
    query_cmd.add_argument(
        "-e", "--engine", default="auto", choices=("auto", "prove", "topdown", "model")
    )
    query_cmd.add_argument(
        "--trace-out",
        metavar="FILE",
        help="also record a Chrome trace_event file of the evaluation",
    )
    query_cmd.add_argument(
        "--demand",
        default="off",
        choices=("auto", "on", "off"),
        help="goal-directed magic-sets evaluation for the bottom-up "
        "engine (docs/DEMAND.md); the top-down engines ignore it",
    )
    query_cmd.add_argument(
        "--explain",
        action="store_true",
        help="also print a provenance-backed derivation for a yes, or "
        "a why-not failure witness for a no (docs/OBSERVABILITY.md)",
    )
    _compile_argument(query_cmd)
    _budget_arguments(query_cmd)

    answers_cmd = commands.add_parser("answers", help="enumerate answers")
    answers_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")
    answers_cmd.add_argument("pattern", help="atom pattern, e.g. 'grad(S)'")
    answers_cmd.add_argument("-d", "--db", help="database file")
    answers_cmd.add_argument(
        "-e", "--engine", default="auto", choices=("auto", "prove", "topdown", "model")
    )
    answers_cmd.add_argument(
        "--trace-out",
        metavar="FILE",
        help="also record a Chrome trace_event file of the evaluation",
    )
    answers_cmd.add_argument(
        "--demand",
        default="off",
        choices=("auto", "on", "off"),
        help="goal-directed magic-sets evaluation for the bottom-up "
        "engine (docs/DEMAND.md); the top-down engines ignore it",
    )
    _compile_argument(answers_cmd)
    _budget_arguments(answers_cmd)

    model_cmd = commands.add_parser("model", help="print the perfect model")
    model_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")
    model_cmd.add_argument("-d", "--db", help="database file")
    model_cmd.add_argument(
        "--trace-out",
        metavar="FILE",
        help="also record a Chrome trace_event file of the evaluation",
    )
    _compile_argument(model_cmd)
    _budget_arguments(model_cmd)

    profile_cmd = commands.add_parser(
        "profile",
        help="run one query with tracing on; print spans and metrics",
    )
    profile_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")
    profile_cmd.add_argument(
        "-q",
        "--query",
        required=True,
        metavar="QUERY",
        help="query text, e.g. 'grad(S)' or "
        "'grad(tony)[add: take(tony, cs452)]'",
    )
    profile_cmd.add_argument("-d", "--db", help="database file")
    profile_cmd.add_argument(
        "-e", "--engine", default="auto", choices=("auto", "prove", "topdown", "model")
    )
    profile_cmd.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write a Chrome trace_event JSON file "
        "(open in chrome://tracing or Perfetto)",
    )
    profile_cmd.add_argument(
        "--jsonl-out",
        metavar="FILE",
        help="write the trace as JSON-lines (one span/event per line)",
    )
    profile_cmd.add_argument(
        "--max-depth",
        type=int,
        default=None,
        metavar="N",
        help="clip the printed span tree at depth N (exports are full)",
    )
    profile_cmd.add_argument(
        "--no-timings",
        action="store_true",
        help="omit durations from the printed tree (stable output)",
    )
    _budget_arguments(profile_cmd)

    lint_cmd = commands.add_parser(
        "lint", help="static hygiene warnings for a rulebase"
    )
    lint_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")
    lint_cmd.add_argument(
        "--format",
        default="text",
        choices=("text", "json", "sarif"),
        help="output format (default: text)",
    )
    lint_cmd.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="include the offending rule text in text output",
    )

    check_cmd = commands.add_parser(
        "check",
        help="full diagnostics: spans, binding modes, cost estimates",
    )
    check_cmd.add_argument(
        "rules", nargs="+", help="rulebase file(s) ('-' for stdin)"
    )
    check_cmd.add_argument(
        "--format",
        default="text",
        choices=("text", "json", "sarif"),
        help="output format (default: text)",
    )
    check_cmd.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="include rule text and fix hints in text output",
    )
    check_cmd.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="CODE=LEVEL",
        help="override a code's severity (repeatable), "
        "e.g. --severity cost-blowup=error",
    )
    check_cmd.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="CODE",
        help="suppress a diagnostic code (repeatable)",
    )
    check_cmd.add_argument(
        "--fail-on",
        default="error",
        choices=("none", "info", "warning", "error"),
        help="mildest severity that fails the run (default: error)",
    )
    check_cmd.add_argument(
        "-q",
        "--query",
        action="append",
        default=[],
        metavar="PATTERN",
        help="entry-point query seeding the binding-mode analysis "
        "(repeatable); defaults to all output predicates, all-free",
    )

    explain_cmd = commands.add_parser(
        "explain",
        help="explain a query: derivation, why-not witness, assumptions",
    )
    explain_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")
    explain_cmd.add_argument("premise", help="query text")
    explain_cmd.add_argument("-d", "--db", help="database file")
    explain_mode = explain_cmd.add_mutually_exclusive_group()
    explain_mode.add_argument(
        "--why",
        action="store_true",
        help="replay a proof from recorded provenance edges (no "
        "re-search) and certify it with the independent verifier; "
        "exit 1 when the query is not derivable",
    )
    explain_mode.add_argument(
        "--why-not",
        dest="why_not",
        action="store_true",
        help="print a failure witness for an underivable query (the "
        "first unsupported premise per candidate rule); exit 1 when "
        "the query actually holds",
    )
    explain_mode.add_argument(
        "--assumptions",
        action="store_true",
        help="report the hypothetical [add: ...] facts the derivation "
        "actually used; exit 1 when the query is not derivable",
    )
    explain_mode.add_argument(
        "--show-rewrite",
        dest="show_rewrite",
        action="store_true",
        help="print the query's adorned/demand-rewritten program "
        "instead of a derivation (docs/DEMAND.md); exit 1 when the "
        "rewrite rejects the query",
    )
    explain_mode.add_argument(
        "--plan",
        dest="show_plan",
        action="store_true",
        help="print the generated join-kernel source for the rules "
        "defining the query's predicate (docs/PERFORMANCE.md); exit 1 "
        "when no rule compiles",
    )
    explain_cmd.add_argument(
        "--demand",
        default="off",
        choices=("auto", "on", "off"),
        help="evaluation mode for the recording engine behind "
        "--why/--assumptions, consistent with 'query' "
        "(docs/DEMAND.md)",
    )
    _budget_arguments(explain_cmd)

    graph_cmd = commands.add_parser(
        "graph", help="emit the predicate dependency graph as Graphviz DOT"
    )
    graph_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")

    repl_cmd = commands.add_parser("repl", help="interactive console")
    repl_cmd.add_argument("rules", nargs="?", help="rulebase file to preload")
    repl_cmd.add_argument("-d", "--db", help="database file to preload")

    serve_cmd = commands.add_parser(
        "serve",
        help="serve hypothetical queries over the JSON-lines protocol "
        "(docs/SERVER.md)",
    )
    serve_cmd.add_argument("rules", help="rulebase file ('-' for stdin)")
    serve_cmd.add_argument("-d", "--db", help="base database file (shared, read-only)")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=7878, help="0 picks an ephemeral port"
    )
    serve_cmd.add_argument(
        "-e", "--engine", default="auto", choices=("auto", "prove", "topdown", "model"),
        help="default engine for sessions that don't choose one",
    )
    serve_cmd.add_argument(
        "--demand", default="off", choices=("auto", "on", "off"),
        help="default demand mode for sessions (docs/DEMAND.md)",
    )
    _compile_argument(serve_cmd)
    robustness = serve_cmd.add_argument_group(
        "robustness limits (docs/SERVER.md)"
    )
    robustness.add_argument(
        "--max-connections", type=int, default=256,
        help="simultaneous connections before fast 'overloaded' rejection",
    )
    robustness.add_argument(
        "--max-pending", type=int, default=64,
        help="admission gate: evaluating requests in flight server-wide",
    )
    robustness.add_argument(
        "--eval-concurrency", type=int, default=4,
        help="worker threads evaluating concurrently",
    )
    robustness.add_argument(
        "--max-frame-bytes", type=int, default=1 << 20,
        help="longest accepted request line",
    )
    robustness.add_argument(
        "--max-rps", type=float, default=0.0, metavar="N",
        help="per-connection requests/second (0 = unlimited)",
    )
    robustness.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="grace period for in-flight requests on shutdown",
    )
    ceilings = serve_cmd.add_argument_group(
        "per-request budget ceilings (clients may tighten, never loosen; "
        "exceeded budgets return code 'exhausted' with partial results)"
    )
    ceilings.add_argument(
        "--max-budget-timeout", type=float, default=30.0, metavar="SECONDS",
        help="wall-clock ceiling per request (0 = unlimited)",
    )
    ceilings.add_argument(
        "--max-budget-steps", type=int, default=0, metavar="N",
        help="inference-step ceiling per request (0 = unlimited)",
    )
    ceilings.add_argument(
        "--max-budget-atoms", type=int, default=0, metavar="N",
        help="derived-atom ceiling per request (0 = unlimited)",
    )
    ceilings.add_argument(
        "--max-budget-depth", type=int, default=0, metavar="N",
        help="proof-depth ceiling per request (0 = unlimited)",
    )

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code.

    Errors from the :class:`HypotheticalDatalogError` hierarchy map to
    stable codes (parse/validation 2, stratification 3, evaluation 4,
    budget exhausted 5) and are rendered through the diagnostics
    formatter rather than as raw tracebacks.
    """
    options = _build_parser().parse_args(argv)
    try:
        return _dispatch(options)
    except ResourceExhausted as error:
        _print_partial(error)
        _print_error(error, "resource-exhausted")
        print(f"partial results: {error.partial.describe()}", file=sys.stderr)
        return EXIT_EXHAUSTED
    except (ParseError, ValidationError) as error:
        _print_error(
            error,
            "parse-error" if isinstance(error, ParseError) else "invalid-program",
        )
        return EXIT_PARSE
    except StratificationError as error:
        _print_error(error, "stratification-error")
        return EXIT_STRATIFICATION
    except HypotheticalDatalogError as error:
        _print_error(error, "evaluation-error")
        return EXIT_EVALUATION
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_PARSE


def _print_error(error: Exception, code: str) -> None:
    """Render one fatal error in the diagnostics formatter's shape
    (``location: severity[code] message``)."""
    from .analysis.diagnostics import Diagnostic, render_text
    from .core.spans import Span

    span = getattr(error, "span", None)
    if span is None and getattr(error, "line", None) is not None:
        span = Span(error.line, error.column or 1)
    diag = Diagnostic(code=code, message=str(error), severity="error", span=span)
    print(render_text([diag]), file=sys.stderr)


def _print_partial(error: ResourceExhausted) -> None:
    """Print whatever an exhausted query had already established."""
    partial = error.partial
    if partial.answers:
        for row in sorted(partial.answers, key=str):
            if isinstance(row, tuple):
                print(", ".join(str(value) for value in row))
            else:
                print(row)


def _dispatch(options: argparse.Namespace) -> int:
    if options.command == "repl":
        from .repl import run

        rulebase = (
            parse_program(_read(options.rules)) if options.rules else None
        )
        return run(rulebase, _load_db(options.db))
    if options.command == "check":
        return _run_check(options)
    label = "<stdin>" if options.rules == "-" else options.rules
    rulebase = parse_program(_read(options.rules), label)
    if options.command == "classify":
        report = classify(rulebase)
        print(report)
        for note in report.notes:
            print(f"  note: {note}")
        return 0
    if options.command == "stratify":
        print(format_stratification(linear_stratification(rulebase)))
        return 0
    if options.command == "query":
        tracer, metrics = _trace_targets(options)
        session = Session(
            rulebase,
            options.engine,
            metrics=metrics,
            tracer=tracer,
            demand=options.demand,
            compile=options.compile,
        )
        db = _load_db(options.db)
        budget = _budget_from(options)
        result = session.ask(db, options.premise, budget=budget)
        _write_trace_out(options, tracer, metrics)
        print("yes" if result else "no")
        if options.explain:
            _query_explanation(session, rulebase, db, options, result, budget)
        return 0 if result else 1
    if options.command == "answers":
        tracer, metrics = _trace_targets(options)
        session = Session(
            rulebase,
            options.engine,
            metrics=metrics,
            tracer=tracer,
            demand=options.demand,
            compile=options.compile,
        )
        rows = session.answers(
            _load_db(options.db), options.pattern, budget=_budget_from(options)
        )
        _write_trace_out(options, tracer, metrics)
        for row in sorted(rows, key=str):
            print(", ".join(str(value) for value in row))
        return 0
    if options.command == "model":
        tracer, metrics = _trace_targets(options)
        engine = PerfectModelEngine(
            rulebase, metrics=metrics, tracer=tracer, compile=options.compile
        )
        model = engine.model(_load_db(options.db), budget=_budget_from(options))
        _write_trace_out(options, tracer, metrics)
        print(format_database(Database(model)))
        return 0
    if options.command == "profile":
        return _run_profile(options, rulebase)
    if options.command == "graph":
        from .analysis.depgraph import DependencyGraph

        print(DependencyGraph.from_rulebase(rulebase).to_dot())
        return 0
    if options.command == "lint":
        from .analysis.diagnostics import Diagnostic, to_json, to_sarif
        from .analysis.lint import lint

        findings = lint(rulebase)
        if options.format == "text":
            for finding in findings:
                print(finding.render(verbose=options.verbose))
            if not findings:
                print("no findings")
        else:
            diags = [
                Diagnostic(
                    code=f.code,
                    message=f.message,
                    severity=f.severity,
                    span=f.span,
                    rule=f.rule,
                )
                for f in findings
            ]
            emit = to_json if options.format == "json" else to_sarif
            print(emit(diags))
        warnings = [f for f in findings if f.severity == "warning"]
        return 1 if warnings else 0
    if options.command == "explain":
        return _run_explain(options, rulebase)
    if options.command == "serve":
        return _run_serve(options, rulebase)
    raise AssertionError(f"unhandled command {options.command!r}")


def _run_serve(options: argparse.Namespace, rulebase) -> int:
    """The ``serve`` command (docs/SERVER.md).

    Startup failures use the standard exit-code ladder (bad rulebase:
    2/3, bind failure: 2 via OSError).  Once listening, SIGTERM/SIGINT
    trigger a graceful drain; exit 0 when every in-flight request
    finished inside ``--drain-timeout``, 1 when stragglers had to be
    cancelled (they still received ``exhausted`` responses).
    """
    import asyncio
    import signal

    from .server.server import HypoDatalogServer, ServerConfig
    from .server.sessions import SharedRulebase

    shared = SharedRulebase(
        rulebase,
        _load_db(options.db),
        engine=options.engine,
        demand=options.demand,
        compile=options.compile,
    )
    config = ServerConfig(
        host=options.host,
        port=options.port,
        max_connections=options.max_connections,
        max_pending=options.max_pending,
        eval_concurrency=options.eval_concurrency,
        max_frame_bytes=options.max_frame_bytes,
        max_requests_per_second=options.max_rps,
        drain_timeout=options.drain_timeout,
        max_timeout=options.max_budget_timeout or None,
        max_steps=options.max_budget_steps or None,
        max_atoms=options.max_budget_atoms or None,
        max_depth=options.max_budget_depth or None,
    )

    async def amain() -> int:
        server = HypoDatalogServer(shared, config)
        await server.start()
        host, port = server.address
        print(f"listening on {host}:{port}", flush=True)
        print(
            f"rulebase: {shared.describe()['rules']} rules, "
            f"{shared.describe()['facts']} base facts, "
            f"engine={shared.engine_name}",
            file=sys.stderr,
        )
        loop = asyncio.get_running_loop()
        drain: dict[str, bool] = {}

        def _request_shutdown() -> None:
            if not drain:
                drain["requested"] = True
                loop.create_task(server.shutdown())

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, _request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # platforms without signal support: Ctrl-C raises
        await server.serve_until_shutdown()
        clean = not server.metrics.counter("server.drain.cancelled").value
        print(
            "drained cleanly" if clean else "drain timeout: stragglers cancelled",
            file=sys.stderr,
        )
        return 0 if clean else 1

    return asyncio.run(amain())


def _provenance_session(options: argparse.Namespace, rulebase):
    """A recording bottom-up session for ``explain``'s provenance
    modes, or ``None`` when the rulebase is outside the bottom-up
    engine's fragment (e.g. hypothetical deletions)."""
    try:
        return Session(
            rulebase, "model", demand=options.demand, provenance=True
        )
    except EvaluationError as error:
        print(f"note: {error}", file=sys.stderr)
        return None


def _run_plan(options: argparse.Namespace, rulebase) -> int:
    """``explain --plan``: generated kernel source for the rules
    defining the query's predicate.  Mirrors what the engines execute
    with compilation on (default order, full fire; semi-naive variants
    differ only in which premise reads the delta)."""
    from .core.parser import parse_premise
    from .engine.kernels import KernelProgram

    premise = parse_premise(options.premise)
    goal = getattr(premise, "atom", premise)
    rules = list(rulebase.definition(goal.predicate))
    if not rules:
        print(f"no rules define {goal.predicate!r}")
        return 1
    program = KernelProgram()
    shown = 0
    for item in rules:
        print(f"-- {item}")
        source = program.preview(item)
        if source is None:
            print("   (not compilable: interpreted fallback)")
        else:
            print(source)
            shown += 1
    return 0 if shown else 1


def _run_explain(options: argparse.Namespace, rulebase) -> int:
    if options.show_plan:
        return _run_plan(options, rulebase)
    if options.show_rewrite:
        from .analysis.magic import format_rewrite, magic_rewrite

        result = magic_rewrite(rulebase, options.premise)
        print(format_rewrite(result))
        return 0 if result.ok else 1
    db = _load_db(options.db)
    budget = _budget_from(options)
    if options.why or options.assumptions:
        session = _provenance_session(options, rulebase)
        if session is None:
            if options.assumptions:
                print("error: --assumptions needs the bottom-up engine")
                return EXIT_EVALUATION
            # --why degrades to the top-down proof search.
            from .engine.proofs import Explainer, format_proof

            proof = Explainer(rulebase, budget=budget).explain(
                db, options.premise
            )
            if proof is None:
                print("not provable")
                return 1
            print(format_proof(proof))
            return 0
        if options.assumptions:
            from .obs.provenance import format_assumptions

            assumed = session.assumptions(db, options.premise, budget=budget)
            print(format_assumptions(assumed))
            return 0 if assumed is not None else 1
        from .engine.proofs import format_proof, verify_proof

        proof = session.why(db, options.premise, budget=budget)
        if proof is None:
            print("not provable")
            return 1
        if not verify_proof(rulebase, proof):
            print("error: replayed proof failed verification")
            return EXIT_EVALUATION
        print(format_proof(proof))
        return 0
    if options.why_not:
        from .obs.provenance import format_why_not

        session = _provenance_session(options, rulebase)
        if session is None:
            print("error: --why-not needs the bottom-up engine")
            return EXIT_EVALUATION
        report = session.why_not(db, options.premise, budget=budget)
        print(format_why_not(report))
        return 0 if report.kind != "holds" else 1
    from .engine.proofs import Explainer, format_proof

    proof = Explainer(rulebase, budget=budget).explain(db, options.premise)
    if proof is None:
        print("not provable")
        return 1
    print(format_proof(proof))
    return 0


def _query_explanation(
    session: Session,
    rulebase,
    db: Database,
    options: argparse.Namespace,
    result: bool,
    budget,
) -> None:
    """``query --explain``: a derivation after a yes, a why-not
    witness after a no.  Best-effort — explanation failures never
    change the query's exit status."""
    try:
        if result:
            from .engine.proofs import format_proof

            try:
                proof = session.why(db, options.premise, budget=budget)
            except EvaluationError:
                proof = None  # e.g. deletions: replay unavailable
            if proof is None:
                proof = session.explain(db, options.premise, budget=budget)
            if proof is not None:
                print(format_proof(proof))
        else:
            from .obs.provenance import format_why_not

            report = session.why_not(db, options.premise, budget=budget)
            print(format_why_not(report))
    except EvaluationError as error:
        print(f"note: no explanation available: {error}", file=sys.stderr)


def _trace_targets(options: argparse.Namespace):
    """A (tracer, metrics) pair: live when ``--trace-out`` was given,
    the no-op tracer (and no registry) otherwise, so untraced runs pay
    nothing."""
    if getattr(options, "trace_out", None):
        from .obs.metrics import MetricsRegistry
        from .obs.trace import Tracer

        return Tracer(), MetricsRegistry()
    return None, None


def _write_trace_out(options: argparse.Namespace, tracer, metrics) -> None:
    if tracer is None:
        return
    from .obs.export import write_chrome_trace

    tracer.finish()
    write_chrome_trace(options.trace_out, tracer.root, metrics=metrics)
    print(f"trace written to {options.trace_out}", file=sys.stderr)


def _run_profile(options: argparse.Namespace, rulebase) -> int:
    """The ``profile`` command: one traced query, three outputs.

    Always prints the human report (span tree + metrics table);
    ``--trace-out`` adds a Chrome trace_event file and ``--jsonl-out``
    a JSON-lines trace.  Exit status is 0 whenever evaluation
    succeeded — a "no" answer is still a successful profile.
    """
    from .obs.export import to_jsonl, write_chrome_trace
    from .obs.profile import profile_query

    report = profile_query(
        rulebase,
        _load_db(options.db),
        options.query,
        engine=options.engine,
        budget=_budget_from(options),
    )
    print(
        report.render(
            max_depth=options.max_depth, timings=not options.no_timings
        )
    )
    if options.trace_out:
        write_chrome_trace(options.trace_out, report.root, metrics=report.metrics)
        print(f"trace written to {options.trace_out}", file=sys.stderr)
    if options.jsonl_out:
        with open(options.jsonl_out, "w", encoding="utf-8") as handle:
            handle.write(to_jsonl(report.root, metrics=report.metrics))
        print(f"trace written to {options.jsonl_out}", file=sys.stderr)
    return 0


def _run_check(options: argparse.Namespace) -> int:
    """The ``check`` command: diagnostics over one or more rule files.

    Exit status: 0 when no surviving diagnostic reaches ``--fail-on``,
    1 when one does, 2 on usage errors (bad code names, unreadable
    files).  Parse failures are diagnostics, not crashes, so a broken
    file fails the gate rather than aborting the run.
    """
    from .analysis.diagnostics import (
        DiagnosticConfig,
        check_source,
        render_text,
        severity_rank,
        to_json,
        to_sarif,
        worst_severity,
    )

    overrides: dict[str, str] = {}
    for pair in options.severity:
        code, _, level = pair.partition("=")
        if not level:
            print(
                f"error: --severity needs CODE=LEVEL, got {pair!r}",
                file=sys.stderr,
            )
            return 2
        overrides[code] = level
    try:
        config = DiagnosticConfig(
            severities=overrides,
            disabled=frozenset(options.disable),
            fail_on="error" if options.fail_on == "none" else options.fail_on,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    diagnostics = []
    for path in options.rules:
        label = "<stdin>" if path == "-" else path
        _, found = check_source(
            _read(path), label, config, queries=options.query
        )
        diagnostics.extend(found)

    if options.format == "json":
        print(to_json(diagnostics))
    elif options.format == "sarif":
        print(to_sarif(diagnostics))
    else:
        print(render_text(diagnostics, verbose=options.verbose))

    if options.fail_on == "none":
        return 0
    gate = severity_rank(options.fail_on)
    worst = worst_severity(diagnostics)
    return 1 if worst != "none" and severity_rank(worst) >= gate else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
