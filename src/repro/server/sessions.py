"""Server-side session state: shared rulebase, per-client isolation.

Bonner's cheap what-if contexts make the natural service shape
many-clients-one-rulebase: the rules (and their analysis, plans, and
compiled kernels) are read-only and shared, while every client owns a
private, cheap, copy-on-write view of the facts.  Two classes split
that exactly:

* :class:`SharedRulebase` — the immutable :class:`~repro.core.ast.Rulebase`
  plus the base :class:`~repro.core.database.Database`, validated once
  at server startup so a broken rulebase fails the *process* (CLI exit
  3/2), never a request.  Engine-level caches (join plans, generated
  kernels, interned symbols) live inside each client's engine, but the
  rulebase and base-db objects they hang off are shared structurally —
  the COW database layers mean a thousand sessions asserting disjoint
  facts share the base relations rather than copying them
  (``tests/test_shared_rulebase.py`` pins the isolation).

* :class:`ClientSession` — one client's view: an overlay of asserted /
  retracted facts over the shared base, plus the engine session
  answering queries.  Sessions never share mutable state with each
  other; closing one frees everything it owned.

Threading: evaluation runs on worker threads
(:mod:`repro.server.server` bounds how many), but each
:class:`ClientSession` is only ever used by its own connection's
requests, which the server serializes per session — so the engine's
internal caches need no locks.  The shared pieces crossing threads are
the immutable rulebase/database structures and the metrics registry
(whose counters tolerate benign races; see docs/SERVER.md).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from ..core.ast import Rulebase
from ..core.database import Database
from ..core.errors import ValidationError
from ..core.parser import parse_atom
from ..core.terms import Atom
from ..engine.query import Session, StandingQuery
from ..obs.metrics import MetricsRegistry

__all__ = ["ClientSession", "SharedRulebase", "parse_fact"]


def parse_fact(text: str) -> Atom:
    """One ground fact from wire text (trailing ``.`` tolerated).

    Raises :class:`ParseError`/:class:`ValidationError`, which the
    protocol layer maps to the stable ``parse`` error code.
    """
    atom = parse_atom(text.strip().rstrip("."))
    if not atom.is_ground:
        raise ValidationError(f"fact {atom} is not ground")
    return atom


class SharedRulebase:
    """The read-only compiled rulebase every session evaluates against.

    Constructing one validates the rulebase by building a probe engine
    session, so stratification and classification problems surface at
    server startup with the usual error taxonomy instead of failing
    every request later.
    """

    def __init__(
        self,
        rulebase: Rulebase,
        base_db: Optional[Database] = None,
        *,
        engine: str = "auto",
        demand: str = "off",
        compile: str = "auto",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.rulebase = rulebase
        self.base_db = base_db if base_db is not None else Database()
        self.engine = engine
        self.demand = demand
        self.compile = compile
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Fail fast: a rulebase the engines reject must kill `serve`
        # at startup, not the first request.
        probe = Session(rulebase, engine, demand=demand, compile=compile)
        self.engine_name = probe.engine_name

    def describe(self) -> dict:
        """Shape summary for ``ping`` responses and startup logs."""
        return {
            "rules": len(self.rulebase),
            "facts": len(self.base_db),
            "engine": self.engine_name,
            "demand": self.demand,
            "compile": str(self.compile),
        }


class ClientSession:
    """One client's isolated view over the shared rulebase.

    ``assert_facts``/``retract_facts`` maintain a private overlay; the
    effective database is rebuilt lazily as
    ``base + asserted - retracted`` through the COW layers, so deltas
    cost O(changes), never O(|base|).  Retracting a base fact is
    allowed and stays private to this session (Sáenz-Pérez's
    restriction semantics: an assumption set may also *withhold*
    facts).
    """

    _names = itertools.count(1)

    def __init__(
        self,
        shared: SharedRulebase,
        name: Optional[str] = None,
        *,
        engine: Optional[str] = None,
        demand: Optional[str] = None,
        compile: Optional[str] = None,
    ) -> None:
        self.shared = shared
        self.name = name if name else f"s{next(self._names)}"
        self._asserted: dict[Atom, None] = {}
        self._retracted: dict[Atom, None] = {}
        self._db: Optional[Database] = None
        self._watches: dict[str, StandingQuery] = {}
        self._watch_names = itertools.count(1)
        self._session = Session(
            shared.rulebase,
            engine if engine is not None else shared.engine,
            metrics=shared.metrics,
            demand=demand if demand is not None else shared.demand,
            compile=compile if compile is not None else shared.compile,
        )

    @property
    def engine_name(self) -> str:
        return self._session.engine_name

    @property
    def db(self) -> Database:
        """The session's effective database (lazily rebuilt)."""
        if self._db is None:
            db = self.shared.base_db
            if self._asserted:
                db = db.with_facts(*self._asserted)
            if self._retracted:
                db = db.without_facts(*self._retracted)
            self._db = db
        return self._db

    # -- fact overlay ---------------------------------------------------

    def assert_facts(self, texts: Iterable[str]) -> int:
        """Add ground facts to this session's overlay; returns how many
        became newly visible (idempotent re-asserts don't count).

        Visibility is judged against the *effective* view (base +
        asserted - retracted) snapshotted before the batch: re-asserting
        a base fact this session had retracted counts — it changes what
        queries see — and a duplicate within one batch counts once.
        """
        atoms = [parse_fact(text) for text in texts]
        added = 0
        view = self.db
        shown: set[Atom] = set()
        for atom in atoms:
            if atom not in view and atom not in shown:
                added += 1
                shown.add(atom)
            self._retracted.pop(atom, None)
            self._asserted.setdefault(atom, None)
        self._db = None
        return added

    def retract_facts(self, texts: Iterable[str]) -> int:
        """Remove ground facts from this session's view; returns how
        many were actually visible before the retract.

        Judged against the pre-batch view with in-batch removals
        tracked, so a batch naming the same fact twice reports it
        removed once, not twice.
        """
        atoms = [parse_fact(text) for text in texts]
        removed = 0
        view = self.db
        hidden: set[Atom] = set()
        for atom in atoms:
            if atom in view and atom not in hidden:
                removed += 1
                hidden.add(atom)
            self._asserted.pop(atom, None)
            self._retracted.setdefault(atom, None)
        self._db = None
        return removed

    def overlay(self) -> dict:
        """The session's private delta, for introspection/tests."""
        return {
            "asserted": sorted(str(atom) for atom in self._asserted),
            "retracted": sorted(str(atom) for atom in self._retracted),
        }

    # -- standing queries (docs/INCREMENTAL.md) -------------------------

    @property
    def watches(self) -> tuple[str, ...]:
        """The ids of this session's registered standing queries."""
        return tuple(self._watches)

    def watch(
        self,
        pattern: str,
        *,
        name: Optional[str] = None,
        budget=None,
    ) -> tuple[str, frozenset]:
        """Register a standing query; returns ``(watch id, current
        answer set)``.  The id is caller-chosen or generated (``w1``,
        ``w2``, ...)."""
        wid = name if name else f"w{next(self._watch_names)}"
        if wid in self._watches:
            raise ValidationError(f"watch {wid!r} is already registered")
        query = self._session.watch(pattern)
        initial = query.refresh(self.db, budget=budget)
        self._watches[wid] = query
        return wid, initial.added

    def unwatch(self, name: str) -> bool:
        """Drop a standing query; True iff it existed."""
        return self._watches.pop(name, None) is not None

    def refresh_watches(self, *, budget=None) -> list[dict]:
        """Re-evaluate every standing query against the current view;
        returns one JSON-ready payload per watch whose answer set
        changed (empty diffs are suppressed)."""
        events: list[dict] = []
        for wid, query in self._watches.items():
            diff = query.refresh(self.db, budget=budget)
            if diff:
                events.append(
                    {
                        "watch": wid,
                        "pattern": query.text,
                        "added": sorted(
                            [list(row) for row in diff.added], key=str
                        ),
                        "removed": sorted(
                            [list(row) for row in diff.removed], key=str
                        ),
                    }
                )
        return events

    # -- evaluation -----------------------------------------------------

    def _target_db(self, assume: Optional[Iterable[str]]) -> Database:
        """The database one request evaluates against: the session view
        plus any one-shot ``assume`` facts (a what-if that never
        mutates the session)."""
        db = self.db
        if assume:
            db = db.with_facts(*(parse_fact(text) for text in assume))
        return db

    def ask(
        self, query: str, *, assume: Optional[Iterable[str]] = None, budget=None
    ) -> bool:
        return self._session.ask(self._target_db(assume), query, budget=budget)

    def answers(
        self, pattern: str, *, assume: Optional[Iterable[str]] = None, budget=None
    ) -> set[tuple]:
        return self._session.answers(
            self._target_db(assume), pattern, budget=budget
        )

    def model(
        self, *, assume: Optional[Iterable[str]] = None, budget=None
    ) -> frozenset:
        """The full perfect model of the session's database.

        Served by a lazily built bottom-up engine regardless of the
        query engine, since only :class:`PerfectModelEngine` computes
        whole models.
        """
        from ..engine.model import PerfectModelEngine

        engine = getattr(self, "_model_engine", None)
        if engine is None:
            engine = PerfectModelEngine(
                self.shared.rulebase,
                metrics=self.shared.metrics,
                compile=self.shared.compile,
            )
            self._model_engine = engine
        return engine.model(self._target_db(assume), budget=budget)
