"""Scripted client session against a running server (CI smoke).

Drives one end-to-end conversation — control ops, session state,
what-ifs, budgets, and a deliberately malformed frame — and exits
non-zero on the first wrong response.  CI starts ``hypodatalog
serve`` against the graduation rulebase, runs this module, then sends
SIGTERM and asserts the clean-drain exit code (docs/SERVER.md):

    hypodatalog serve examples/rulebases/graduation.dl --port 7979 &
    python -m repro.server.smoke --port 7979
    kill -TERM %1; wait %1   # exit 0 = drained clean
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import time

from .protocol import encode_frame

_TONY = [
    "take(tony, his101)",
    "take(tony, eng201)",
    "take(tony, cs250)",
]


def wait_for_port(host: str, port: int, timeout: float) -> None:
    deadline = time.monotonic() + timeout
    while True:
        try:
            socket.create_connection((host, port), timeout=1.0).close()
            return
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.1)


def run_session(host: str, port: int) -> list[str]:
    """The scripted conversation; returns a list of failure messages."""
    failures: list[str] = []
    sock = socket.create_connection((host, port), timeout=10.0)
    stream = sock.makefile("rwb")
    counter = 0

    def call(frame_bytes: bytes) -> dict:
        stream.write(frame_bytes)
        stream.flush()
        line = stream.readline()
        if not line:
            raise OSError("server closed the connection")
        return json.loads(line)

    def step(name: str, op: str, check, **params) -> None:
        nonlocal counter
        counter += 1
        frame = {"v": 1, "id": counter, "op": op}
        frame.update(params)
        response = call(encode_frame(frame))
        problem = None
        if response.get("id") != counter:
            problem = f"id {response.get('id')!r} != {counter}"
        else:
            problem = check(response)
        if problem:
            failures.append(f"{name}: {problem} in {response!r}")
        print(f"{'FAIL' if problem else 'ok':4} {name}")

    def expect_ok(key, value):
        def check(response):
            if not response.get("ok"):
                return f"expected ok, got {response.get('error')}"
            if response["result"].get(key) != value:
                return f"result[{key}] != {value!r}"
            return None
        return check

    def expect_error(code):
        def check(response):
            if response.get("ok"):
                return f"expected error {code}, got ok"
            if response["error"]["code"] != code:
                return f"error code != {code}"
            return None
        return check

    step("ping", "ping", expect_ok("pong", True))
    step("assert tony's courses", "assert", expect_ok("added", 3),
         facts=_TONY)
    step("query yes", "query", expect_ok("answer", True),
         query="grad(tony)")
    step("query no", "query", expect_ok("answer", False),
         query="grad(ann)")
    step("one-shot what-if", "query", expect_ok("answer", True),
         query="grad(ann)", assume=[f.replace("tony", "ann") for f in _TONY])
    step("what-if did not stick", "query", expect_ok("answer", False),
         query="grad(ann)")
    step("inline hypothetical", "query", expect_ok("answer", True),
         query="within_one(tony)[add: student(tony)]")
    step("answers", "answers",
         expect_ok("rows", [["tony"]]), pattern="grad(S)")
    step("budgeted query", "query", expect_ok("answer", True),
         query="grad(tony)", budget={"max_steps": 1_000_000, "timeout": 10})
    step("parse error is stable", "query", expect_error("parse"),
         query="grad(")

    # A malformed frame poisons one request, never the connection.
    counter += 1
    response = call(b"this is not json\n")
    if response.get("ok") or response["error"]["code"] != "invalid-request":
        failures.append(f"malformed frame: {response!r}")
    print(f"{'FAIL' if failures and 'malformed' in failures[-1] else 'ok':4} "
          "malformed frame tolerated")
    step("connection survived", "ping", expect_ok("pong", True))

    stream.close()
    sock.close()
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="scripted smoke session against hypodatalog serve"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--wait", type=float, default=15.0,
        help="seconds to wait for the port to start listening",
    )
    options = parser.parse_args(argv)
    wait_for_port(options.host, options.port, options.wait)
    failures = run_session(options.host, options.port)
    for failure in failures:
        print(f"smoke failure: {failure}", file=sys.stderr)
    print("smoke passed" if not failures else "smoke FAILED")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
