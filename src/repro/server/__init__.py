"""Fault-tolerant network service for hypothetical Datalog.

``hypodatalog serve`` exposes the engines over a JSON-lines wire
protocol (docs/SERVER.md): per-connection isolated sessions sharing
one read-only rulebase, per-request budgets clamped by server
ceilings, a bounded admission gate with fast ``overloaded`` rejection,
per-connection rate/size limits, malformed-frame tolerance, and
graceful drain on shutdown.  The load-test harness lives in
:mod:`repro.server.loadtest`.
"""

from .protocol import (
    PROTOCOL_VERSION,
    ERROR_CODES,
    OPS,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
)
from .sessions import ClientSession, SharedRulebase
from .server import HypoDatalogServer, ServerConfig

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "OPS",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "error_response",
    "ok_response",
    "ClientSession",
    "SharedRulebase",
    "HypoDatalogServer",
    "ServerConfig",
]
