"""The JSON-lines wire protocol (docs/SERVER.md).

One request per line, one response per line, UTF-8, ``\\n``-terminated.
Requests are flat JSON objects with three reserved keys —

* ``v`` — protocol version (currently ``1``; missing means 1 so
  hand-typed ``telnet`` sessions work);
* ``id`` — caller-chosen request id (string or int), echoed verbatim
  on the response so clients can pipeline;
* ``op`` — one of :data:`OPS`;

— plus per-op parameters (``query``, ``pattern``, ``facts``,
``session``, ``assume``, ``budget``, ``engine``, ``watch``, ...).
Responses are ``{"v": 1, "id": ..., "ok": true, "result": {...}}`` or
``{"v": 1, "id": ..., "ok": false, "error": {"code": ..., "message":
..., "partial": {...}?}}``.

Standing queries (``subscribe``/``unsubscribe``, docs/INCREMENTAL.md)
additionally make the server *push* unsolicited **event frames**:
``{"v": 1, "event": "watch", "session": ..., "watch": ..., "pattern":
..., "added": [...], "removed": [...]}``.  Event frames carry an
``event`` key and **no** ``ok`` key — that is how a pipelining client
distinguishes them from responses; they are emitted after the
response to the ``assert``/``retract`` that changed a watched answer
set, one frame per watch whose diff is non-empty.

Error codes are stable and mirror the CLI exit codes
(docs/ROBUSTNESS.md) where a CLI equivalent exists:

==================  ==========================================  ====
code                meaning                                      exit
==================  ==========================================  ====
``parse``           query/fact text failed to parse               2
``stratification``  rulebase rejected by stratification           3
``evaluation``      evaluation error (bad engine, arity, ...)     4
``exhausted``       per-request budget tripped; ``partial``       5
                    carries the sound partial result
``invalid-request`` malformed frame: bad JSON, wrong types,       --
                    unknown protocol version
``frame-too-large`` request line exceeded the frame limit         --
``unknown-op``      ``op`` not in :data:`OPS`                     --
``unknown-session`` ``session`` names no open session             --
``unknown-watch``   ``watch`` names no registered standing query  --
``overloaded``      admission gate full; retry later              --
``rate-limited``    connection exceeded its request rate          --
``shutting-down``   server is draining; no new work               --
``internal``        unexpected server-side failure                --
==================  ==========================================  ====

The module is dependency-free on the server side of the package so the
load-test client (:mod:`repro.server.loadtest`) and the REPL's
``:connect`` can reuse the framing without importing asyncio code.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from ..core.errors import (
    EvaluationError,
    HypotheticalDatalogError,
    ParseError,
    ResourceExhausted,
    StratificationError,
    ValidationError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "OPS",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "error_for_exception",
    "error_response",
    "event_frame",
    "ok_response",
]

PROTOCOL_VERSION = 1

#: Every op the server understands.  ``query``/``answers``/``model``/
#: ``subscribe`` evaluate (and pass the admission gate); the rest are
#: control ops answered inline.
OPS = frozenset(
    {
        "ping",
        "session.open",
        "session.close",
        "assert",
        "retract",
        "query",
        "answers",
        "model",
        "subscribe",
        "unsubscribe",
    }
)

#: The stable error-code vocabulary (see module docstring).
ERROR_CODES = frozenset(
    {
        "parse",
        "stratification",
        "evaluation",
        "exhausted",
        "invalid-request",
        "frame-too-large",
        "unknown-op",
        "unknown-session",
        "unknown-watch",
        "overloaded",
        "rate-limited",
        "shutting-down",
        "internal",
    }
)

#: Request ids may be strings or ints (JSON has no other useful keys).
_ID_TYPES = (str, int)


class ProtocolError(Exception):
    """A request frame the server refuses; carries the stable code."""

    def __init__(self, code: str, message: str) -> None:
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code


def decode_frame(raw: bytes | str) -> dict:
    """Parse and validate one request line.

    Raises :class:`ProtocolError` (never json's own errors) so the
    caller can turn any malformed frame into exactly one error
    response — a bad frame poisons one request, not the connection.
    """
    if isinstance(raw, bytes):
        try:
            raw = raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError("invalid-request", f"frame is not UTF-8: {error}")
    try:
        frame = json.loads(raw)
    except json.JSONDecodeError as error:
        raise ProtocolError("invalid-request", f"frame is not valid JSON: {error}")
    if not isinstance(frame, dict):
        raise ProtocolError(
            "invalid-request",
            f"frame must be a JSON object, got {type(frame).__name__}",
        )
    version = frame.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "invalid-request",
            f"unsupported protocol version {version!r} "
            f"(this server speaks v{PROTOCOL_VERSION})",
        )
    request_id = frame.get("id")
    if request_id is not None and not isinstance(request_id, _ID_TYPES):
        raise ProtocolError(
            "invalid-request", "request 'id' must be a string or integer"
        )
    op = frame.get("op")
    if not isinstance(op, str):
        raise ProtocolError("invalid-request", "request is missing an 'op' string")
    if op not in OPS:
        raise ProtocolError(
            "unknown-op",
            f"unknown op {op!r}; supported: {', '.join(sorted(OPS))}",
        )
    return frame


def encode_frame(payload: dict) -> bytes:
    """One response (or request) as a newline-terminated JSON line."""
    return (json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n").encode(
        "utf-8"
    )


def ok_response(request_id: Optional[Any], result: dict) -> dict:
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True, "result": result}


def event_frame(event: str, payload: dict) -> dict:
    """An unsolicited server-push frame (no ``id``, no ``ok``).

    Clients recognize events by the ``event`` key; anything with an
    ``ok`` key is a response to one of their own requests.
    """
    return {"v": PROTOCOL_VERSION, "event": event, **payload}


def error_response(
    request_id: Optional[Any],
    code: str,
    message: str,
    *,
    partial: Optional[dict] = None,
) -> dict:
    assert code in ERROR_CODES, code
    error: dict = {"code": code, "message": message}
    if partial is not None:
        error["partial"] = partial
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": False, "error": error}


def error_for_exception(error: Exception) -> tuple[str, str, Optional[dict]]:
    """Map an exception to ``(code, message, partial_dict)``.

    The mapping mirrors ``repro.cli.main``'s exit-code ladder so a
    network client and a CLI user see the same taxonomy for the same
    failure (docs/ROBUSTNESS.md).
    """
    if isinstance(error, ResourceExhausted):
        return "exhausted", str(error), error.partial.to_dict()
    if isinstance(error, (ParseError, ValidationError)):
        return "parse", str(error), None
    if isinstance(error, StratificationError):
        return "stratification", str(error), None
    if isinstance(error, (EvaluationError, HypotheticalDatalogError)):
        return "evaluation", str(error), None
    return "internal", f"{type(error).__name__}: {error}", None
