"""The asyncio JSON-lines query server (docs/SERVER.md).

Engineering posture: every failure mode must degrade by the smallest
possible unit —

* a malformed or oversized frame poisons **one request** (one error
  response), never the connection;
* a misbehaving connection (rate abuse, endless garbage, a failpoint
  trip at its network sites) poisons **one connection**, never the
  server;
* overload is rejected **fast** (``overloaded`` before any parsing of
  the query text) under a bounded admission gate, so pressure turns
  into latency and rejections, never unbounded memory;
* every evaluating request runs under a server-clamped
  :class:`~repro.engine.budget.Budget` with a fresh
  :class:`~repro.engine.budget.CancellationToken`, so exhaustion
  returns a sound :class:`~repro.core.errors.PartialResult` on the
  wire and shutdown can cancel stragglers cooperatively;
* shutdown drains: in-flight requests get ``drain_timeout`` seconds to
  finish, then their tokens are cancelled (they still answer, with
  ``exhausted``), then connections close.

Concurrency model: one asyncio task per connection reads frames
sequentially (so a client session's engine caches are never touched by
two threads at once); evaluating ops hop to a worker thread via
``asyncio.to_thread`` under an ``eval_concurrency`` semaphore, keeping
the event loop responsive to hundreds of idle/slow connections while
bounding CPU oversubscription.  Fault injection: the
``server.accept`` / ``server.read_frame`` / ``server.evaluate`` /
``server.write_response`` failpoint sites
(:mod:`repro.testing.failpoints`) let tests prove each degradation
boundary holds.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Optional

from ..core.errors import HypotheticalDatalogError, ResourceExhausted
from ..engine.budget import Budget, CancellationToken
from ..obs.trace import TraceSpan
from ..testing import failpoints
from . import protocol
from .protocol import ProtocolError
from .sessions import ClientSession, SharedRulebase

__all__ = ["HypoDatalogServer", "ServerConfig"]

#: Consecutive malformed frames after which a connection is deemed
#: hostile and closed (each still got its own error response first).
_MALFORMED_CONNECTION_LIMIT = 32

#: Grace period after drain-timeout cancellation for the cancelled
#: evaluations to surface their ``exhausted`` responses.
_CANCEL_GRACE = 2.0


@dataclass
class ServerConfig:
    """Tunables; every limit exists to bound some resource."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port from .address
    #: Hard cap on simultaneously open connections; beyond it a new
    #: connection receives one ``overloaded`` frame and is closed.
    max_connections: int = 256
    #: Admission gate: evaluating requests admitted (queued + running)
    #: across the whole server; beyond it requests are rejected with
    #: ``overloaded`` instead of queuing without bound.
    max_pending: int = 64
    #: Worker threads evaluating concurrently.
    eval_concurrency: int = 4
    #: Longest accepted request line, in bytes.
    max_frame_bytes: int = 1 << 20
    #: Per-connection request rate (requests/second, token bucket with
    #: 2x burst); 0 disables rate limiting.
    max_requests_per_second: float = 0.0
    #: Open sessions allowed per connection.
    max_sessions: int = 64
    #: Seconds in-flight requests get to finish on shutdown before
    #: their cancellation tokens fire.
    drain_timeout: float = 5.0
    #: Server-side budget ceilings: a client may request *tighter*
    #: limits, never looser; requests that name no limit inherit the
    #: ceiling.  ``None`` leaves that dimension unlimited.
    max_timeout: Optional[float] = 30.0
    max_steps: Optional[int] = None
    max_atoms: Optional[int] = None
    max_depth: Optional[int] = None

    def public_limits(self) -> dict:
        """The limits advertised in ``ping`` responses."""
        return {
            "max_frame_bytes": self.max_frame_bytes,
            "max_pending": self.max_pending,
            "max_requests_per_second": self.max_requests_per_second,
            "budget_ceilings": {
                "timeout": self.max_timeout,
                "max_steps": self.max_steps,
                "max_atoms": self.max_atoms,
                "max_depth": self.max_depth,
            },
        }


def _clamp(requested, ceiling):
    """min(requested, ceiling) where None means unlimited."""
    if requested is None:
        return ceiling
    if ceiling is None:
        return requested
    return min(requested, ceiling)


class _TokenBucket:
    """Per-connection request-rate limiter (burst = 2x rate)."""

    __slots__ = ("rate", "capacity", "tokens", "updated")

    def __init__(self, rate: float) -> None:
        self.rate = rate
        self.capacity = max(2.0 * rate, 1.0)
        self.tokens = self.capacity
        self.updated = time.monotonic()

    def try_take(self) -> bool:
        if self.rate <= 0:
            return True
        now = time.monotonic()
        self.tokens = min(
            self.capacity, self.tokens + (now - self.updated) * self.rate
        )
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(eq=False)
class _Connection:
    """Book-keeping for one live client connection."""

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    bucket: _TokenBucket
    sessions: dict = field(default_factory=dict)
    default_session: Optional[ClientSession] = None
    malformed_streak: int = 0
    closed: bool = False


class HypoDatalogServer:
    """One shared rulebase served to many concurrent clients."""

    def __init__(
        self,
        shared: SharedRulebase,
        config: Optional[ServerConfig] = None,
        *,
        tracer=None,
    ) -> None:
        self.shared = shared
        self.config = config if config is not None else ServerConfig()
        self.metrics = shared.metrics
        self._tracer = tracer
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set[_Connection] = set()
        self._inflight = 0
        self._tokens: set[CancellationToken] = set()
        self._eval_gate = asyncio.Semaphore(max(1, self.config.eval_concurrency))
        self._draining = False
        self._drained = asyncio.Event()
        self._drained.set()
        self._shutdown_done = asyncio.Event()
        # Metric instruments, bound once (docs/OBSERVABILITY.md).
        m = self.metrics
        self._c_conn_total = m.counter("server.connections.total")
        self._c_conn_rejected = m.counter("server.connections.rejected")
        self._g_conn_active = m.gauge("server.connections.active")
        self._c_requests = m.counter("server.requests.total")
        self._c_ok = m.counter("server.requests.ok")
        self._c_errors = m.counter("server.requests.errors")
        self._c_exhausted = m.counter("server.requests.exhausted")
        self._c_overloaded = m.counter("server.requests.rejected_overloaded")
        self._c_rate_limited = m.counter("server.requests.rejected_rate_limited")
        self._c_malformed = m.counter("server.frames.malformed")
        self._c_oversized = m.counter("server.frames.oversized")
        self._c_drain_cancelled = m.counter("server.drain.cancelled")
        self._c_write_failures = m.counter("server.write_failures")
        self._c_watch_events = m.counter("server.watch.events")
        self._g_queue = m.gauge("server.queue.depth")
        self._h_latency = {
            op: m.histogram(f"server.latency.{op}")
            for op in ("query", "answers", "model", "control")
        }

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection,
            self.config.host,
            self.config.port,
            limit=self.config.max_frame_bytes,
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); useful with ``port=0``."""
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`shutdown` completes."""
        assert self._server is not None, "server not started"
        await self._shutdown_done.wait()

    async def shutdown(self, drain_timeout: Optional[float] = None) -> bool:
        """Graceful drain: stop accepting, let in-flight requests
        finish, cancel stragglers, close connections.

        Returns ``True`` when the drain completed without cancelling
        anything (the "clean drain" CI asserts).
        """
        if self._draining:
            await self._shutdown_done.wait()
            return not self._c_drain_cancelled.value
        self._draining = True
        timeout = (
            drain_timeout if drain_timeout is not None
            else self.config.drain_timeout
        )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        clean = True
        try:
            await asyncio.wait_for(self._drained.wait(), timeout)
        except asyncio.TimeoutError:
            clean = False
            # Cooperative cancellation: each straggler's next budget
            # poll raises ResourceExhausted(reason="cancelled"), which
            # still produces a well-formed `exhausted` response.
            for token in list(self._tokens):
                token.cancel()
                self._c_drain_cancelled.value += 1
            try:
                await asyncio.wait_for(self._drained.wait(), _CANCEL_GRACE)
            except asyncio.TimeoutError:
                pass
        for conn in list(self._connections):
            self._close_connection(conn)
        self._shutdown_done.set()
        return clean

    def _close_connection(self, conn: _Connection) -> None:
        conn.closed = True
        try:
            conn.writer.close()
        except Exception:
            pass

    # -- connection handling --------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if failpoints.enabled:
            try:
                failpoints.trigger("server.accept")
            except Exception:
                # Injected accept failure: this connection dies, the
                # server keeps accepting others.
                self._c_conn_rejected.value += 1
                writer.close()
                return
        self._c_conn_total.value += 1
        if self._draining:
            await self._reject_connection(writer, "shutting-down", "server is draining")
            return
        if len(self._connections) >= self.config.max_connections:
            await self._reject_connection(
                writer, "overloaded",
                f"connection limit ({self.config.max_connections}) reached",
            )
            return
        conn = _Connection(
            reader=reader,
            writer=writer,
            bucket=_TokenBucket(self.config.max_requests_per_second),
        )
        self._connections.add(conn)
        self._g_conn_active.set(len(self._connections))
        try:
            await self._connection_loop(conn)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(conn)
            self._g_conn_active.set(len(self._connections))
            self._close_connection(conn)

    async def _reject_connection(self, writer, code: str, message: str) -> None:
        self._c_conn_rejected.value += 1
        try:
            writer.write(
                protocol.encode_frame(protocol.error_response(None, code, message))
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    async def _connection_loop(self, conn: _Connection) -> None:
        while not conn.closed:
            try:
                line = await conn.reader.readuntil(b"\n")
            except asyncio.IncompleteReadError as error:
                if not error.partial:
                    return  # EOF: client hung up
                line = error.partial  # final unterminated frame
            except asyncio.LimitOverrunError:
                # The frame outgrew the stream limit.  ``readuntil``
                # leaves the buffered bytes in place, so the giant line
                # can be discarded *precisely* through its own newline
                # — a well-formed frame right behind it is never lost.
                self._c_oversized.value += 1
                await self._send(
                    conn,
                    protocol.error_response(
                        None,
                        "frame-too-large",
                        f"request line exceeded "
                        f"{self.config.max_frame_bytes} bytes",
                    ),
                )
                if not await self._drain_oversized(conn):
                    return
                continue
            if failpoints.enabled:
                try:
                    failpoints.trigger("server.read_frame")
                except Exception:
                    # Injected read failure: treat as connection-level
                    # IO death; close just this connection.
                    return
            if not line.strip():
                continue  # keep-alive blank lines are free
            await self._handle_frame(conn, line)

    async def _drain_oversized(self, conn: _Connection) -> bool:
        """Swallow the oversized line exactly through its newline.

        On overrun the reader consumed nothing, so discard what it
        buffered (``error.consumed`` bytes) and retry until the line's
        own newline arrives; returns ``False`` on EOF mid-line.
        """
        while True:
            try:
                await conn.reader.readuntil(b"\n")
                return True
            except asyncio.LimitOverrunError as error:
                if error.consumed:
                    await conn.reader.readexactly(error.consumed)
            except (asyncio.IncompleteReadError, ConnectionError):
                return False

    # -- frame dispatch --------------------------------------------------

    async def _handle_frame(self, conn: _Connection, line: bytes) -> None:
        self._c_requests.value += 1
        started = time.perf_counter()
        request_id = None
        op = "control"
        try:
            frame = protocol.decode_frame(line)
        except ProtocolError as error:
            self._c_malformed.value += 1
            conn.malformed_streak += 1
            await self._send(
                conn, protocol.error_response(None, error.code, str(error))
            )
            if conn.malformed_streak >= _MALFORMED_CONNECTION_LIMIT:
                # A poisoned connection must never poison the server;
                # after persistently hostile input, cut it loose.
                self._close_connection(conn)
            return
        conn.malformed_streak = 0
        request_id = frame.get("id")
        op = frame["op"]
        if not conn.bucket.try_take():
            self._c_rate_limited.value += 1
            await self._send(
                conn,
                protocol.error_response(
                    request_id,
                    "rate-limited",
                    f"connection exceeded "
                    f"{self.config.max_requests_per_second} requests/s",
                ),
            )
            return
        if op in ("query", "answers", "model", "subscribe"):
            # _evaluate sends its own response *inside* its in-flight
            # accounting window, so a drain that fires the moment the
            # last evaluation returns cannot close the connection
            # before the answer is on the wire.  ``subscribe`` is an
            # evaluating op: it computes the watch's initial answers.
            await self._evaluate(conn, frame, started)
        else:
            response = self._control(conn, frame)
            await self._finish(conn, op, request_id, started, response)
            if op in ("assert", "retract") and response.get("ok"):
                await self._push_watch_events(conn, frame)

    async def _finish(
        self, conn: _Connection, op, request_id, started, response: dict
    ) -> None:
        """Account for one completed request and write its response."""
        outcome = "ok" if response.get("ok") else response["error"]["code"]
        if response.get("ok"):
            self._c_ok.value += 1
        elif outcome == "exhausted":
            self._c_exhausted.value += 1
        else:
            self._c_errors.value += 1
        elapsed = time.perf_counter() - started
        bucket = op if op in self._h_latency else "control"
        self._h_latency[bucket].observe(elapsed)
        self._record_span(op, request_id, outcome, started, elapsed)
        await self._send(conn, response)

    def _record_span(self, op, request_id, outcome, started, elapsed) -> None:
        """Per-request trace span, appended directly under the root so
        concurrent requests cannot mis-nest on the tracer stack."""
        tracer = self._tracer
        if tracer is None or not getattr(tracer, "enabled", False):
            return
        now_ns = time.perf_counter_ns()
        span = TraceSpan(
            "server.request",
            str(op),
            now_ns - int(elapsed * 1e9),
            None,
            {"id": request_id, "op": op, "outcome": outcome},
        )
        span.end_ns = now_ns
        tracer.root.children.append(span)

    async def _send(self, conn: _Connection, response: dict) -> None:
        if conn.closed:
            return
        if failpoints.enabled:
            try:
                failpoints.trigger("server.write_response")
            except Exception:
                # Injected write failure: the response is lost, so the
                # connection is no longer coherent — close it.  The
                # server (and every other connection) lives on.
                self._c_write_failures.value += 1
                self._close_connection(conn)
                return
        try:
            conn.writer.write(protocol.encode_frame(response))
            await conn.writer.drain()
        except (ConnectionError, OSError, RuntimeError):
            self._c_write_failures.value += 1
            self._close_connection(conn)

    # -- control ops -----------------------------------------------------

    def _control(self, conn: _Connection, frame: dict) -> dict:
        request_id = frame.get("id")
        op = frame["op"]
        try:
            if op == "ping":
                return protocol.ok_response(
                    request_id,
                    {
                        "pong": True,
                        "protocol": protocol.PROTOCOL_VERSION,
                        "server": self.shared.describe(),
                        "limits": self.config.public_limits(),
                        "draining": self._draining,
                    },
                )
            if op == "session.open":
                return self._open_session(conn, frame)
            if op == "unsubscribe":
                session = self._session_for(conn, frame)
                name = frame.get("watch")
                if not isinstance(name, str):
                    raise ProtocolError(
                        "invalid-request",
                        "'unsubscribe' needs a 'watch' string",
                    )
                if not session.unwatch(name):
                    return protocol.error_response(
                        request_id, "unknown-watch",
                        f"no watch named {name!r} "
                        f"in session {session.name!r}",
                    )
                return protocol.ok_response(
                    request_id, {"unwatched": name, "session": session.name}
                )
            if op == "session.close":
                name = frame.get("session")
                if name is None or name not in conn.sessions:
                    return protocol.error_response(
                        request_id, "unknown-session",
                        f"no open session named {name!r}",
                    )
                del conn.sessions[name]
                return protocol.ok_response(request_id, {"closed": name})
            # assert / retract
            session = self._session_for(conn, frame)
            facts = frame.get("facts")
            if isinstance(facts, str):
                facts = [facts]
            if not isinstance(facts, list) or not all(
                isinstance(item, str) for item in facts
            ):
                raise ProtocolError(
                    "invalid-request",
                    f"'{op}' needs 'facts': a string or list of strings",
                )
            if op == "assert":
                added = session.assert_facts(facts)
                return protocol.ok_response(
                    request_id, {"added": added, "session": session.name}
                )
            removed = session.retract_facts(facts)
            return protocol.ok_response(
                request_id, {"removed": removed, "session": session.name}
            )
        except ProtocolError as error:
            return protocol.error_response(request_id, error.code, str(error))
        except HypotheticalDatalogError as error:
            code, message, partial = protocol.error_for_exception(error)
            return protocol.error_response(
                request_id, code, message, partial=partial
            )
        except Exception as error:  # defensive: never crash the loop
            return protocol.error_response(
                request_id, "internal", f"{type(error).__name__}: {error}"
            )

    def _open_session(self, conn: _Connection, frame: dict) -> dict:
        request_id = frame.get("id")
        if len(conn.sessions) >= self.config.max_sessions:
            return protocol.error_response(
                request_id, "invalid-request",
                f"session limit ({self.config.max_sessions}) reached "
                "on this connection",
            )
        name = frame.get("session")
        if name is not None and not isinstance(name, str):
            return protocol.error_response(
                request_id, "invalid-request", "'session' must be a string"
            )
        if name is not None and name in conn.sessions:
            return protocol.error_response(
                request_id, "invalid-request",
                f"session {name!r} is already open",
            )
        for knob in ("engine", "demand", "compile"):
            value = frame.get(knob)
            if value is not None and not isinstance(value, str):
                return protocol.error_response(
                    request_id, "invalid-request", f"'{knob}' must be a string"
                )
        session = ClientSession(
            self.shared,
            name,
            engine=frame.get("engine"),
            demand=frame.get("demand"),
            compile=frame.get("compile"),
        )
        conn.sessions[session.name] = session
        return protocol.ok_response(
            request_id,
            {"session": session.name, "engine": session.engine_name},
        )

    def _session_for(self, conn: _Connection, frame: dict) -> ClientSession:
        """The request's target session: the named one, or the
        connection's auto-created default."""
        name = frame.get("session")
        if name is not None:
            session = conn.sessions.get(name)
            if session is None:
                raise ProtocolError(
                    "unknown-session", f"no open session named {name!r}"
                )
            return session
        if conn.default_session is None:
            conn.default_session = ClientSession(self.shared, "default")
        return conn.default_session

    # -- evaluating ops --------------------------------------------------

    async def _evaluate(self, conn: _Connection, frame: dict, started) -> None:
        request_id = frame.get("id")
        op = frame["op"]
        if self._draining:
            await self._finish(
                conn, op, request_id, started,
                protocol.error_response(
                    request_id, "shutting-down",
                    "server is draining; no new work",
                ),
            )
            return
        if self._inflight >= self.config.max_pending:
            # Fast rejection BEFORE any parsing or queueing: overload
            # costs the server one counter bump and one small frame.
            self._c_overloaded.value += 1
            await self._finish(
                conn, op, request_id, started,
                protocol.error_response(
                    request_id, "overloaded",
                    f"admission gate full ({self.config.max_pending} "
                    "pending); retry later",
                ),
            )
            return
        try:
            session = self._session_for(conn, frame)
            budget = self._admit_budget(frame.get("budget"))
            assume = frame.get("assume")
            if assume is not None:
                if isinstance(assume, str):
                    assume = [assume]
                if not isinstance(assume, list) or not all(
                    isinstance(item, str) for item in assume
                ):
                    raise ProtocolError(
                        "invalid-request",
                        "'assume' must be a string or list of strings",
                    )
        except ProtocolError as error:
            await self._finish(
                conn, op, request_id, started,
                protocol.error_response(request_id, error.code, str(error)),
            )
            return
        self._inflight += 1
        self._g_queue.set_max(self._inflight)
        self._drained.clear()
        token = budget.token
        self._tokens.add(token)
        try:
            async with self._eval_gate:
                response = await asyncio.to_thread(
                    self._run_eval, session, frame, assume, budget
                )
            # The response must hit the wire while this request still
            # counts as in flight, or a racing drain could close the
            # connection between "evaluation done" and "answer sent".
            await self._finish(conn, op, request_id, started, response)
        finally:
            self._tokens.discard(token)
            self._inflight -= 1
            if self._inflight == 0:
                self._drained.set()

    async def _push_watch_events(self, conn: _Connection, frame: dict) -> None:
        """After a successful assert/retract, re-evaluate the target
        session's standing queries and push one ``watch`` event frame
        per changed answer set (docs/INCREMENTAL.md).

        Refreshes run on a worker thread under the eval gate with a
        server-ceiling budget; any failure is swallowed — the client
        misses one round of events, the connection lives on.
        """
        try:
            session = self._session_for(conn, frame)
        except ProtocolError:
            return
        if not session.watches:
            return
        try:
            budget = self._admit_budget(None)
            async with self._eval_gate:
                events = await asyncio.to_thread(
                    session.refresh_watches, budget=budget
                )
        except Exception:
            return
        for payload in events:
            self._c_watch_events.value += 1
            await self._send(
                conn,
                protocol.event_frame(
                    "watch", {"session": session.name, **payload}
                ),
            )

    def _admit_budget(self, spec) -> Budget:
        """The request's budget: client limits clamped by the server
        ceilings, anchored NOW so queue wait counts against the
        deadline (deadline propagation), with a fresh token so drain
        can cancel it."""
        config = self.config
        if spec is None:
            spec = {}
        if not isinstance(spec, dict):
            raise ProtocolError(
                "invalid-request", "'budget' must be a JSON object"
            )
        values = {}
        for key, kind in (
            ("timeout", float),
            ("max_steps", int),
            ("max_atoms", int),
            ("max_depth", int),
        ):
            value = spec.get(key)
            if value is None:
                values[key] = None
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ProtocolError(
                    "invalid-request", f"budget {key!r} must be a number"
                )
            value = kind(value)
            if value <= 0:
                raise ProtocolError(
                    "invalid-request", f"budget {key!r} must be positive"
                )
            values[key] = value
        unknown = set(spec) - {"timeout", "max_steps", "max_atoms", "max_depth"}
        if unknown:
            raise ProtocolError(
                "invalid-request",
                f"unknown budget field(s): {', '.join(sorted(unknown))}",
            )
        budget = Budget(
            timeout=_clamp(values["timeout"], config.max_timeout),
            max_steps=_clamp(values["max_steps"], config.max_steps),
            max_atoms=_clamp(values["max_atoms"], config.max_atoms),
            max_depth=_clamp(values["max_depth"], config.max_depth),
            token=CancellationToken(),
        )
        budget.begin()
        return budget

    def _run_eval(self, session, frame, assume, budget) -> dict:
        """Worker-thread body: the actual engine call, every outcome
        folded into a well-formed response frame."""
        request_id = frame.get("id")
        op = frame["op"]
        try:
            if failpoints.enabled:
                failpoints.trigger("server.evaluate")
            if op == "query":
                query = frame.get("query")
                if not isinstance(query, str):
                    raise ProtocolError(
                        "invalid-request", "'query' needs a 'query' string"
                    )
                answer = session.ask(query, assume=assume, budget=budget)
                return protocol.ok_response(request_id, {"answer": bool(answer)})
            if op == "answers":
                pattern = frame.get("pattern")
                if not isinstance(pattern, str):
                    raise ProtocolError(
                        "invalid-request", "'answers' needs a 'pattern' string"
                    )
                rows = session.answers(pattern, assume=assume, budget=budget)
                return protocol.ok_response(
                    request_id,
                    {"rows": sorted([list(row) for row in rows], key=str)},
                )
            if op == "subscribe":
                pattern = frame.get("pattern")
                if not isinstance(pattern, str):
                    raise ProtocolError(
                        "invalid-request",
                        "'subscribe' needs a 'pattern' string",
                    )
                name = frame.get("watch")
                if name is not None and not isinstance(name, str):
                    raise ProtocolError(
                        "invalid-request", "'watch' must be a string"
                    )
                if name is not None and name in session.watches:
                    raise ProtocolError(
                        "invalid-request",
                        f"watch {name!r} is already registered",
                    )
                wid, rows = session.watch(pattern, name=name, budget=budget)
                return protocol.ok_response(
                    request_id,
                    {
                        "watch": wid,
                        "session": session.name,
                        "rows": sorted([list(row) for row in rows], key=str),
                    },
                )
            atoms = session.model(assume=assume, budget=budget)
            return protocol.ok_response(
                request_id, {"atoms": sorted(str(atom) for atom in atoms)}
            )
        except ProtocolError as error:
            return protocol.error_response(request_id, error.code, str(error))
        except ResourceExhausted as error:
            code, message, partial = protocol.error_for_exception(error)
            return protocol.error_response(
                request_id, code, message, partial=partial
            )
        except HypotheticalDatalogError as error:
            code, message, partial = protocol.error_for_exception(error)
            return protocol.error_response(
                request_id, code, message, partial=partial
            )
        except Exception as error:  # defensive: a bug answers, not kills
            return protocol.error_response(
                request_id, "internal", f"{type(error).__name__}: {error}"
            )
