"""Load/chaos harness for the query server (docs/SERVER.md).

Drives hundreds of concurrent clients of deliberately mixed quality at
one server process:

* **good** clients — pipelined what-if (``[add: ...]``), plain, and
  pattern queries with per-request budgets;
* **malformed** clients — broken JSON, wrong types, unknown ops,
  protocol-version garbage;
* **oversized** clients — frames beyond the server's limit;
* **slow** clients — a valid frame dribbled out byte by byte.

It then asserts the robustness contract rather than just surviving:

* zero corrupted responses: every line the server sends parses as a
  well-formed v1 response frame;
* zero dropped responses: every well-formed request gets a response
  with its own id (rejections like ``overloaded`` count — they *are*
  the contract under pressure);
* every answer to a good query is correct (the expected yes/no is
  known per query);
* bounded p99 latency over the good traffic.

Run it against a fresh in-process server::

    python -m repro.server.loadtest --clients 200 --self-host

or against an external one with ``--host/--port``.  Exit code 0 when
every assertion holds, 1 otherwise (CI runs a short soak; see
.github/workflows/ci.yml).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Optional

from .protocol import PROTOCOL_VERSION, encode_frame

__all__ = ["LoadReport", "run_loadtest", "main"]

#: (request-params, expected answer) pairs over the default rulebase
#: below; mixed plain and hypothetical queries with known truth.
_GOOD_QUERIES = [
    ({"op": "query", "query": "grad(ben)"}, True),
    ({"op": "query", "query": "grad(ann)"}, False),
    ({"op": "query", "query": "grad(ann)[add: take(ann, m2)]"}, True),
    ({"op": "query", "query": "grad(zoe)", "assume": ["take(zoe, m1)", "take(zoe, m2)"]}, True),
    ({"op": "answers", "pattern": "grad(S)"}, [["ben"]]),
]

_DEFAULT_RULES = "grad(S) :- take(S, m1), take(S, m2)."
_DEFAULT_FACTS = ["take(ann, m1).", "take(ben, m1).", "take(ben, m2)."]


@dataclass
class LoadReport:
    """What the swarm observed; :meth:`failures` judges it."""

    requests_sent: int = 0
    responses: int = 0
    corrupted: int = 0
    dropped: int = 0
    wrong_answers: int = 0
    rejected_overloaded: int = 0
    rejected_rate_limited: int = 0
    exhausted: int = 0
    protocol_errors_reported: int = 0
    connection_failures: int = 0
    latencies: list = field(default_factory=list)
    p99_bound: float = 5.0

    def p99(self) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]

    def failures(self) -> list[str]:
        problems = []
        if self.corrupted:
            problems.append(f"{self.corrupted} corrupted response frame(s)")
        if self.dropped:
            problems.append(f"{self.dropped} dropped response(s)")
        if self.wrong_answers:
            problems.append(f"{self.wrong_answers} wrong answer(s)")
        if self.responses == 0:
            problems.append("no responses at all")
        p99 = self.p99()
        if p99 > self.p99_bound:
            problems.append(f"p99 latency {p99:.3f}s exceeds {self.p99_bound}s")
        return problems

    def summary(self) -> str:
        return (
            f"sent={self.requests_sent} responses={self.responses} "
            f"corrupted={self.corrupted} dropped={self.dropped} "
            f"wrong={self.wrong_answers} overloaded={self.rejected_overloaded} "
            f"rate_limited={self.rejected_rate_limited} "
            f"exhausted={self.exhausted} "
            f"protocol_errors={self.protocol_errors_reported} "
            f"conn_failures={self.connection_failures} "
            f"p99={self.p99() * 1000:.1f}ms"
        )


def _is_wellformed(frame: dict) -> bool:
    if frame.get("v") != PROTOCOL_VERSION or "ok" not in frame:
        return False
    if frame["ok"]:
        return isinstance(frame.get("result"), dict)
    error = frame.get("error")
    return isinstance(error, dict) and "code" in error and "message" in error


async def _good_client(host, port, rounds, budget, report: LoadReport) -> None:
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError:
        report.connection_failures += 1
        return
    try:
        next_id = 0
        for _ in range(rounds):
            expected: dict[int, object] = {}
            for params, answer in _GOOD_QUERIES:
                frame = {"v": 1, "id": next_id, **params}
                if budget:
                    frame["budget"] = budget
                expected[next_id] = answer
                next_id += 1
                started = time.perf_counter()
                writer.write(encode_frame(frame))
                await writer.drain()
                report.requests_sent += 1
                line = await reader.readline()
                elapsed = time.perf_counter() - started
                if not line:
                    report.dropped += len(expected)
                    return
                try:
                    response = json.loads(line)
                    assert _is_wellformed(response)
                except (json.JSONDecodeError, AssertionError):
                    report.corrupted += 1
                    continue
                report.responses += 1
                report.latencies.append(elapsed)
                rid = response.get("id")
                if rid not in expected:
                    report.corrupted += 1
                    continue
                want = expected.pop(rid)
                if response["ok"]:
                    got = response["result"].get(
                        "answer", response["result"].get("rows")
                    )
                    if got != want:
                        report.wrong_answers += 1
                else:
                    code = response["error"]["code"]
                    if code == "overloaded":
                        report.rejected_overloaded += 1
                    elif code == "rate-limited":
                        report.rejected_rate_limited += 1
                    elif code == "exhausted":
                        report.exhausted += 1
                    else:
                        # Any other error for a known-good query is a
                        # wrong outcome.
                        report.wrong_answers += 1
            report.dropped += len(expected)
    except (ConnectionError, OSError):
        report.connection_failures += 1
    finally:
        writer.close()


async def _malformed_client(host, port, report: LoadReport) -> None:
    payloads = [
        b"this is not json\n",
        b'{"unterminated": \n',
        b'[1, 2, 3]\n',
        b'{"v": 99, "id": 1, "op": "query"}\n',
        b'{"v": 1, "id": {}, "op": "query"}\n',
        b'{"v": 1, "id": 2, "op": "launch-missiles"}\n',
        b'{"v": 1, "id": 3, "op": "query", "query": 42}\n',
        b'{"v": 1, "id": 4, "op": "query", "query": "grad(ben)"}\n',
    ]
    try:
        reader, writer = await asyncio.open_connection(host, port)
        for payload in payloads:
            writer.write(payload)
            await writer.drain()
            report.requests_sent += 1
            line = await reader.readline()
            if not line:
                report.dropped += 1
                return
            try:
                response = json.loads(line)
                assert _is_wellformed(response)
            except (json.JSONDecodeError, AssertionError):
                report.corrupted += 1
                continue
            report.responses += 1
            if not response["ok"]:
                report.protocol_errors_reported += 1
        writer.close()
    except (ConnectionError, OSError):
        report.connection_failures += 1


async def _oversized_client(host, port, frame_limit, report: LoadReport) -> None:
    try:
        reader, writer = await asyncio.open_connection(host, port)
        junk = b'{"v": 1, "id": 1, "op": "query", "query": "' + b"x" * (
            frame_limit + 1024
        ) + b'"}\n'
        writer.write(junk)
        await writer.drain()
        report.requests_sent += 1
        line = await reader.readline()
        if line:
            try:
                response = json.loads(line)
                assert _is_wellformed(response)
                report.responses += 1
                if not response["ok"]:
                    report.protocol_errors_reported += 1
            except (json.JSONDecodeError, AssertionError):
                report.corrupted += 1
        # The connection must still answer a good frame afterwards.
        writer.write(encode_frame({"v": 1, "id": 2, "op": "ping"}))
        await writer.drain()
        report.requests_sent += 1
        line = await reader.readline()
        if not line:
            report.dropped += 1
        else:
            report.responses += 1
        writer.close()
    except (ConnectionError, OSError):
        report.connection_failures += 1


async def _slow_client(host, port, report: LoadReport) -> None:
    """One valid frame, dribbled a few bytes at a time."""
    try:
        reader, writer = await asyncio.open_connection(host, port)
        frame = encode_frame({"v": 1, "id": 1, "op": "query", "query": "grad(ben)"})
        for start in range(0, len(frame), 7):
            writer.write(frame[start : start + 7])
            await writer.drain()
            await asyncio.sleep(0.01)
        report.requests_sent += 1
        line = await reader.readline()
        if not line:
            report.dropped += 1
        else:
            try:
                response = json.loads(line)
                assert _is_wellformed(response)
                report.responses += 1
                if response["ok"] and response["result"].get("answer") is not True:
                    report.wrong_answers += 1
            except (json.JSONDecodeError, AssertionError):
                report.corrupted += 1
        writer.close()
    except (ConnectionError, OSError):
        report.connection_failures += 1


async def run_loadtest(
    host: str,
    port: int,
    *,
    clients: int = 200,
    rounds: int = 3,
    budget: Optional[dict] = None,
    p99_bound: float = 5.0,
    frame_limit: int = 1 << 20,
) -> LoadReport:
    """The swarm: ~80% good clients, the rest split across the three
    hostile personalities.  Returns the combined :class:`LoadReport`."""
    report = LoadReport(p99_bound=p99_bound)
    if budget is None:
        budget = {"timeout": 5.0, "max_steps": 1_000_000}
    tasks = []
    for index in range(clients):
        kind = index % 10
        if kind < 7:
            tasks.append(_good_client(host, port, rounds, budget, report))
        elif kind < 8:
            tasks.append(_malformed_client(host, port, report))
        elif kind < 9:
            tasks.append(_oversized_client(host, port, frame_limit, report))
        else:
            tasks.append(_slow_client(host, port, report))
    await asyncio.gather(*tasks)
    return report


async def _self_hosted(options) -> tuple:
    """Start an in-process server over the default demo rulebase."""
    from ..core.database import Database
    from ..core.parser import parse_database, parse_program
    from .server import HypoDatalogServer, ServerConfig
    from .sessions import SharedRulebase

    rules = parse_program(
        open(options.rules).read() if options.rules else _DEFAULT_RULES
    )
    db = (
        parse_database(open(options.db).read())
        if options.db
        else parse_database("\n".join(_DEFAULT_FACTS))
    )
    shared = SharedRulebase(rules, db)
    config = ServerConfig(
        host=options.host,
        port=options.port,
        max_pending=options.max_pending,
        max_frame_bytes=options.frame_limit,
    )
    server = HypoDatalogServer(shared, config)
    await server.start()
    return server, server.address


async def _amain(options) -> int:
    server = None
    host, port = options.host, options.port
    if options.self_host:
        server, (host, port) = await _self_hosted(options)
    report = await run_loadtest(
        host,
        port,
        clients=options.clients,
        rounds=options.rounds,
        p99_bound=options.p99_bound,
        frame_limit=options.frame_limit,
    )
    if server is not None:
        await server.shutdown()
    print(report.summary())
    problems = report.failures()
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("loadtest passed")
    return 1 if problems else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.loadtest",
        description="Mixed good/malformed/oversized/slow load against a "
        "hypodatalog server (docs/SERVER.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7878)
    parser.add_argument(
        "--self-host",
        action="store_true",
        help="start an in-process server (demo rulebase unless --rules)",
    )
    parser.add_argument("--rules", help="rulebase file for --self-host")
    parser.add_argument("--db", help="database file for --self-host")
    parser.add_argument("--clients", type=int, default=200)
    parser.add_argument(
        "--rounds", type=int, default=3, help="query rounds per good client"
    )
    parser.add_argument("--p99-bound", type=float, default=5.0)
    parser.add_argument("--frame-limit", type=int, default=1 << 20)
    parser.add_argument(
        "--max-pending", type=int, default=64, help="self-host admission gate"
    )
    options = parser.parse_args(argv)
    if options.self_host and options.port == 7878:
        options.port = 0  # ephemeral, no collision with a real server
    return asyncio.run(_amain(options))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
