"""Columnar relations over interned terms.

This is the storage half of the compiled substrate.  A
:class:`ColumnarRelation` is the encoded image of one predicate's row
set: parallel ``array('q')`` int columns as the canonical storage (when
the rows share an arity), with row tuples, per-position probe indexes,
and a ground-membership rowset derived lazily on first use.  Encoded
relations are immutable and cached per *frozenset object* by a
:class:`ColumnStore` — the copy-on-write :class:`~repro.core.database.
Database` and :class:`~repro.engine.interpretation.Interpretation`
share row-set objects structurally across the 2^|A| lattice of child
databases, so one encode pass serves every child model that inherits
the relation unchanged.  Nothing here mutates the COW layer: the XOR
database hash, ``with_facts`` identity semantics, and overlay behavior
are untouched because encoding only ever *reads* the frozensets.

A :class:`RelationView` is what a compiled kernel actually joins
against: an immutable shared base plus a private overlay of rows
derived during the current closure.  Views are copy-on-write at the
probe-structure level — materialized tuple lists and index dicts start
out shared with the base relation and are privatized the first time a
new row of the matching arity lands in them.  Kernels only read views
mid-round; the semi-naive driver appends derived heads between rule
firings, which is why per-structure COW (rather than a two-part
base+overlay scan in the generated code) is safe and keeps the
generated loops single-level.

Arity discipline: a ``Database`` tolerates ragged arities within one
predicate (the ``Rulebase`` forbids it for program predicates, but
extensional facts are unchecked).  Every accessor therefore takes the
arity the calling kernel was compiled for and filters — a kernel can
never unpack a row of the wrong width.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Optional

from .interning import SymbolTable

__all__ = ["ColumnarRelation", "ColumnStore", "RelationView"]

_EMPTY_FROZENSET: frozenset = frozenset()


class ColumnarRelation:
    """One immutable encoded relation: int columns + probe structures.

    ``columns`` is the canonical parallel-array storage (present when
    all rows share an arity and it is nonzero); tuple lists, indexes,
    and the rowset are derived views cached on first use.  Instances
    are shared across engines' views and must never be mutated.
    """

    __slots__ = ("size", "uniform", "columns", "_tuples", "_rowset", "_by_arity", "_indexes")

    def __init__(self, rows: Iterable[tuple[int, ...]]) -> None:
        tuples = list(rows)
        self._tuples = tuples
        self.size = len(tuples)
        lengths = {len(row) for row in tuples}
        #: the shared arity when rows are uniform, else None (mixed/empty).
        self.uniform: Optional[int] = lengths.pop() if len(lengths) == 1 else None
        self.columns: Optional[tuple[array, ...]] = None
        if self.uniform:
            self.columns = tuple(
                array("q", (row[i] for row in tuples)) for i in range(self.uniform)
            )
        self._rowset: Optional[frozenset] = None
        self._by_arity: Optional[dict[int, list]] = None
        self._indexes: dict[tuple[int, int], dict[int, list]] = {}

    @property
    def rowset(self) -> frozenset:
        """Frozenset of encoded rows, for ground membership probes."""
        found = self._rowset
        if found is None:
            found = self._rowset = frozenset(self._tuples)
        return found

    def tuples_for(self, arity: int):
        """All rows of the given arity (a shared, do-not-mutate list)."""
        if self.uniform == arity or not self.size:
            return self._tuples
        if self.uniform is not None:  # uniform but wrong arity
            return ()
        cache = self._by_arity
        if cache is None:
            cache = self._by_arity = {}
        found = cache.get(arity)
        if found is None:
            found = cache[arity] = [row for row in self._tuples if len(row) == arity]
        return found

    def index_for(self, arity: int, pos: int) -> dict[int, list]:
        """Shared probe index: value at ``pos`` -> rows of ``arity``."""
        key = (arity, pos)
        found = self._indexes.get(key)
        if found is None:
            found = self._indexes[key] = {}
            for row in self.tuples_for(arity):
                found.setdefault(row[pos], []).append(row)
        return found

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"ColumnarRelation(size={self.size}, uniform={self.uniform})"


_EMPTY_RELATION = ColumnarRelation(())


class ColumnStore:
    """Encode cache: frozenset-of-rows object -> :class:`ColumnarRelation`.

    Keyed by the *object* (identity-compatible hash of the frozenset),
    exploiting the COW layer's structural sharing: every lattice child
    that inherits a relation unchanged hits the same cache entry.  The
    cache is bounded (cleared wholesale past ``max_entries``) so giant
    lattices cannot grow it without limit; encoded relations reachable
    from live views survive a clear.
    """

    __slots__ = ("symbols", "max_entries", "_cache")

    def __init__(self, symbols: Optional[SymbolTable] = None, max_entries: int = 65536) -> None:
        self.symbols = symbols if symbols is not None else SymbolTable()
        self.max_entries = max_entries
        self._cache: dict[frozenset, ColumnarRelation] = {}

    def encode_row(self, args) -> tuple[int, ...]:
        """Encode one ground argument tuple."""
        return self.symbols.encode_args(args)

    def encoded(self, rows: Optional[frozenset]) -> ColumnarRelation:
        """The encoded relation for a row frozenset (cached)."""
        if not rows:
            return _EMPTY_RELATION
        found = self._cache.get(rows)
        if found is None:
            if len(self._cache) >= self.max_entries:
                self._cache.clear()
            encode = self.symbols.encode_args
            found = self._cache[rows] = ColumnarRelation(
                encode(args) for args in rows
            )
        return found

    def __len__(self) -> int:
        return len(self._cache)


class RelationView:
    """Shared immutable base + private overlay, per closure and predicate.

    The semi-naive driver calls :meth:`add` once per newly derived head
    (between rule firings, never mid-scan); probe structures handed to
    generated code are privatized copy-on-write at that point, so a
    view that only ever reads stays zero-copy against the base.
    """

    __slots__ = (
        "base",
        "overlay",
        "overlay_set",
        "_tuples",
        "_tuples_own",
        "_indexes",
        "_idx_own",
        "_idx_own_keys",
    )

    def __init__(
        self,
        base: Optional[ColumnarRelation] = None,
        overlay_rows: Iterable[tuple[int, ...]] = (),
    ) -> None:
        self.base = base
        self.overlay: list[tuple[int, ...]] = list(overlay_rows)
        self.overlay_set: set = set(self.overlay)
        self._tuples: dict[int, list] = {}
        self._tuples_own: set[int] = set()
        self._indexes: dict[tuple[int, int], dict[int, list]] = {}
        self._idx_own: set[tuple[int, int]] = set()
        self._idx_own_keys: dict[tuple[int, int], set] = {}

    def rowsets(self) -> tuple[frozenset, set]:
        """(base rowset, overlay set) — membership is an ``in`` on each."""
        base = self.base
        return (base.rowset if base is not None else _EMPTY_FROZENSET), self.overlay_set

    def tuples(self, arity: int):
        """All rows of the given arity across base and overlay."""
        found = self._tuples.get(arity)
        if found is None:
            base = self.base
            shared = base.tuples_for(arity) if base is not None else ()
            mine = [row for row in self.overlay if len(row) == arity]
            if mine:
                found = list(shared)
                found.extend(mine)
                self._tuples_own.add(arity)
            else:
                found = shared
            self._tuples[arity] = found
        return found

    def total(self, arity: int) -> int:
        """Row count at the given arity (drives free-pattern negation)."""
        return len(self.tuples(arity))

    def index(self, arity: int, pos: int) -> dict[int, list]:
        """Probe index over base+overlay rows of ``arity`` keyed by ``pos``."""
        key = (arity, pos)
        found = self._indexes.get(key)
        if found is None:
            base = self.base
            shared = base.index_for(arity, pos) if base is not None else None
            mine = [row for row in self.overlay if len(row) == arity]
            if shared is not None and not mine:
                found = shared
            else:
                found = dict(shared) if shared else {}
                own: set = set()
                self._idx_own.add(key)
                self._idx_own_keys[key] = own
                for row in mine:
                    value = row[pos]
                    bucket = found.get(value)
                    if bucket is None:
                        found[value] = [row]
                        own.add(value)
                    elif value in own:
                        bucket.append(row)
                    else:
                        found[value] = bucket + [row]
                        own.add(value)
            self._indexes[key] = found
        return found

    def add(self, row: tuple[int, ...]) -> None:
        """Append one derived row, patching materialized structures COW."""
        self.overlay.append(row)
        self.overlay_set.add(row)
        arity = len(row)
        found = self._tuples.get(arity)
        if found is not None:
            if arity not in self._tuples_own:
                found = list(found)
                self._tuples[arity] = found
                self._tuples_own.add(arity)
            found.append(row)
        for key, index in list(self._indexes.items()):
            if key[0] != arity:
                continue
            if key not in self._idx_own:
                index = dict(index)
                self._indexes[key] = index
                self._idx_own.add(key)
                self._idx_own_keys[key] = set()
            own = self._idx_own_keys[key]
            value = row[key[1]]
            bucket = index.get(value)
            if bucket is None:
                index[value] = [row]
                own.add(value)
            elif value in own:
                bucket.append(row)
            else:
                index[value] = bucket + [row]
                own.add(value)

    def __repr__(self) -> str:
        base = self.base.size if self.base is not None else 0
        return f"RelationView(base={base}, overlay={len(self.overlay)})"
