"""Source spans: where a parsed object came from.

Every AST node built by :mod:`repro.core.parser` carries a
:class:`Span` — file name (when known), start line/column, and end
line/column, all 1-based, with the end column exclusive.  Nodes built
programmatically (the :func:`~repro.core.ast.rule` helper, the
Section 5/6 encoders, the library rulebases that call
``parse_program`` without a file name) have ``source=None`` or no span
at all; everything that consumes spans treats them as optional.

Spans deliberately do **not** participate in equality or hashing of
the nodes that carry them: two parses of the same rule text are the
same rule wherever they came from, atoms with and without positions
collide in databases and memo tables, and the engines stay oblivious.
The span is metadata for diagnostics, nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Span"]


@dataclass(frozen=True, slots=True)
class Span:
    """A contiguous source region ``[start, end)`` with optional file name.

    Lines and columns are 1-based (the lexer's convention);
    ``end_column`` is exclusive, so a one-character token at line 1,
    column 1 spans ``1:1-1:2``.
    """

    line: int
    column: int
    end_line: int = 0
    end_column: int = 0
    source: Optional[str] = None

    def __post_init__(self) -> None:
        if self.end_line <= 0:
            object.__setattr__(self, "end_line", self.line)
        if self.end_column <= 0:
            object.__setattr__(self, "end_column", self.column + 1)

    def merge(self, other: Optional["Span"]) -> "Span":
        """The smallest span covering both ``self`` and ``other``."""
        if other is None:
            return self
        start = min((self.line, self.column), (other.line, other.column))
        end = max(
            (self.end_line, self.end_column), (other.end_line, other.end_column)
        )
        return Span(start[0], start[1], end[0], end[1], self.source or other.source)

    @property
    def location(self) -> str:
        """``file:line:col`` (or ``line:col`` when the file is unknown)."""
        prefix = f"{self.source}:" if self.source else ""
        return f"{prefix}{self.line}:{self.column}"

    def __str__(self) -> str:
        return self.location
