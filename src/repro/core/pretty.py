"""Pretty-printing of atoms, rules, rulebases, and databases.

The ``__str__`` methods on the AST classes already emit the concrete
syntax accepted by :mod:`repro.core.parser`; this module adds the
document-level helpers (sorted databases, programs grouped by
predicate, stratification-annotated listings) used by the CLI and the
examples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .ast import Rule, Rulebase
from .database import Database

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..analysis.stratify import LinearStratification

__all__ = [
    "format_rule",
    "format_program",
    "format_database",
    "format_stratification",
]


def format_rule(item: Rule) -> str:
    """Render one rule in parseable concrete syntax."""
    return str(item)


def format_program(rulebase: Rulebase, group_by_predicate: bool = False) -> str:
    """Render a program, optionally grouping rules by head predicate.

    Grouped output inserts a comment header per predicate definition,
    which makes generated rulebases (machine encodings) readable.
    """
    if not group_by_predicate:
        return "\n".join(str(item) for item in rulebase)
    lines: list[str] = []
    seen: set[str] = set()
    for item in rulebase:
        predicate = item.head.predicate
        if predicate not in seen:
            seen.add(predicate)
            lines.append(f"% --- {predicate} ---")
            for defining in rulebase.definition(predicate):
                lines.append(str(defining))
    return "\n".join(lines)


def format_database(db: Database) -> str:
    """Render a database sorted by predicate, one fact per line."""
    return str(db)


def format_stratification(stratification: "LinearStratification") -> str:
    """Render a linear stratification as annotated segments.

    Output mirrors the layout of Example 9 in the paper: strata are
    listed top-down, each split into its Sigma (hypothetical, linear)
    and Delta (Horn with stratified negation) parts.
    """
    lines: list[str] = []
    for index in range(stratification.k, 0, -1):
        sigma = stratification.sigma(index)
        delta = stratification.delta(index)
        lines.append(f"% ===== stratum {index} =====")
        lines.append(f"% Sigma_{index} ({len(sigma)} rules)")
        lines.extend(str(item) for item in sigma)
        lines.append(f"% Delta_{index} ({len(delta)} rules)")
        lines.extend(str(item) for item in delta)
    return "\n".join(lines)
