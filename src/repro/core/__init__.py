"""Core language objects: terms, atoms, premises, rules, databases, parsing."""

from .ast import (
    Hypothetical,
    Negated,
    Positive,
    Premise,
    Rule,
    Rulebase,
    fact,
    rule,
)
from .database import Database
from .errors import (
    CompilationError,
    EvaluationError,
    HypotheticalDatalogError,
    MachineError,
    ParseError,
    StratificationError,
    ValidationError,
)
from .parser import parse_atom, parse_database, parse_premise, parse_program, parse_rule
from .terms import Atom, Constant, Term, Variable, atom, term

__all__ = [
    "Atom",
    "Constant",
    "Term",
    "Variable",
    "atom",
    "term",
    "Positive",
    "Negated",
    "Hypothetical",
    "Premise",
    "Rule",
    "Rulebase",
    "rule",
    "fact",
    "Database",
    "parse_atom",
    "parse_database",
    "parse_premise",
    "parse_program",
    "parse_rule",
    "HypotheticalDatalogError",
    "ParseError",
    "ValidationError",
    "StratificationError",
    "EvaluationError",
    "MachineError",
    "CompilationError",
]
