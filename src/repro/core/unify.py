"""Substitutions, matching, and unification.

The engines ground rules against the evaluation domain (Definition 3
grounds over ``dom(R, DB)``), so most of the work here is *matching* a
pattern atom against ground facts.  Full unification is provided for
the goal-directed prover of Section 5.2, which unifies goals with rule
heads before grounding the leftovers.

Substitutions are plain ``dict[Variable, Term]`` objects; the functions
here never mutate a substitution they were given.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from .terms import Atom, Constant, Term, Variable, fresh_variable

__all__ = [
    "Substitution",
    "match",
    "match_args",
    "unify",
    "rename_rule_apart",
    "ground_instances",
]

Substitution = dict[Variable, Term]


def _walk(term: Term, binding: Mapping[Variable, Term]) -> Term:
    """Chase a variable through the binding until it stops moving."""
    while isinstance(term, Variable):
        bound = binding.get(term)
        if bound is None:
            return term
        term = bound
    return term


def match_args(
    pattern: tuple[Term, ...],
    ground: tuple[Term, ...],
    binding: Optional[Substitution] = None,
) -> Optional[Substitution]:
    """Match a pattern argument tuple against a ground tuple.

    Returns an *extended copy* of ``binding`` on success, ``None`` on
    failure.  Repeated variables in the pattern must match equal
    constants (so ``p(X, X)`` only matches facts with equal arguments).
    """
    if len(pattern) != len(ground):
        return None
    result: Substitution = dict(binding) if binding else {}
    for pat, val in zip(pattern, ground):
        pat = _walk(pat, result)
        if isinstance(pat, Variable):
            result[pat] = val
        elif pat != val:
            return None
    return result


def match(
    pattern: Atom, ground: Atom, binding: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Match a pattern atom against a ground atom.

    >>> from repro.core.terms import atom
    >>> binding = match(atom("edge", "X", "Y"), atom("edge", "a", "b"))
    >>> sorted((v.name, str(t)) for v, t in binding.items())
    [('X', 'a'), ('Y', 'b')]
    """
    if pattern.predicate != ground.predicate:
        return None
    return match_args(pattern.args, ground.args, binding)


def unify(
    left: Atom, right: Atom, binding: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Unify two atoms (function-free, so no occurs-check is needed).

    Returns an extended copy of ``binding`` on success, ``None`` on
    failure.
    """
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    result: Substitution = dict(binding) if binding else {}
    for l_term, r_term in zip(left.args, right.args):
        l_term = _walk(l_term, result)
        r_term = _walk(r_term, result)
        if l_term == r_term:
            continue
        if isinstance(l_term, Variable):
            result[l_term] = r_term
        elif isinstance(r_term, Variable):
            result[r_term] = l_term
        else:
            return None
    return result


def resolve(binding: Substitution) -> Substitution:
    """Flatten variable-to-variable chains in a substitution."""
    return {var: _walk(term, binding) for var, term in binding.items()}


def rename_rule_apart(rule_variables: Iterable[Variable]) -> Substitution:
    """Build a renaming of ``rule_variables`` to fresh variables.

    Used before unifying a goal with a rule head so that variables of
    the goal never collide with variables of the rule.
    """
    return {var: fresh_variable(var.name.split("#")[0]) for var in set(rule_variables)}


def ground_instances(
    variables: Iterable[Variable],
    domain: Iterable[Constant],
    binding: Optional[Substitution] = None,
) -> Iterator[Substitution]:
    """Enumerate all groundings of ``variables`` over ``domain``.

    Definition 3 quantifies rule variables over ``dom(R, DB)``; this is
    the enumerator the engines use for variables that the join over
    positive premises left unbound.  Yields extended copies of
    ``binding``; yields ``binding`` itself (as a copy) when there is
    nothing to ground.
    """
    todo = [var for var in dict.fromkeys(variables) if not binding or var not in binding]
    base: Substitution = dict(binding) if binding else {}
    if not todo:
        yield base
        return
    constants = list(domain)
    if not constants:
        return

    def extend(index: int, current: Substitution) -> Iterator[Substitution]:
        if index == len(todo):
            yield dict(current)
            return
        var = todo[index]
        for value in constants:
            current[var] = value
            yield from extend(index + 1, current)
        del current[var]

    yield from extend(0, base)
