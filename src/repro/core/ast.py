"""Premises, rules, and rulebases (Definitions 1 and 2 of the paper).

A *premise* is one of

* ``Positive(A)`` — an atomic formula ``A``;
* ``Negated(A)`` — negation-by-failure ``~A`` (Section 3.1);
* ``Hypothetical(A, (B1, ..., Bm))`` — ``A[add: B1, ..., Bm]``:
  "inserting the ``Bj`` into the database allows the inference of ``A``".

Definition 1 of the paper makes the addition a single atom; the
Section 5.1 machine encodings insert several atoms at once
(``[add: CONTROL..., CELL..., CELL...]``), so we support a tuple of
additions directly.  Semantically ``A[add: B1, B2]`` is
``R, DB + {B1, B2} |- A``, which equals the nested single-addition form.

A *hypothetical rule* (Definition 2) is ``head <- p1, ..., pk`` with an
atomic head and premise body.  Negated hypothetical premises are
excluded, following the paper's simplifying assumption; the documented
workaround (a fresh predicate ``C <- A[add:B]`` so that ``~C`` works) is
provided by :func:`negate_hypothetical` in :mod:`repro.core.rewrite`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Optional, Union

from .errors import ValidationError
from .spans import Span
from .terms import Atom, Constant, Term, Variable

__all__ = [
    "Positive",
    "Negated",
    "Hypothetical",
    "Premise",
    "Rule",
    "Rulebase",
    "rule",
    "fact",
]


@dataclass(frozen=True, slots=True)
class Positive:
    """An atomic premise ``A``."""

    atom: Atom
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def substitute(self, binding: Mapping[Variable, Term]) -> "Positive":
        return Positive(self.atom.substitute(binding), span=self.span)

    def variables(self) -> Iterator[Variable]:
        yield from self.atom.variables()

    def atoms(self) -> Iterator[Atom]:
        yield self.atom

    @property
    def goal(self) -> Atom:
        """The atom whose derivability this premise asserts."""
        return self.atom

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True, slots=True)
class Negated:
    """A negation-by-failure premise ``~A``.

    Following the paper's usage (Examples 6, 7 and the Section 6.2.1
    order rules), variables occurring *only* inside a negated premise
    are quantified inside the negation: ``~SELECT(y)`` with ``y`` local
    means "no ``y`` satisfies SELECT".  The engines implement exactly
    this reading; see DESIGN.md section 2.
    """

    atom: Atom
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def substitute(self, binding: Mapping[Variable, Term]) -> "Negated":
        return Negated(self.atom.substitute(binding), span=self.span)

    def variables(self) -> Iterator[Variable]:
        yield from self.atom.variables()

    def atoms(self) -> Iterator[Atom]:
        yield self.atom

    @property
    def goal(self) -> Atom:
        return self.atom

    def __str__(self) -> str:
        return f"~{self.atom}"


@dataclass(frozen=True, slots=True)
class Hypothetical:
    """A hypothetical premise ``A[add: B...]`` / ``A[del: C...]``.

    Additions are the paper's operator; deletions are the extension
    from its companion [4] (Bonner ICDT'88), mentioned in the
    introduction as raising data-complexity to EXPTIME.  Semantics:
    ``R, DB |- A[add: B][del: C]`` iff ``R, (DB - {C}) + {B} |- A`` —
    deletions are applied first, so an atom named in both is present
    afterwards.  Deletion-carrying rulebases are evaluated by the
    top-down engine only (see :mod:`repro.engine.topdown`).
    """

    atom: Atom
    additions: tuple[Atom, ...] = ()
    deletions: tuple[Atom, ...] = ()
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.additions and not self.deletions:
            raise ValidationError(
                f"hypothetical premise on {self.atom} needs at least one "
                f"addition or deletion"
            )

    def substitute(self, binding: Mapping[Variable, Term]) -> "Hypothetical":
        return Hypothetical(
            self.atom.substitute(binding),
            tuple(add.substitute(binding) for add in self.additions),
            tuple(rem.substitute(binding) for rem in self.deletions),
            span=self.span,
        )

    def variables(self) -> Iterator[Variable]:
        yield from self.atom.variables()
        for add in self.additions:
            yield from add.variables()
        for rem in self.deletions:
            yield from rem.variables()

    def atoms(self) -> Iterator[Atom]:
        yield self.atom
        yield from self.additions
        yield from self.deletions

    @property
    def goal(self) -> Atom:
        return self.atom

    def __str__(self) -> str:
        parts = [str(self.atom)]
        if self.additions:
            parts.append(f"[add: {', '.join(str(a) for a in self.additions)}]")
        if self.deletions:
            parts.append(f"[del: {', '.join(str(a) for a in self.deletions)}]")
        return "".join(parts)


Premise = Union[Positive, Negated, Hypothetical]


@dataclass(frozen=True, slots=True)
class Rule:
    """A hypothetical rule ``head <- body`` (Definition 2).

    A rule with an empty body is a fact schema: it derives every ground
    instance of its head over the evaluation domain.
    """

    head: Atom
    body: tuple[Premise, ...] = ()
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    @property
    def is_fact(self) -> bool:
        """True iff the body is empty."""
        return not self.body

    def variables(self) -> set[Variable]:
        """All variables occurring anywhere in the rule."""
        found = set(self.head.variables())
        for premise in self.body:
            found.update(premise.variables())
        return found

    def constants(self) -> set[Constant]:
        """All constants occurring anywhere in the rule."""
        found = set(self.head.constants())
        for premise in self.body:
            for item in premise.atoms():
                found.update(item.constants())
        return found

    def substitute(self, binding: Mapping[Variable, Term]) -> "Rule":
        return Rule(
            self.head.substitute(binding),
            tuple(premise.substitute(binding) for premise in self.body),
            span=self.span,
        )

    def body_predicates(self) -> Iterator[tuple[str, str]]:
        """Yield ``(kind, predicate)`` pairs for each body occurrence.

        ``kind`` is ``"positive"``, ``"negative"``, or ``"hypothetical"``
        matching Definition 4 of the paper.  Predicates mentioned only
        in the *addition* part of a hypothetical premise are not
        occurrences in the paper's sense (insertions are updates, not
        dependencies) and are not yielded.
        """
        for premise in self.body:
            if isinstance(premise, Positive):
                yield "positive", premise.atom.predicate
            elif isinstance(premise, Negated):
                yield "negative", premise.atom.predicate
            else:
                yield "hypothetical", premise.atom.predicate

    def added_predicates(self) -> set[str]:
        """Predicates that appear in an ``add`` part of this rule."""
        found: set[str] = set()
        for premise in self.body:
            if isinstance(premise, Hypothetical):
                found.update(add.predicate for add in premise.additions)
        return found

    def __str__(self) -> str:
        if self.is_fact:
            return f"{self.head}."
        body = ", ".join(str(premise) for premise in self.body)
        return f"{self.head} :- {body}."


class Rulebase:
    """An ordered, immutable collection of hypothetical rules.

    The rulebase exposes the structural queries the analysis layer
    needs: the *definition* of a predicate (Definition 5: the rules
    whose head uses it), the IDB/EDB split, the constant symbols, and
    arity consistency checks.
    """

    __slots__ = ("_rules", "_definitions", "_arities", "_hash")

    def __init__(self, rules: Iterable[Rule] = ()):
        self._rules: tuple[Rule, ...] = tuple(rules)
        definitions: dict[str, list[Rule]] = {}
        arities: dict[str, int] = {}
        for item in self._rules:
            definitions.setdefault(item.head.predicate, []).append(item)
            for formula in self._all_atoms(item):
                known = arities.get(formula.predicate)
                if known is None:
                    arities[formula.predicate] = formula.arity
                elif known != formula.arity:
                    raise ValidationError(
                        f"predicate {formula.predicate!r} used with arities "
                        f"{known} and {formula.arity}"
                    )
        self._definitions = {
            predicate: tuple(items) for predicate, items in definitions.items()
        }
        self._arities = arities
        self._hash: int | None = None

    @staticmethod
    def _all_atoms(item: Rule) -> Iterator[Atom]:
        yield item.head
        for premise in item.body:
            yield from premise.atoms()

    @property
    def rules(self) -> tuple[Rule, ...]:
        return self._rules

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rulebase):
            return NotImplemented
        return self._rules == other._rules

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._rules)
        return self._hash

    def __add__(self, other: "Rulebase | Iterable[Rule]") -> "Rulebase":
        extra = other.rules if isinstance(other, Rulebase) else tuple(other)
        return Rulebase(self._rules + tuple(extra))

    def definition(self, predicate: str) -> tuple[Rule, ...]:
        """The rules whose conclusion uses ``predicate`` (Definition 5)."""
        return self._definitions.get(predicate, ())

    def defined_predicates(self) -> frozenset[str]:
        """Predicates with at least one rule (the IDB)."""
        return frozenset(self._definitions)

    def mentioned_predicates(self) -> frozenset[str]:
        """Every predicate appearing anywhere, including in additions."""
        found: set[str] = set()
        for item in self._rules:
            for formula in self._all_atoms(item):
                found.add(formula.predicate)
        return frozenset(found)

    def edb_predicates(self) -> frozenset[str]:
        """Predicates mentioned but never defined (the EDB)."""
        return self.mentioned_predicates() - self.defined_predicates()

    def arity(self, predicate: str) -> int | None:
        """The arity of ``predicate`` as used in this rulebase, if any."""
        return self._arities.get(predicate)

    def constants(self) -> frozenset[Constant]:
        """All constant symbols occurring in the rules."""
        found: set[Constant] = set()
        for item in self._rules:
            found.update(item.constants())
        return frozenset(found)

    @property
    def is_constant_free(self) -> bool:
        """True iff no rule mentions a constant (Section 6: genericity)."""
        return not self.constants()

    def has_negation(self) -> bool:
        """True iff some rule has a negated premise."""
        return any(
            isinstance(premise, Negated)
            for item in self._rules
            for premise in item.body
        )

    def has_hypotheses(self) -> bool:
        """True iff some rule has a hypothetical premise."""
        return any(
            isinstance(premise, Hypothetical)
            for item in self._rules
            for premise in item.body
        )

    def has_deletions(self) -> bool:
        """True iff some hypothetical premise deletes facts (the [4]
        extension; outside the paper's add-only language)."""
        return any(
            isinstance(premise, Hypothetical) and premise.deletions
            for item in self._rules
            for premise in item.body
        )

    @property
    def is_horn(self) -> bool:
        """True iff the rulebase is plain Datalog with negation at most.

        "Horn" here follows the paper's usage: no hypothetical premises
        (negation-by-failure may still be present).
        """
        return not self.has_hypotheses()

    def __str__(self) -> str:
        return "\n".join(str(item) for item in self._rules)

    def __repr__(self) -> str:
        return f"Rulebase({len(self._rules)} rules)"


def rule(head: Atom, *body: Premise | Atom) -> Rule:
    """Build a rule, wrapping bare atoms in :class:`Positive`.

    >>> from repro.core.terms import atom
    >>> str(rule(atom("p", "X"), atom("q", "X")))
    'p(X) :- q(X).'
    """
    premises = tuple(
        item if isinstance(item, (Positive, Negated, Hypothetical)) else Positive(item)
        for item in body
    )
    return Rule(head, premises)


def fact(head: Atom) -> Rule:
    """Build a bodiless rule."""
    return Rule(head, ())
