"""Term interning: constants and predicates as dense small ints.

The compiled execution substrate (:mod:`repro.core.columns`,
:mod:`repro.engine.kernels`) does not join over :class:`Constant`
objects — it joins over small integers.  A :class:`SymbolTable` owns
that mapping for one engine: every constant payload (string or int) is
assigned a dense id on first sight, and the id round-trips back to a
*canonical* :class:`Constant` object, so answers, provenance edges, and
diagnostics produced from interned data are indistinguishable from the
interpreted path's output.

Three design points:

* **Per-engine, grow-only.**  Ids are never recycled, so an id captured
  by a compiled kernel or a cached columnar relation stays valid for
  the engine's lifetime.  The table is intentionally *not* global:
  two engines over different programs must not share id spaces (and a
  table dies with its engine, bounding memory).
* **Exact round-trip.**  ``table.constant(table.intern(c))`` returns a
  Constant equal to ``c`` — the payload object itself is stored, never
  re-parsed or normalized, so unicode constants, quoted atoms with
  embedded punctuation, and int payloads survive untouched.  String
  and int payloads never collide (``Constant(1)`` and ``Constant("1")``
  get distinct ids) because dict keys compare by value *and* type.
* **Separate predicate namespace.**  Predicate names intern into their
  own id space; a predicate named like a constant does not alias it.

The shared ground-atom cache (:meth:`make_atom`) is what makes decoded
heads cheap: across the 2^|A| lattice of hypothetical child databases
the same derived atoms recur constantly, and each distinct
``predicate(ids...)`` is materialized exactly once per engine.
"""

from __future__ import annotations

from typing import Iterable, Union

from .terms import Atom, Constant, Term

__all__ = ["SymbolTable"]

_Payload = Union[str, int]


class SymbolTable:
    """Bidirectional map between constant payloads and dense int ids.

    ``constants`` is the id-indexed decode list; hot loops index it
    directly (``table.constants[ident]``).  Payloads are the ``str`` /
    ``int`` values :class:`~repro.core.terms.Constant` documents; bool
    payloads are not supported (``True`` would collide with ``1`` under
    dict hashing).
    """

    __slots__ = ("_const_ids", "constants", "_pred_ids", "predicates", "_atoms")

    def __init__(self) -> None:
        self._const_ids: dict[_Payload, int] = {}
        #: id -> canonical Constant (indexable decode table).
        self.constants: list[Constant] = []
        self._pred_ids: dict[str, int] = {}
        #: predicate id -> name.
        self.predicates: list[str] = []
        self._atoms: dict[tuple[str, tuple[int, ...]], Atom] = {}

    def __len__(self) -> int:
        return len(self.constants)

    # -- constants ------------------------------------------------------

    def intern(self, constant: Constant) -> int:
        """The dense id of a constant, assigning one on first sight."""
        ids = self._const_ids
        value = constant.value
        ident = ids.get(value)
        if ident is None:
            ident = len(self.constants)
            ids[value] = ident
            self.constants.append(constant)
        return ident

    def intern_value(self, value: _Payload) -> int:
        """Intern a raw payload (wrapping it in a Constant on a miss)."""
        ids = self._const_ids
        ident = ids.get(value)
        if ident is None:
            ident = len(self.constants)
            ids[value] = ident
            self.constants.append(Constant(value))
        return ident

    def constant(self, ident: int) -> Constant:
        """The canonical Constant for an id (exact round-trip)."""
        return self.constants[ident]

    def encode_args(self, args: tuple[Term, ...]) -> tuple[int, ...]:
        """Encode a ground argument tuple to an id tuple."""
        ids = self._const_ids
        constants = self.constants
        out = []
        for item in args:
            value = item.value  # ground rows only: every arg a Constant
            ident = ids.get(value)
            if ident is None:
                ident = len(constants)
                ids[value] = ident
                constants.append(item)
            out.append(ident)
        return tuple(out)

    def decode_args(self, ids: Iterable[int]) -> tuple[Constant, ...]:
        """Decode an id tuple back to canonical Constants."""
        constants = self.constants
        return tuple(constants[ident] for ident in ids)

    # -- predicates -----------------------------------------------------

    def intern_predicate(self, name: str) -> int:
        """The dense id of a predicate name (separate namespace)."""
        ids = self._pred_ids
        ident = ids.get(name)
        if ident is None:
            ident = len(self.predicates)
            ids[name] = ident
            self.predicates.append(name)
        return ident

    def predicate(self, ident: int) -> str:
        return self.predicates[ident]

    # -- ground atoms ---------------------------------------------------

    def make_atom(self, predicate: str, ids: tuple[int, ...]) -> Atom:
        """The canonical ground Atom for ``predicate(ids...)``.

        Cached per (predicate, id-tuple): compiled kernels yield heads
        through this, so a head derived across thousands of lattice
        child models is constructed once.  The returned atom carries no
        span (spans are excluded from atom equality/hash, so interned
        and parsed atoms interoperate).
        """
        key = (predicate, ids)
        found = self._atoms.get(key)
        if found is None:
            constants = self.constants
            found = self._atoms[key] = Atom(
                predicate, tuple(constants[ident] for ident in ids)
            )
        return found

    def __repr__(self) -> str:
        return (
            f"SymbolTable({len(self.constants)} constants, "
            f"{len(self.predicates)} predicates)"
        )
