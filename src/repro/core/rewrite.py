"""Source-to-source rewrites on rulebases.

Two rewrites from the paper:

* :func:`negate_hypothetical` — the Section 3.1 workaround for the "no
  negated hypotheticals" restriction: introduce a fresh predicate ``C``
  and a rule ``C <- A[add:B]`` so that ``~C`` has the effect of
  ``~A[add:B]``.
* :func:`single_addition_form` — Definition 1 makes the addition of a
  hypothetical premise a single atom; our AST allows a tuple.  This
  rewrite restores the strict single-addition form by chaining fresh
  predicates: ``A[add: B1, B2]`` becomes ``aux1[add: B1]`` with
  ``aux1 <- A[add: B2]``.  It exists to demonstrate that the extension
  is syntactic sugar; the engines handle tuples natively.
"""

from __future__ import annotations

from .ast import Hypothetical, Negated, Premise, Rule, Rulebase
from .terms import Atom

__all__ = ["negate_hypothetical", "single_addition_form"]

_AUX_COUNTER = 0


def _fresh_predicate(stem: str) -> str:
    global _AUX_COUNTER
    _AUX_COUNTER += 1
    return f"{stem}__aux{_AUX_COUNTER}"


def negate_hypothetical(premise: Hypothetical) -> tuple[Negated, Rule]:
    """Express ``~A[add:B]`` with an auxiliary predicate.

    Returns ``(negated_premise, auxiliary_rule)``: add the rule to the
    rulebase and use the negated premise in place of the (disallowed)
    negated hypothetical.  The auxiliary head carries exactly the
    variables of the original premise, so bindings flow through.
    """
    variables = tuple(dict.fromkeys(premise.variables()))
    head = Atom(_fresh_predicate(premise.atom.predicate), variables)
    return Negated(head), Rule(head, (premise,))


def single_addition_form(rulebase: Rulebase) -> Rulebase:
    """Rewrite every multi-addition premise into nested single additions.

    The result derives exactly the same atoms over the original
    predicates (the auxiliary predicates are fresh).  Rules without
    multi-addition premises are kept verbatim.
    """
    rewritten: list[Rule] = []
    for item in rulebase:
        extra_rules: list[Rule] = []
        new_body: list[Premise] = []
        for premise in item.body:
            if (
                isinstance(premise, Hypothetical)
                and not premise.deletions
                and len(premise.additions) > 1
            ):
                new_body.append(_chain(premise, extra_rules))
            else:
                new_body.append(premise)
        rewritten.append(Rule(item.head, tuple(new_body)))
        rewritten.extend(extra_rules)
    return Rulebase(rewritten)


def _chain(premise: Hypothetical, extra_rules: list[Rule]) -> Hypothetical:
    """Peel additions one at a time through auxiliary predicates.

    ``A[add: B1, ..., Bm]`` holds at DB iff ``A`` holds at
    ``DB + {B1, ..., Bm}``; adding the atoms one per auxiliary level
    reaches the same database, so the rewrite is semantics-preserving.
    """
    goal = premise.atom
    additions = list(premise.additions)
    # Innermost level adds the last atom and proves the original goal.
    while len(additions) > 1:
        last = additions.pop()
        variables = tuple(
            dict.fromkeys(list(goal.variables()) + list(last.variables()))
        )
        aux_head = Atom(_fresh_predicate(goal.predicate), variables)
        extra_rules.append(Rule(aux_head, (Hypothetical(goal, (last,)),)))
        goal = aux_head
    return Hypothetical(goal, (additions[0],))
