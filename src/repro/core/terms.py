"""Terms and atomic formulas.

The language of the paper is function-free first-order logic: a *term*
is either a variable or a constant, and an *atom* is a predicate symbol
applied to a tuple of terms.  Everything here is immutable and hashable
so that atoms can live in databases (sets) and serve as dictionary keys
in memo tables.

Conventions
-----------
* Constants carry either a string or an integer payload.  Integers are
  used by the Turing-machine encodings of Section 5.1 (counter values);
  strings are used everywhere else.
* The helper :func:`term` and :func:`atom` constructors apply the usual
  Prolog-ish convention: an identifier starting with an uppercase letter
  or underscore denotes a variable, anything else a constant.  The
  dataclass constructors themselves are convention-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Optional, Union

from .spans import Span

__all__ = [
    "Variable",
    "Constant",
    "Term",
    "Atom",
    "term",
    "atom",
    "fresh_variable",
]


@dataclass(frozen=True, slots=True)
class Variable:
    """A logical variable, identified by its name."""

    name: str

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant symbol; payload is a string or an integer."""

    value: Union[str, int]
    # Hash cache: constants are hashed millions of times as members of
    # row tuples and binding keys; the dataclass-generated hash builds
    # a fresh field tuple per call.  Excluded from equality/repr.
    _hash: Optional[int] = field(default=None, init=False, compare=False, repr=False)

    def __hash__(self) -> int:
        found = self._hash
        if found is None:
            found = hash((self.value,))
            object.__setattr__(self, "_hash", found)
        return found

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


Term = Union[Variable, Constant]


@dataclass(frozen=True, slots=True)
class Atom:
    """An atomic formula ``predicate(arg_1, ..., arg_n)``.

    ``args`` may be empty: the paper uses 0-ary predicates freely
    (``EVEN``, ``YES``, ``ACCEPT``).

    ``span`` records where the atom was parsed from; it is excluded
    from equality and hashing (see :mod:`repro.core.spans`), so parsed
    and programmatic atoms interoperate freely.
    """

    predicate: str
    args: tuple[Term, ...] = ()
    span: Optional[Span] = field(default=None, compare=False, repr=False)
    # Hash cache (see Constant._hash): atoms key databases, memo
    # tables, and interpretation row sets, and are re-hashed on every
    # membership test.  Excluded from equality/repr.
    _hash: Optional[int] = field(default=None, init=False, compare=False, repr=False)

    def __hash__(self) -> int:
        found = self._hash
        if found is None:
            found = hash((self.predicate, self.args))
            object.__setattr__(self, "_hash", found)
        return found

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    @property
    def is_ground(self) -> bool:
        """True iff no argument is a variable."""
        return all(isinstance(arg, Constant) for arg in self.args)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables of this atom, left to right, with repeats."""
        for arg in self.args:
            if isinstance(arg, Variable):
                yield arg

    def constants(self) -> Iterator[Constant]:
        """Yield the constants of this atom, left to right, with repeats."""
        for arg in self.args:
            if isinstance(arg, Constant):
                yield arg

    def substitute(self, binding: Mapping[Variable, Term]) -> "Atom":
        """Return a copy with every bound variable replaced.

        Unbound variables are left in place, so partial substitutions
        are fine.
        """
        if not self.args:
            return self
        new_args = tuple(
            binding.get(arg, arg) if isinstance(arg, Variable) else arg
            for arg in self.args
        )
        if new_args == self.args:
            return self
        return Atom(self.predicate, new_args, self.span)

    def values(self) -> tuple[Union[str, int], ...]:
        """Return the payload tuple of a ground atom.

        Raises :class:`ValueError` if the atom is not ground; use this
        only on database facts.
        """
        payload = []
        for arg in self.args:
            if not isinstance(arg, Constant):
                raise ValueError(f"atom {self} is not ground")
            payload.append(arg.value)
        return tuple(payload)

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.predicate}({inner})"


def term(value: Union[Term, str, int]) -> Term:
    """Coerce a Python value to a term.

    Strings beginning with an uppercase letter or ``_`` become
    variables; all other strings and all integers become constants.
    Terms pass through unchanged.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)


def atom(predicate: str, *args: Union[Term, str, int]) -> Atom:
    """Build an atom, coercing each argument with :func:`term`.

    >>> str(atom("take", "S", "cs452"))
    'take(S, cs452)'
    """
    return Atom(predicate, tuple(term(arg) for arg in args))


_FRESH_COUNTER = 0


def fresh_variable(stem: str = "V") -> Variable:
    """Return a variable guaranteed distinct from all earlier fresh ones.

    Fresh variables are used when renaming rules apart and when the
    Section 5/6 encoders synthesize rules.  The name always contains a
    ``#`` so it can never collide with parsed user variables.
    """
    global _FRESH_COUNTER
    _FRESH_COUNTER += 1
    return Variable(f"{stem}#{_FRESH_COUNTER}")


def all_variables(atoms: Iterable[Atom]) -> set[Variable]:
    """Collect the set of variables occurring in ``atoms``."""
    found: set[Variable] = set()
    for item in atoms:
        found.update(item.variables())
    return found
