"""Parser for the textual rule and database language.

The concrete syntax follows the paper as closely as ASCII allows::

    grad(S) :- take(S, his101), take(S, eng201).
    within1(S, D) :- grad(S, D) [add: take(S, C)].
    even :- ~select(X).
    path(X) :- select(Y), edge(X, Y), path(Y) [add: pnode(Y)].

* Identifiers starting with a lowercase letter are predicate or
  constant symbols; identifiers starting with an uppercase letter or
  ``_`` are variables.  Integers are constants.  Single-quoted strings
  are constants with arbitrary content.
* ``~A`` (or ``not A``) is negation-by-failure.
* ``A [add: B1, ..., Bm]`` is a hypothetical premise; an optional
  ``[del: C1, ..., Cj]`` group adds hypothetical deletions (the [4]
  extension; evaluated by the top-down engine only).
* Facts are rules with no body: ``take(tony, cs250).``
* Comments run from ``%`` or ``#`` to the end of the line.

Entry points: :func:`parse_program` (rules), :func:`parse_database`
(ground facts only), :func:`parse_rule`, :func:`parse_premise`,
:func:`parse_atom`.  The pretty-printer in :mod:`repro.core.pretty`
emits exactly this syntax, so parse/print round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from typing import Optional

from .ast import Hypothetical, Negated, Positive, Premise, Rule, Rulebase
from .database import Database
from .errors import ParseError
from .spans import Span
from .terms import Atom, Constant, Term, Variable

__all__ = [
    "parse_program",
    "parse_database",
    "parse_rule",
    "parse_premise",
    "parse_atom",
]

_PUNCTUATION = {"(", ")", "[", "]", ",", ".", "~"}


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # "ident" | "var" | "int" | "string" | "punct" | "arrow" | "eof"
    text: str
    line: int
    column: int
    width: int = 1  # source characters consumed (quotes included)


def _tokenize(source: str) -> Iterator[_Token]:
    line = 1
    column = 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char.isspace():
            index += 1
            column += 1
            continue
        if char in "%#":
            while index < length and source[index] != "\n":
                index += 1
            continue
        start_column = column
        if source.startswith(":-", index):
            yield _Token("arrow", ":-", line, start_column, 2)
            index += 2
            column += 2
            continue
        if char == ":":
            yield _Token("punct", ":", line, start_column)
            index += 1
            column += 1
            continue
        if char in _PUNCTUATION:
            yield _Token("punct", char, line, start_column)
            index += 1
            column += 1
            continue
        if char == "'":
            end = source.find("'", index + 1)
            if end < 0:
                raise ParseError("unterminated quoted constant", line, start_column)
            text = source[index + 1 : end]
            consumed = end - index + 1
            yield _Token("string", text, line, start_column, consumed)
            index += consumed
            column += consumed
            continue
        if char.isdigit() or (char == "-" and index + 1 < length and source[index + 1].isdigit()):
            end = index + 1
            while end < length and source[end].isdigit():
                end += 1
            text = source[index:end]
            yield _Token("int", text, line, start_column, end - index)
            column += end - index
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[index:end]
            kind = "var" if text[0].isupper() or text[0] == "_" else "ident"
            yield _Token(kind, text, line, start_column, end - index)
            column += end - index
            index = end
            continue
        raise ParseError(f"unexpected character {char!r}", line, start_column)
    yield _Token("eof", "", line, column, 0)


class _Parser:
    """Recursive-descent parser over the token stream.

    ``filename`` (when given) is recorded in the spans attached to the
    rules, premises, and atoms produced, so diagnostics can point at
    ``file:line:col``.
    """

    def __init__(self, source: str, filename: Optional[str] = None):
        self._tokens = list(_tokenize(source))
        self._position = 0
        self._filename = filename
        self._last = self._tokens[0]

    # -- token plumbing -------------------------------------------------

    @property
    def _current(self) -> _Token:
        return self._tokens[self._position]

    def _advance(self) -> _Token:
        token = self._current
        if token.kind != "eof":
            self._position += 1
        self._last = token
        return token

    def _span_from(self, start: _Token) -> Span:
        """The span from ``start`` through the last consumed token."""
        end = self._last if self._last.kind != "eof" else start
        return Span(
            start.line,
            start.column,
            end.line,
            end.column + max(end.width, 1),
            self._filename,
        )

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._current
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text if text is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {token.text or token.kind!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _at_punct(self, text: str) -> bool:
        return self._current.kind == "punct" and self._current.text == text

    # -- grammar --------------------------------------------------------

    def parse_term(self) -> Term:
        token = self._current
        if token.kind == "var":
            self._advance()
            return Variable(token.text)
        if token.kind == "ident":
            self._advance()
            return Constant(token.text)
        if token.kind == "string":
            self._advance()
            return Constant(token.text)
        if token.kind == "int":
            self._advance()
            return Constant(int(token.text))
        raise ParseError(
            f"expected a term, found {token.text or token.kind!r}",
            token.line,
            token.column,
        )

    def parse_atom(self) -> Atom:
        token = self._current
        if token.kind not in ("ident", "string"):
            raise ParseError(
                f"expected a predicate symbol, found {token.text or token.kind!r}",
                token.line,
                token.column,
            )
        self._advance()
        predicate = token.text
        args: list[Term] = []
        if self._at_punct("("):
            self._advance()
            if self._at_punct(")"):
                raise ParseError("empty argument list", token.line, token.column)
            args.append(self.parse_term())
            while self._at_punct(","):
                self._advance()
                args.append(self.parse_term())
            self._expect("punct", ")")
        return Atom(predicate, tuple(args), self._span_from(token))

    def parse_premise(self) -> Premise:
        token = self._current
        if self._at_punct("~") or (token.kind == "ident" and token.text == "not"
                                   and self._peek_is_atom_start()):
            self._advance()
            inner = self.parse_atom()
            if self._at_punct("["):
                raise ParseError(
                    "negated hypothetical premises are not allowed "
                    "(introduce an auxiliary predicate; see Section 3.1)",
                    token.line,
                    token.column,
                )
            return Negated(inner, span=self._span_from(token))
        head = self.parse_atom()
        additions: list[Atom] = []
        deletions: list[Atom] = []
        seen_groups: set[str] = set()
        while self._at_punct("["):
            opener = self._advance()
            keyword = self._current
            if keyword.kind != "ident" or keyword.text not in ("add", "del"):
                raise ParseError(
                    "expected 'add' or 'del' after '['",
                    keyword.line,
                    keyword.column,
                )
            if keyword.text in seen_groups:
                raise ParseError(
                    f"duplicate [{keyword.text}: ...] group",
                    keyword.line,
                    keyword.column,
                )
            seen_groups.add(keyword.text)
            self._advance()
            self._expect("punct", ":")
            target = additions if keyword.text == "add" else deletions
            target.append(self.parse_atom())
            while self._at_punct(","):
                self._advance()
                target.append(self.parse_atom())
            self._expect("punct", "]")
        if additions or deletions:
            return Hypothetical(
                head,
                tuple(additions),
                tuple(deletions),
                span=self._span_from(token),
            )
        return Positive(head, span=head.span)

    def _peek_is_atom_start(self) -> bool:
        """After a ``not`` token: does an atom follow?

        Distinguishes ``not p(X)`` (negation) from an atom whose
        predicate happens to be named ``not`` followed by ``:-``/``.``.
        """
        nxt = self._tokens[self._position + 1]
        return nxt.kind in ("ident", "string")

    def parse_rule(self) -> Rule:
        start = self._current
        head = self.parse_atom()
        body: list[Premise] = []
        if self._current.kind == "arrow":
            self._advance()
            body.append(self.parse_premise())
            while self._at_punct(","):
                self._advance()
                body.append(self.parse_premise())
        self._expect("punct", ".")
        return Rule(head, tuple(body), span=self._span_from(start))

    def parse_program(self) -> Rulebase:
        rules: list[Rule] = []
        while self._current.kind != "eof":
            rules.append(self.parse_rule())
        return Rulebase(rules)

    def expect_eof(self) -> None:
        token = self._current
        if token.kind != "eof":
            raise ParseError(
                f"trailing input {token.text!r}", token.line, token.column
            )


def parse_program(source: str, filename: Optional[str] = None) -> Rulebase:
    """Parse a whole program (a sequence of rules and facts).

    ``filename`` (optional) is recorded in the spans of the resulting
    rules, so diagnostics can point at ``file:line:col``.

    >>> rb = parse_program("grad(S) :- take(S, his101), take(S, eng201).")
    >>> len(rb)
    1
    """
    parser = _Parser(source, filename)
    program = parser.parse_program()
    parser.expect_eof()
    return program


def parse_database(source: str, filename: Optional[str] = None) -> Database:
    """Parse a database: ground facts only, one per ``.``-terminated atom.

    Raises :class:`~repro.core.errors.ParseError` on rules and
    :class:`~repro.core.errors.ValidationError` on non-ground facts.
    """
    program = parse_program(source, filename)
    facts = []
    for item in program:
        if not item.is_fact:
            raise ParseError(f"databases contain facts only, found rule {item}")
        facts.append(item.head)
    return Database(facts)


def parse_rule(source: str, filename: Optional[str] = None) -> Rule:
    """Parse exactly one rule (or fact)."""
    parser = _Parser(source, filename)
    result = parser.parse_rule()
    parser.expect_eof()
    return result


def parse_premise(source: str) -> Premise:
    """Parse a premise / query expression, e.g. ``grad(tony)[add: take(tony, cs452)]``.

    A trailing ``.`` is permitted.
    """
    parser = _Parser(source)
    result = parser.parse_premise()
    if parser._at_punct("."):
        parser._advance()
    parser.expect_eof()
    return result


def parse_atom(source: str) -> Atom:
    """Parse a single atom, e.g. ``take(tony, cs250)``."""
    parser = _Parser(source)
    result = parser.parse_atom()
    if parser._at_punct("."):
        parser._advance()
    parser.expect_eof()
    return result
