"""Exception hierarchy for the hypothetical-Datalog library.

Every error raised deliberately by this package derives from
:class:`HypotheticalDatalogError`, so callers can catch one base class.
The subclasses mirror the pipeline stages: parsing, program validation,
stratification analysis, query evaluation, machine simulation, and query
compilation (the Section 6 expressibility construction).

Resource governance (docs/ROBUSTNESS.md) adds two members:

* :class:`ResourceExhausted` — a query ran out of budget (deadline,
  step limit, atom cap, depth guard, or cooperative cancellation).  It
  is an :class:`EvaluationError` that additionally carries a
  :class:`PartialResult` with whatever the evaluator had established
  when the budget tripped, so callers can degrade gracefully instead
  of losing the work.
* :class:`InvariantViolation` — an *internal* self-check of the
  differential engine failed (delta-vs-naive divergence).  The model
  engine catches it itself and falls back to naive evaluation once; it
  only escapes to callers if the fallback diverges too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "HypotheticalDatalogError",
    "ParseError",
    "ValidationError",
    "StratificationError",
    "EvaluationError",
    "ResourceExhausted",
    "InvariantViolation",
    "PartialResult",
    "MachineError",
    "CompilationError",
]


class HypotheticalDatalogError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(HypotheticalDatalogError):
    """A program, database, or query text could not be parsed.

    Carries the position of the offending token when available.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class ValidationError(HypotheticalDatalogError):
    """A syntactically valid object violates a structural requirement.

    Examples: a non-ground fact in a database, a negated hypothetical
    premise (disallowed by the paper's simplifying assumption in
    Section 3.1), or an atom whose arity is inconsistent across a
    rulebase.
    """


class StratificationError(HypotheticalDatalogError):
    """A rulebase is not stratifiable in the requested sense.

    Raised when negation is recursive (no stratification in the sense of
    Apt-Blair-Walker exists) or when a rulebase fails the linear
    stratification tests of Section 4 / Lemma 1.
    """


class EvaluationError(HypotheticalDatalogError):
    """Query evaluation could not proceed.

    Examples: querying a predicate with the wrong arity, exceeding a
    user-supplied resource bound, or evaluating a rulebase that the
    selected engine does not support.
    """


@dataclass
class PartialResult:
    """What an interrupted evaluation had already established.

    Every field is best-effort: ``answers`` / ``atoms`` are ``None``
    (not merely empty) when the interrupted entry point produces no
    such thing.  Whatever is present is *sound* — answers were fully
    decided and atoms fully derived before the budget tripped — so a
    partial result is always a subset of the unbudgeted one.
    """

    answers: Optional[set] = None
    atoms: Optional[frozenset] = None
    strata_completed: int = 0
    steps: int = 0
    atoms_derived: int = 0
    elapsed: float = 0.0

    def merge_missing(
        self,
        *,
        answers: Optional[set] = None,
        atoms: Optional[frozenset] = None,
        strata_completed: Optional[int] = None,
    ) -> None:
        """Fill fields an inner (more deeply nested) handler left unset."""
        if self.answers is None and answers is not None:
            self.answers = set(answers)
        if self.atoms is None and atoms is not None:
            self.atoms = frozenset(atoms)
        if strata_completed is not None and not self.strata_completed:
            self.strata_completed = strata_completed

    def describe(self) -> str:
        """One-line summary for CLI/REPL display."""
        parts = []
        if self.answers is not None:
            parts.append(f"{len(self.answers)} answer(s)")
        if self.atoms is not None:
            parts.append(f"{len(self.atoms)} atom(s)")
        if self.strata_completed:
            parts.append(f"{self.strata_completed} strata completed")
        parts.append(f"steps={self.steps}")
        if self.atoms_derived:
            parts.append(f"derived={self.atoms_derived}")
        parts.append(f"elapsed={self.elapsed:.3f}s")
        return ", ".join(parts)

    # -- wire format (docs/SERVER.md) -----------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form; :meth:`from_dict` round-trips it.

        Answers are payload tuples (strings/ints) already, so they map
        to lists directly; atoms serialize through their textual form,
        which :func:`repro.core.parser.parse_atom` reads back exactly.
        Sorting makes the output deterministic for golden tests.
        """
        payload: dict = {
            "strata_completed": self.strata_completed,
            "steps": self.steps,
            "atoms_derived": self.atoms_derived,
            "elapsed": self.elapsed,
        }
        if self.answers is not None:
            payload["answers"] = sorted(
                [list(row) if isinstance(row, tuple) else row
                 for row in self.answers],
                key=str,
            )
        if self.atoms is not None:
            payload["atoms"] = sorted(str(atom) for atom in self.atoms)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "PartialResult":
        """Rebuild a :class:`PartialResult` from :meth:`to_dict` output.

        Tolerant of missing keys (older peers may send fewer fields).
        """
        answers = None
        if payload.get("answers") is not None:
            answers = {
                tuple(row) if isinstance(row, list) else row
                for row in payload["answers"]
            }
        atoms = None
        if payload.get("atoms") is not None:
            from .parser import parse_atom

            atoms = frozenset(parse_atom(text) for text in payload["atoms"])
        return cls(
            answers=answers,
            atoms=atoms,
            strata_completed=int(payload.get("strata_completed", 0)),
            steps=int(payload.get("steps", 0)),
            atoms_derived=int(payload.get("atoms_derived", 0)),
            elapsed=float(payload.get("elapsed", 0.0)),
        )


class ResourceExhausted(EvaluationError):
    """A query exceeded its :class:`~repro.engine.budget.Budget`.

    ``reason`` is one of ``"deadline"``, ``"steps"``, ``"atoms"``,
    ``"depth"``, ``"cancelled"``, or ``"injected"`` (fault injection);
    ``site`` names the guarded check that tripped (a dotted metric-site
    name, e.g. ``"topdown.goals"``); ``partial`` carries the results
    established before the trip.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str,
        site: Optional[str] = None,
        partial: Optional[PartialResult] = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.site = site
        self.partial = partial if partial is not None else PartialResult()

    # -- wire format (docs/SERVER.md) -----------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form; :meth:`from_dict` round-trips it."""
        return {
            "message": str(self),
            "reason": self.reason,
            "site": self.site,
            "partial": self.partial.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ResourceExhausted":
        """Rebuild a :class:`ResourceExhausted` from :meth:`to_dict`
        output (the client side of the wire protocol)."""
        partial = None
        if payload.get("partial") is not None:
            partial = PartialResult.from_dict(payload["partial"])
        return cls(
            str(payload.get("message", "evaluation exhausted its budget")),
            reason=str(payload.get("reason", "unknown")),
            site=payload.get("site"),
            partial=partial,
        )


class InvariantViolation(EvaluationError):
    """An internal self-check of an evaluator failed.

    Raised by the differential engine's cross-check hooks when a
    semi-naive closure diverges from the naive reference (or when fault
    injection simulates that).  :class:`~repro.engine.model.PerfectModelEngine`
    intercepts it and degrades to ``strategy="naive"`` once.
    """


class MachineError(HypotheticalDatalogError):
    """A Turing machine description or simulation is invalid.

    Examples: transitions mentioning unknown states, inputs outside the
    machine's alphabet, or a bounded run that exhausted its time budget
    without halting when an exact answer was required.
    """


class CompilationError(HypotheticalDatalogError):
    """The Section 6 query-to-rulebase compiler rejected its input.

    Examples: a database signature with unsupported arities, or a
    machine whose alphabet does not match the bitmap convention.
    """
