"""Exception hierarchy for the hypothetical-Datalog library.

Every error raised deliberately by this package derives from
:class:`HypotheticalDatalogError`, so callers can catch one base class.
The subclasses mirror the pipeline stages: parsing, program validation,
stratification analysis, query evaluation, machine simulation, and query
compilation (the Section 6 expressibility construction).
"""

from __future__ import annotations

__all__ = [
    "HypotheticalDatalogError",
    "ParseError",
    "ValidationError",
    "StratificationError",
    "EvaluationError",
    "MachineError",
    "CompilationError",
]


class HypotheticalDatalogError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(HypotheticalDatalogError):
    """A program, database, or query text could not be parsed.

    Carries the position of the offending token when available.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class ValidationError(HypotheticalDatalogError):
    """A syntactically valid object violates a structural requirement.

    Examples: a non-ground fact in a database, a negated hypothetical
    premise (disallowed by the paper's simplifying assumption in
    Section 3.1), or an atom whose arity is inconsistent across a
    rulebase.
    """


class StratificationError(HypotheticalDatalogError):
    """A rulebase is not stratifiable in the requested sense.

    Raised when negation is recursive (no stratification in the sense of
    Apt-Blair-Walker exists) or when a rulebase fails the linear
    stratification tests of Section 4 / Lemma 1.
    """


class EvaluationError(HypotheticalDatalogError):
    """Query evaluation could not proceed.

    Examples: querying a predicate with the wrong arity, exceeding a
    user-supplied resource bound, or evaluating a rulebase that the
    selected engine does not support.
    """


class MachineError(HypotheticalDatalogError):
    """A Turing machine description or simulation is invalid.

    Examples: transitions mentioning unknown states, inputs outside the
    machine's alphabet, or a bounded run that exhausted its time budget
    without halting when an exact answer was required.
    """


class CompilationError(HypotheticalDatalogError):
    """The Section 6 query-to-rulebase compiler rejected its input.

    Examples: a database signature with unsupported arities, or a
    machine whose alphabet does not match the bitmap convention.
    """
