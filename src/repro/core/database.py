"""Immutable databases of ground facts.

A database in the paper is a finite set of ground atomic formulas.  The
inference rule for hypothetical premises evaluates ``R, DB + {B} |- A``,
so databases must support cheap functional extension (``DB + {B}``) and
must be hashable so evaluation results can be memoized per database.

Storage is the per-predicate index itself (predicate -> frozenset of
argument tuples); the flat ``facts`` frozenset is materialized lazily.
Functional updates are copy-on-write: :meth:`with_facts` shares the
frozensets of untouched predicates with its parent and only validates
the *new* atoms, so extending a database costs O(|additions|) plus the
touched relations rather than O(|DB|).  The hash is maintained
incrementally with an order-independent (XOR-combined) element hash,
which is what makes hypothetical evaluation's ``DB + {B}`` memo keys
cheap along lattice paths.

Pattern matching carries a ground fast path (set membership) and lazy
per-(predicate, argument-position) hash maps used to narrow candidate
rows when the pattern has bound positions.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

from .errors import ValidationError
from .terms import Atom, Constant, Term, Variable
from .unify import Substitution, match_args

__all__ = ["Database"]

_Payload = Union[str, int]

_HASH_MASK = (1 << 64) - 1

# Below this relation size a linear scan beats building position maps.
_INDEX_MIN_ROWS = 8


def _element_hash(predicate: str, args: tuple[Term, ...]) -> int:
    """Order-independent per-fact hash contribution.

    XOR-combining these is commutative and self-inverse, so the
    database hash can be updated incrementally on both addition and
    removal.  The raw hash is bit-mixed first so that structurally
    close facts do not cancel each other out under XOR.
    """
    raw = hash((predicate, args))
    raw ^= (raw >> 23) & _HASH_MASK
    return (raw * 0x9E3779B97F4A7C15) & _HASH_MASK


class Database:
    """A finite set of ground facts, immutable and hashable."""

    __slots__ = ("_index", "_size", "_xor", "_hash", "_facts", "_maps")

    def __init__(self, facts: Iterable[Atom] = ()):
        index: dict[str, set[tuple[Term, ...]]] = {}
        acc = 0
        size = 0
        for item in facts:
            if not item.is_ground:
                raise ValidationError(f"database fact {item} is not ground")
            rows = index.setdefault(item.predicate, set())
            if item.args not in rows:
                rows.add(item.args)
                size += 1
                acc ^= _element_hash(item.predicate, item.args)
        self._index: dict[str, frozenset[tuple[Term, ...]]] = {
            predicate: frozenset(rows) for predicate, rows in index.items()
        }
        self._size = size
        self._xor = acc
        self._hash: int | None = None
        self._facts: frozenset[Atom] | None = None
        self._maps: dict[str, list[dict[Term, list[tuple[Term, ...]]]]] = {}

    @classmethod
    def _from_index(
        cls,
        index: dict[str, frozenset[tuple[Term, ...]]],
        size: int,
        acc: int,
    ) -> "Database":
        """Internal constructor for derived databases (index pre-built,
        every row already validated by the database it came from)."""
        db = cls.__new__(cls)
        db._index = index
        db._size = size
        db._xor = acc
        db._hash = None
        db._facts = None
        db._maps = {}
        return db

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_relations(
        cls, relations: Mapping[str, Iterable[Sequence[_Payload] | _Payload]]
    ) -> "Database":
        """Build a database from ``{predicate: rows}``.

        Each row is a sequence of constant payloads (strings or ints);
        a bare payload is treated as a 1-tuple, which makes unary
        relations pleasant to write:

        >>> db = Database.from_relations({"node": ["a", "b"],
        ...                               "edge": [("a", "b")]})
        >>> len(db)
        3
        """
        facts: list[Atom] = []
        for predicate, rows in relations.items():
            for row in rows:
                if isinstance(row, (str, int)):
                    row = (row,)
                facts.append(
                    Atom(predicate, tuple(Constant(value) for value in row))
                )
        return cls(facts)

    # ------------------------------------------------------------------
    # Set behaviour
    # ------------------------------------------------------------------

    @property
    def facts(self) -> frozenset[Atom]:
        cached = self._facts
        if cached is None:
            cached = self._facts = frozenset(
                Atom(predicate, args)
                for predicate, rows in self._index.items()
                for args in rows
            )
        return cached

    def __contains__(self, item: Atom) -> bool:
        rows = self._index.get(item.predicate)
        return rows is not None and item.args in rows

    def __iter__(self) -> Iterator[Atom]:
        for predicate, rows in self._index.items():
            for args in rows:
                yield Atom(predicate, args)

    def __len__(self) -> int:
        return self._size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._size == other._size and self._index == other._index

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._size, self._xor))
        return self._hash

    def __le__(self, other: "Database") -> bool:
        if self._size > other._size:
            return False
        other_index = other._index
        for predicate, rows in self._index.items():
            other_rows = other_index.get(predicate)
            if other_rows is None or not rows <= other_rows:
                return False
        return True

    def __lt__(self, other: "Database") -> bool:
        return self._size < other._size and self <= other

    # ------------------------------------------------------------------
    # Functional updates (the ``DB + {B}`` of Definition 3)
    # ------------------------------------------------------------------

    def with_facts(self, *additions: Atom) -> "Database":
        """Return ``self + {additions}``; ``self`` is unchanged.

        Returns ``self`` itself when every addition is already present,
        which keeps memo tables small: the hypothetical inference rule
        frequently re-adds facts that are already there.  Only the
        genuinely new atoms are validated; untouched relations are
        shared with the parent database.
        """
        fresh: dict[str, set[tuple[Term, ...]]] = {}
        index = self._index
        acc = 0
        added = 0
        for item in additions:
            rows = index.get(item.predicate)
            if rows is not None and item.args in rows:
                continue
            bucket = fresh.setdefault(item.predicate, set())
            if item.args in bucket:
                continue
            if not item.is_ground:
                raise ValidationError(f"database fact {item} is not ground")
            bucket.add(item.args)
            added += 1
            acc ^= _element_hash(item.predicate, item.args)
        if not added:
            return self
        new_index = dict(index)
        for predicate, bucket in fresh.items():
            old = index.get(predicate)
            new_index[predicate] = (
                frozenset(bucket) if old is None else old | bucket
            )
        return Database._from_index(new_index, self._size + added, self._xor ^ acc)

    def without_facts(self, *removals: Atom) -> "Database":
        """Return ``self - {removals}``; ``self`` is unchanged.

        Supports the hypothetical-deletion extension (``A[del: B]``).
        Returns ``self`` itself when nothing named is present.
        """
        dropped: dict[str, set[tuple[Term, ...]]] = {}
        removed = 0
        acc = 0
        for item in removals:
            rows = self._index.get(item.predicate)
            if rows is None or item.args not in rows:
                continue
            bucket = dropped.setdefault(item.predicate, set())
            if item.args in bucket:
                continue
            bucket.add(item.args)
            removed += 1
            acc ^= _element_hash(item.predicate, item.args)
        if not removed:
            return self
        new_index = dict(self._index)
        for predicate, bucket in dropped.items():
            remaining = new_index[predicate] - bucket
            if remaining:
                new_index[predicate] = remaining
            else:
                del new_index[predicate]
        return Database._from_index(
            new_index, self._size - removed, self._xor ^ acc
        )

    def union(self, other: "Database") -> "Database":
        """Set union of two databases."""
        if other._size == 0 or other <= self:
            return self
        merged = dict(self._index)
        acc = self._xor
        size = self._size
        for predicate, rows in other._index.items():
            mine = merged.get(predicate)
            new_rows = rows if mine is None else rows - mine
            if not new_rows:
                continue
            merged[predicate] = new_rows if mine is None else mine | new_rows
            size += len(new_rows)
            for args in new_rows:
                acc ^= _element_hash(predicate, args)
        return Database._from_index(merged, size, acc)

    def without_predicate(self, predicate: str) -> "Database":
        """Return a copy with every fact of ``predicate`` removed."""
        rows = self._index.get(predicate)
        if rows is None:
            return self
        acc = self._xor
        for args in rows:
            acc ^= _element_hash(predicate, args)
        new_index = dict(self._index)
        del new_index[predicate]
        return Database._from_index(new_index, self._size - len(rows), acc)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def predicates(self) -> frozenset[str]:
        """Predicates with at least one fact."""
        return frozenset(self._index)

    def count(self, predicate: str) -> int:
        """How many stored facts use ``predicate`` (0 when absent)."""
        return len(self._index.get(predicate, ()))

    def relation(self, predicate: str) -> frozenset[tuple[Term, ...]]:
        """The set of argument tuples stored under ``predicate``."""
        return self._index.get(predicate, frozenset())

    def relations(self) -> Mapping[str, frozenset[tuple[Term, ...]]]:
        """Read-only view of the whole per-predicate index.

        :class:`~repro.engine.interpretation.Interpretation` adopts this
        view wholesale when constructed from a database, so building an
        interpretation over a database is O(#predicates) regardless of
        how many facts it holds.
        """
        return MappingProxyType(self._index)

    def rows(self, predicate: str) -> set[tuple[_Payload, ...]]:
        """The relation as plain Python payload tuples.

        >>> Database.from_relations({"edge": [("a", "b")]}).rows("edge")
        {('a', 'b')}
        """
        return {
            tuple(term.value for term in args)  # type: ignore[union-attr]
            for args in self.relation(predicate)
        }

    def _position_maps(
        self, predicate: str
    ) -> list[dict[Term, list[tuple[Term, ...]]]]:
        """Lazy per-argument-position maps ``constant -> rows``.

        Sized to the largest arity stored under the predicate; rows
        shorter than a position simply do not appear in that position's
        map, which is correct because matching requires equal arity.
        """
        maps = self._maps.get(predicate)
        if maps is None:
            maps = []
            for args in self._index.get(predicate, ()):
                if len(args) > len(maps):
                    maps.extend({} for _ in range(len(args) - len(maps)))
                for position, value in enumerate(args):
                    maps[position].setdefault(value, []).append(args)
            self._maps[predicate] = maps
        return maps

    def matches(
        self, pattern: Atom, binding: Optional[Substitution] = None
    ) -> Iterator[Substitution]:
        """Enumerate extensions of ``binding`` matching ``pattern``.

        Mirrors :meth:`repro.engine.interpretation.Interpretation.matches`
        so engines can join rule premises directly against the stored
        facts.  Ground patterns are decided by set membership; patterns
        with bound positions probe the position maps and scan only the
        narrowest candidate list.
        """
        rows = self._index.get(pattern.predicate)
        if not rows:
            return
        pattern_args = pattern.substitute(binding).args if binding else pattern.args
        bound = [
            (position, value)
            for position, value in enumerate(pattern_args)
            if not isinstance(value, Variable)
        ]
        if len(bound) == len(pattern_args):
            if pattern_args in rows:
                yield dict(binding) if binding else {}
            return
        candidates: Iterable[tuple[Term, ...]] = rows
        if bound and len(rows) >= _INDEX_MIN_ROWS:
            maps = self._position_maps(pattern.predicate)
            best: Optional[list[tuple[Term, ...]]] = None
            for position, value in bound:
                if position >= len(maps):
                    return
                found = maps[position].get(value)
                if found is None:
                    return
                if best is None or len(found) < len(best):
                    best = found
            if best is not None:
                candidates = best
        for ground_args in candidates:
            extended = match_args(pattern_args, ground_args, binding)
            if extended is not None:
                yield extended

    def has_match(
        self, pattern: Atom, binding: Optional[Substitution] = None
    ) -> bool:
        """True iff some stored fact matches ``pattern`` under ``binding``."""
        for _ in self.matches(pattern, binding):
            return True
        return False

    def constants(self) -> frozenset[Constant]:
        """Every constant appearing in some fact."""
        found: set[Constant] = set()
        for rows in self._index.values():
            for args in rows:
                found.update(args)  # type: ignore[arg-type]
        return frozenset(found)

    def rename(self, mapping: Mapping[_Payload, _Payload]) -> "Database":
        """Apply a renaming (permutation) of constant payloads.

        Used by the genericity checks of Section 6: a query is generic
        iff renaming the database constants renames the answer the same
        way.  Payloads absent from ``mapping`` are left unchanged.
        """
        renamed = []
        for item in self:
            args = tuple(
                Constant(mapping.get(arg.value, arg.value))  # type: ignore[union-attr]
                for arg in item.args
            )
            renamed.append(Atom(item.predicate, args))
        return Database(renamed)

    def __str__(self) -> str:
        ordered = sorted(self, key=lambda item: (item.predicate, str(item)))
        return "\n".join(f"{item}." for item in ordered)

    def __repr__(self) -> str:
        return f"Database({self._size} facts)"
