"""Immutable databases of ground facts.

A database in the paper is a finite set of ground atomic formulas.  The
inference rule for hypothetical premises evaluates ``R, DB + {B} |- A``,
so databases must support cheap functional extension (``DB + {B}``) and
must be hashable so evaluation results can be memoized per database.

:class:`Database` wraps a frozenset of ground :class:`~repro.core.terms.Atom`
objects and precomputes a per-predicate index (predicate -> set of
argument tuples) used by the join machinery in the engines.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

from .errors import ValidationError
from .terms import Atom, Constant, Term
from .unify import Substitution, match_args

__all__ = ["Database"]

_Payload = Union[str, int]


class Database:
    """A finite set of ground facts, immutable and hashable."""

    __slots__ = ("_facts", "_index", "_hash")

    def __init__(self, facts: Iterable[Atom] = ()):
        collected = frozenset(facts)
        for item in collected:
            if not item.is_ground:
                raise ValidationError(f"database fact {item} is not ground")
        self._facts: frozenset[Atom] = collected
        index: dict[str, set[tuple[Term, ...]]] = {}
        for item in collected:
            index.setdefault(item.predicate, set()).add(item.args)
        self._index: dict[str, frozenset[tuple[Term, ...]]] = {
            predicate: frozenset(rows) for predicate, rows in index.items()
        }
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_relations(
        cls, relations: Mapping[str, Iterable[Sequence[_Payload] | _Payload]]
    ) -> "Database":
        """Build a database from ``{predicate: rows}``.

        Each row is a sequence of constant payloads (strings or ints);
        a bare payload is treated as a 1-tuple, which makes unary
        relations pleasant to write:

        >>> db = Database.from_relations({"node": ["a", "b"],
        ...                               "edge": [("a", "b")]})
        >>> len(db)
        3
        """
        facts: list[Atom] = []
        for predicate, rows in relations.items():
            for row in rows:
                if isinstance(row, (str, int)):
                    row = (row,)
                facts.append(
                    Atom(predicate, tuple(Constant(value) for value in row))
                )
        return cls(facts)

    # ------------------------------------------------------------------
    # Set behaviour
    # ------------------------------------------------------------------

    @property
    def facts(self) -> frozenset[Atom]:
        return self._facts

    def __contains__(self, item: Atom) -> bool:
        return item in self._facts

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._facts == other._facts

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._facts)
        return self._hash

    def __le__(self, other: "Database") -> bool:
        return self._facts <= other._facts

    def __lt__(self, other: "Database") -> bool:
        return self._facts < other._facts

    # ------------------------------------------------------------------
    # Functional updates (the ``DB + {B}`` of Definition 3)
    # ------------------------------------------------------------------

    def with_facts(self, *additions: Atom) -> "Database":
        """Return ``self + {additions}``; ``self`` is unchanged.

        Returns ``self`` itself when every addition is already present,
        which keeps memo tables small: the hypothetical inference rule
        frequently re-adds facts that are already there.
        """
        new = [item for item in additions if item not in self._facts]
        if not new:
            return self
        return Database(self._facts.union(new))

    def without_facts(self, *removals: Atom) -> "Database":
        """Return ``self - {removals}``; ``self`` is unchanged.

        Supports the hypothetical-deletion extension (``A[del: B]``).
        Returns ``self`` itself when nothing named is present.
        """
        present = [item for item in removals if item in self._facts]
        if not present:
            return self
        return Database(self._facts.difference(present))

    def union(self, other: "Database") -> "Database":
        """Set union of two databases."""
        if other._facts <= self._facts:
            return self
        return Database(self._facts | other._facts)

    def without_predicate(self, predicate: str) -> "Database":
        """Return a copy with every fact of ``predicate`` removed."""
        if predicate not in self._index:
            return self
        return Database(
            item for item in self._facts if item.predicate != predicate
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def predicates(self) -> frozenset[str]:
        """Predicates with at least one fact."""
        return frozenset(self._index)

    def count(self, predicate: str) -> int:
        """How many stored facts use ``predicate`` (0 when absent)."""
        return len(self._index.get(predicate, ()))

    def relation(self, predicate: str) -> frozenset[tuple[Term, ...]]:
        """The set of argument tuples stored under ``predicate``."""
        return self._index.get(predicate, frozenset())

    def rows(self, predicate: str) -> set[tuple[_Payload, ...]]:
        """The relation as plain Python payload tuples.

        >>> Database.from_relations({"edge": [("a", "b")]}).rows("edge")
        {('a', 'b')}
        """
        return {
            tuple(term.value for term in args)  # type: ignore[union-attr]
            for args in self.relation(predicate)
        }

    def matches(
        self, pattern: Atom, binding: Optional[Substitution] = None
    ) -> Iterator[Substitution]:
        """Enumerate extensions of ``binding`` matching ``pattern``.

        Mirrors :meth:`repro.engine.interpretation.Interpretation.matches`
        so engines can join rule premises directly against the stored
        facts.
        """
        rows = self._index.get(pattern.predicate)
        if not rows:
            return
        pattern_args = pattern.substitute(binding).args if binding else pattern.args
        for ground_args in rows:
            extended = match_args(pattern_args, ground_args, binding)
            if extended is not None:
                yield extended

    def has_match(
        self, pattern: Atom, binding: Optional[Substitution] = None
    ) -> bool:
        """True iff some stored fact matches ``pattern`` under ``binding``."""
        for _ in self.matches(pattern, binding):
            return True
        return False

    def constants(self) -> frozenset[Constant]:
        """Every constant appearing in some fact."""
        found: set[Constant] = set()
        for item in self._facts:
            found.update(item.constants())
        return frozenset(found)

    def rename(self, mapping: Mapping[_Payload, _Payload]) -> "Database":
        """Apply a renaming (permutation) of constant payloads.

        Used by the genericity checks of Section 6: a query is generic
        iff renaming the database constants renames the answer the same
        way.  Payloads absent from ``mapping`` are left unchanged.
        """
        renamed = []
        for item in self._facts:
            args = tuple(
                Constant(mapping.get(arg.value, arg.value))  # type: ignore[union-attr]
                for arg in item.args
            )
            renamed.append(Atom(item.predicate, args))
        return Database(renamed)

    def __str__(self) -> str:
        ordered = sorted(self._facts, key=lambda item: (item.predicate, str(item)))
        return "\n".join(f"{item}." for item in ordered)

    def __repr__(self) -> str:
        return f"Database({len(self._facts)} facts)"
