"""Shared differential (semi-naive) stratum closure.

Every bottom-up evaluator in this repo closes a set of rules over a
growing interpretation: the positive substrate
(:mod:`repro.engine.datalog`), the stratified-negation substrate
(:mod:`repro.engine.stratified`), and the hypothetical model engine
(:mod:`repro.engine.model`).  This module factors the closure loop out
once, with both strategies:

* ``naive`` — every round applies every rule against the full
  interpretation; the obviously-correct baseline.
* ``seminaive`` — the differential discipline of Bancilhon and
  Ramakrishnan (the paper's reference [2]), generalized to the richer
  premise forms of hypothetical Datalog.  After a full first round,
  each round only evaluates rule instantiations in which some
  *delta-sensitive* premise matches an atom derived in the previous
  round.

Which premises are delta-sensitive inside one stratum closure?

* **Positive premises** — yes: the premise's predicate may grow as the
  stratum closes.
* **Negated premises** — no: :func:`~repro.analysis.stratify.negation_strata`
  guarantees every negated predicate lives in a strictly lower stratum
  (or the EDB), and a stratum's rules only add atoms of the stratum's
  own predicates, so the extension a negation reads is *stable* for the
  whole closure.  This is exactly why stratified negation composes with
  semi-naive evaluation.
* **Hypothetical premises** ``A[add: B...]`` — split by Definition 3's
  two cases.  The *recursion* case (the additions genuinely enlarge the
  database) evaluates ``A`` against the model of the enlarged database,
  a quantity independent of the current closure's progress: stable.
  The *collapse* case (every addition already present) reduces the
  premise to plain ``A`` inside the current fixpoint: delta-sensitive,
  keyed on the goal predicate.  The caller supplies a restricted
  expander (``hypothetical_delta``) that enumerates only collapse-case
  instances whose goal atom is in the delta; when no restricted
  expander is given, rules containing hypothetical premises are
  conservatively re-evaluated in full every round.

Rules with *no* delta-sensitive premise (bodiless facts, bodies of
negations only) fire exactly once, in the full first round.

Seeded closure
--------------
``seed_delta`` skips the full first round: the interpretation is
assumed to already hold a fixpoint of these rules over some *smaller*
database, and ``seed_delta`` holds everything that differs (new EDB
facts plus lower-stratum atoms the caller derived freshly).  The first
round is then already delta-restricted — textbook incremental
re-evaluation.  ``refire_full`` lists rules to evaluate in full on that
first round regardless; the model engine passes its
hypothetical-containing rules, whose recursion-case truth may shift
between databases in ways no delta can witness.

The same seeded discipline also runs *in reverse*: the deletion
propagator (:mod:`repro.engine.dred`) uses :func:`rule_firings` with
the delta holding *deleted* atoms to enumerate the derivations a
retraction kills (DRed's over-delete pass), and then re-enters
:func:`close_layer` with ``seed_delta`` holding the re-derived
survivors plus the additions — so forward and backward maintenance
share one firing semantics by construction.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Sequence

from ..core.ast import Hypothetical, Negated, Positive, Premise, Rule
from ..core.errors import EvaluationError
from ..core.terms import Atom, Constant
from ..core.unify import Substitution, ground_instances
from ..obs.metrics import Counter, Histogram
from ..obs.trace import NULL_SPAN, NULL_TRACER, Tracer
from .body import nonlocal_variables, satisfy_body
from .budget import NULL_BUDGET
from .interpretation import Interpretation

__all__ = ["LayerInstruments", "close_layer", "delta_sources", "rule_firings"]

HypotheticalExpander = Callable[
    [Hypothetical, Substitution], Iterator[Substitution]
]
DeltaHypotheticalExpander = Callable[
    [Hypothetical, Substitution, Interpretation], Iterator[Substitution]
]
NegatedTest = Callable[[Atom, Substitution], bool]


class LayerInstruments:
    """Bound metric instruments a closure increments; all optional.

    Engines resolve their registry instruments once at construction and
    hand the bound cells in, so the closure's hot loop never touches a
    registry.
    """

    __slots__ = ("rounds", "firings", "derived", "delta_size")

    def __init__(
        self,
        rounds: Optional[Counter] = None,
        firings: Optional[Counter] = None,
        derived: Optional[Counter] = None,
        delta_size: Optional[Histogram] = None,
    ) -> None:
        self.rounds = rounds
        self.firings = firings
        self.derived = derived
        self.delta_size = delta_size


def delta_sources(item: Rule) -> tuple[Premise, ...]:
    """The delta-sensitive premises of a rule within one stratum closure.

    Positive and hypothetical premises; negations are stable (their
    predicates are closed before this stratum runs).
    """
    return tuple(
        premise for premise in item.body if not isinstance(premise, Negated)
    )


def _reject_hypothetical(
    premise: Hypothetical, binding: Substitution
) -> Iterator[Substitution]:
    raise EvaluationError(
        f"this closure was given no hypothetical expander but rule body "
        f"contains {premise}"
    )


def rule_firings(
    item: Rule,
    head_variables,
    guards,
    target: Optional[Premise],
    delta: Optional[Interpretation],
    *,
    positive,
    hypothetical,
    negated,
    domain: Sequence[Constant],
    hypothetical_delta=None,
    optimize: bool = False,
    plan=None,
    record=None,
) -> Iterator[Atom]:
    """Head instances of one rule evaluation, shared firing semantics.

    ``target`` restricts one premise (matched by identity) to ``delta``
    — the semi-naive discipline.  A :class:`~repro.core.ast.Positive`
    target matches the delta instead of the full interpretation; a
    hypothetical target goes through ``hypothetical_delta`` (the
    collapse-case-only expander).  ``target=None`` evaluates the body
    in full.  Unbound head variables are grounded over ``domain``
    (Definition 3); ``record``, when given, is called as
    ``record(rule, head, binding)`` once per firing before
    deduplication.

    Both the forward closure (:func:`close_layer`) and the deletion
    propagator (:mod:`repro.engine.dred`, where ``delta`` holds
    *deleted* atoms and ``positive`` reads the pre-deletion state) fire
    rules through this one function, so incremental addition and
    incremental deletion cannot drift apart on firing semantics.
    """
    if target is None:
        pos_cb, hyp_cb = positive, hypothetical
    elif isinstance(target, Positive):
        target_atom = target.atom

        def pos_cb(pattern, current):
            if pattern is target_atom:
                return delta.matches(pattern, current)
            return positive(pattern, current)

        hyp_cb = hypothetical
    else:

        def hyp_cb(premise, current):
            if premise is target:
                return hypothetical_delta(premise, current, delta)
            return hypothetical(premise, current)

        pos_cb = positive
    bindings = satisfy_body(
        item.body,
        positive=pos_cb,
        hypothetical=hyp_cb,
        negated=negated,
        ground_first=guards,
        domain=domain,
        optimize=optimize,
        plan=plan,
    )
    if record is None:
        for binding in bindings:
            unbound = [var for var in head_variables if var not in binding]
            if unbound:
                for grounded in ground_instances(unbound, domain, binding):
                    yield item.head.substitute(grounded)
            else:
                yield item.head.substitute(binding)
        return
    for binding in bindings:
        unbound = [var for var in head_variables if var not in binding]
        if unbound:
            for grounded in ground_instances(unbound, domain, binding):
                head = item.head.substitute(grounded)
                record(item, head, grounded)
                yield head
        else:
            head = item.head.substitute(binding)
            record(item, head, binding)
            yield head


# Per-rule closure prep (head variables, guards, delta sources), cached
# per rules-*tuple* identity: lattice-exploring engines call close_layer
# thousands of times with the same stratum tuples, and the prep is pure.
# Values keep the keyed tuple alive, so an id can never be recycled
# while its entry exists; the cache is cleared wholesale when it grows
# past a bound no real engine reaches (strata per rulebase x engines).
_INFO_CACHE_MAX = 512
_info_cache: dict = {}


def _rule_infos(rule_list, restricted: bool):
    for item in rule_list:
        sources = delta_sources(item)
        has_hypo = any(isinstance(premise, Hypothetical) for premise in sources)
        # Without a restricted expander there is no sound way to skip a
        # hypothetical premise's collapse case, so such rules run in
        # full every round.
        always_full = has_hypo and not restricted
        yield (
            item,
            set(item.head.variables()),
            nonlocal_variables(item),
            sources,
            always_full,
        )


def close_layer(
    rules: Iterable[Rule],
    interp: Interpretation,
    domain: Sequence[Constant],
    *,
    hypothetical: Optional[HypotheticalExpander] = None,
    hypothetical_delta: Optional[DeltaHypotheticalExpander] = None,
    negated: Optional[NegatedTest] = None,
    strategy: str = "seminaive",
    seed_delta: Optional[Interpretation] = None,
    refire_full: Sequence[Rule] = (),
    plan=None,
    optimize: bool = False,
    instruments: Optional[LayerInstruments] = None,
    tracer: Tracer = NULL_TRACER,
    budget=NULL_BUDGET,
    record=None,
    kernels=None,
) -> Interpretation:
    """Close one stratum's rules over ``interp``; return the new atoms.

    ``interp`` is grown in place; the returned interpretation holds
    exactly the atoms this closure added.  ``negated`` defaults to
    negation-as-failure against ``interp``; ``hypothetical`` defaults
    to rejecting hypothetical premises.  See the module docstring for
    the delta discipline and the meaning of ``seed_delta`` /
    ``refire_full``.

    ``budget`` (a :class:`~repro.engine.budget.Budget`) is charged one
    step per rule firing (site ``delta.firings``) and one atom per
    derivation (``delta.derived``), with a deadline/cancellation poll
    at every round header (``delta.round``); exhaustion raises
    :class:`~repro.core.errors.ResourceExhausted` mid-closure, leaving
    ``interp`` holding a sound partial extension.

    ``record``, when given, is a why-provenance sink
    (:meth:`repro.obs.provenance.ProvenanceRecorder.sink`) called as
    ``record(rule, head, binding)`` once per rule firing, *before* the
    head is deduplicated against ``interp`` — so alternative
    derivations of an already-known atom are still captured.  Within a
    round every firing reads the interpretation as of the round start
    (new heads land in ``pending`` until the round closes), so the
    first edge recorded for an atom only cites strictly older atoms:
    replaying first edges is well founded.  The default ``None`` keeps
    the closure on the historical code path (one ``is None`` test per
    rule evaluation).

    ``kernels``, when given, is a :class:`~repro.engine.kernels.
    KernelRun`: each rule evaluation is first offered to its compiled
    kernel (``kernels.fire`` returning ``None`` means "no kernel for
    this rule — interpret it"), with the driver still counting
    firings, charging budgets, tracing, and deduplicating heads, so
    the compiled and interpreted paths are counter-for-counter
    equivalent by construction.
    """
    if strategy not in ("naive", "seminaive"):
        raise EvaluationError(f"unknown closure strategy {strategy!r}")
    rule_list = list(rules)
    if negated is None:
        def negated(pattern: Atom, current: Substitution) -> bool:
            return not interp.has_match(pattern, current)
    if hypothetical is None:
        hypothetical = _reject_hypothetical

    def positive(pattern: Atom, current: Substitution) -> Iterator[Substitution]:
        return interp.matches(pattern, current)

    n_rounds = n_firings = n_derived = h_delta = None
    if instruments is not None:
        n_rounds = instruments.rounds
        n_firings = instruments.firings
        n_derived = instruments.derived
        h_delta = instruments.delta_size

    restricted = hypothetical_delta is not None
    if isinstance(rules, tuple):
        cache_key = (id(rules), restricted)
        cached = _info_cache.get(cache_key)
        if cached is not None and cached[0] is rules:
            infos = cached[1]
        else:
            if len(_info_cache) >= _INFO_CACHE_MAX:
                _info_cache.clear()
            infos = list(_rule_infos(rule_list, restricted))
            _info_cache[cache_key] = (rules, infos)
    else:
        infos = list(_rule_infos(rule_list, restricted))

    trace = tracer
    governed = budget.enabled
    derived_all = Interpretation()

    def fire(item, head_variables, guards, target, delta) -> Iterator[Atom]:
        """Head instances of one rule; ``target`` restricts one premise
        (matched by identity) to the delta."""
        return rule_firings(
            item,
            head_variables,
            guards,
            target,
            delta,
            positive=positive,
            hypothetical=hypothetical,
            hypothetical_delta=hypothetical_delta,
            negated=negated,
            domain=domain,
            optimize=optimize,
            plan=plan,
            record=record,
        )

    if kernels is None:
        fire_body = fire
    else:

        def fire_body(item, head_variables, guards, target, delta):
            heads = kernels.fire(item, target, delta)
            if heads is None:
                return fire(item, head_variables, guards, target, delta)
            return heads

    if strategy == "naive":
        if seed_delta is not None:
            raise EvaluationError("seeded closure requires strategy='seminaive'")
        changed = True
        round_index = 0
        while changed:
            changed = False
            round_index += 1
            if n_rounds is not None:
                n_rounds.value += 1
            if governed:
                budget.poll("delta.round")
            if kernels is not None:
                kernels.begin_round()
            ctx = (
                trace.span(
                    "round", str(round_index), args={"strategy": "naive"}
                )
                if trace.enabled
                else NULL_SPAN
            )
            with ctx:
                pending: list[Atom] = []
                for item, head_variables, guards, _sources, _full in infos:
                    rule_ctx = (
                        trace.span("rule", item.head.predicate, src=item.span)
                        if trace.enabled
                        else NULL_SPAN
                    )
                    with rule_ctx:
                        for head in fire_body(
                            item, head_variables, guards, None, None
                        ):
                            if n_firings is not None:
                                n_firings.value += 1
                            if governed:
                                budget.charge("delta.firings")
                            pending.append(head)
                for head in pending:
                    if interp.add(head):
                        if kernels is not None:
                            kernels.added(head)
                        derived_all.add(head)
                        changed = True
                        if n_derived is not None:
                            n_derived.value += 1
                        if governed:
                            budget.charge_atoms("delta.derived")
        return derived_all

    refire_ids = {id(item) for item in refire_full}
    delta = seed_delta
    first = True
    round_index = 0
    while True:
        round_index += 1
        if n_rounds is not None:
            n_rounds.value += 1
        if governed:
            budget.poll("delta.round")
        if kernels is not None:
            kernels.begin_round()
        if h_delta is not None and delta is not None:
            h_delta.observe(len(delta))
        ctx = (
            trace.span(
                "round",
                str(round_index),
                args={
                    "strategy": "seminaive",
                    "delta": len(delta) if delta is not None else len(interp),
                },
            )
            if trace.enabled
            else NULL_SPAN
        )
        with ctx:
            pending: list[Atom] = []
            for item, head_variables, guards, sources, always_full in infos:
                full = (
                    delta is None
                    or always_full
                    or (first and id(item) in refire_ids)
                )
                rule_ctx = (
                    trace.span("rule", item.head.predicate, src=item.span)
                    if trace.enabled
                    else NULL_SPAN
                )
                with rule_ctx:
                    if full:
                        for head in fire_body(
                            item, head_variables, guards, None, None
                        ):
                            if n_firings is not None:
                                n_firings.value += 1
                            if governed:
                                budget.charge("delta.firings")
                            pending.append(head)
                        continue
                    for target in sources:
                        if not delta.count(target.goal.predicate):
                            continue
                        for head in fire_body(
                            item, head_variables, guards, target, delta
                        ):
                            if n_firings is not None:
                                n_firings.value += 1
                            if governed:
                                budget.charge("delta.firings")
                            pending.append(head)
            next_delta = Interpretation()
            for head in pending:
                if interp.add(head):
                    if kernels is not None:
                        kernels.added(head)
                    next_delta.add(head)
                    derived_all.add(head)
                    if n_derived is not None:
                        n_derived.value += 1
                    if governed:
                        budget.charge_atoms("delta.derived")
        first = False
        delta = next_delta
        if not len(next_delta):
            return derived_all
