"""The paper's proof procedures for linearly stratified rulebases (Section 5.2).

For a rulebase with linear stratification ``Delta_1, Sigma_1, ...,
Delta_k, Sigma_k`` the paper defines a cascade of procedures:

* ``PROVE_Sigma_i`` — a nondeterministic, top-down, goal-set procedure
  for the hypothetical (linear) part of stratum ``i``.  Its three
  expansion steps mirror the inference rules of Definition 3: a goal in
  the database succeeds; a hypothetical goal ``B[add:C]`` becomes
  ``(B, DB + C)``; an atomic goal defined in ``Sigma_i`` is replaced by
  the premises of one of its rules.  Goals defined below ``Sigma_i``
  are passed to ``PROVE_Delta_i``.
* ``PROVE_Delta_i`` — the bottom-up perfect-model procedure of
  stratified Horn logic (the LFP/T/TEST procedures), except that its
  ``TEST0`` consults ``PROVE_Sigma_{i-1}`` as an oracle for premises
  defined below the segment — exactly how an NP machine consults a
  lower oracle.

This module realizes the cascade deterministically:

* the nondeterministic choices of ``PROVE_Sigma_i`` become exhaustive
  depth-first search with cycle cutting and memoization of proven and
  refuted goals (a refuted goal is only cached when its subtree hit no
  cycle, which keeps the search complete);
* ``PROVE_Delta_i`` materializes the perfect model of ``Delta_i`` at a
  database once and memoizes it per ``(stratum, database)``, so the
  many ``TEST0`` calls of the paper become dictionary lookups.

The prover also keeps the counters needed by experiment E9: the number
of sigma goals expanded bounds the length of the paper's "proof
sequences", which Appendix A (Theorem 3) proves polynomial in the
domain size for linear rulebases.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Union

from ..analysis.stratify import (
    LinearStratification,
    linear_stratification,
    negation_strata,
)
from ..core.ast import Hypothetical, Negated, Positive, Premise, Rule, Rulebase
from ..core.database import Database
from ..core.errors import EvaluationError, ResourceExhausted
from ..core.parser import parse_premise
from ..core.terms import Atom, Constant, Variable
from ..core.unify import Substitution, ground_instances, match
from ..analysis.planner import annotate_plan, idb_aware_sizes
from ..obs.metrics import MetricsRegistry, StatsView
from ..obs.trace import NULL_SPAN, NULL_TRACER, Tracer
from .body import (
    cost_aware_positive_order,
    join_mode,
    nonlocal_variables,
    satisfy_body,
)
from .budget import NULL_BUDGET, cancelled_error, depth_error
from .interpretation import Interpretation

__all__ = ["LinearStratifiedProver", "ProverStats"]

Query = Union[str, Atom, Premise]


class ProverStats(StatsView):
    """Deprecated: work counters of a :class:`LinearStratifiedProver`,
    now a thin view over a :class:`~repro.obs.metrics.MetricsRegistry`
    (``prove.*``); read the registry directly in new code."""

    _counter_fields = {
        "sigma_goals": "prove.sigma_goals",
        "sigma_cache_hits": "prove.sigma_cache_hits",
        "delta_models": "prove.delta_models",
        "delta_cache_hits": "prove.delta_cache_hits",
        "cycles_cut": "prove.cycles_cut",
    }
    _gauge_fields = {"max_depth": "prove.max_depth"}


class LinearStratifiedProver:
    """Goal-directed prover implementing PROVE_Sigma / PROVE_Delta.

    Parameters
    ----------
    rulebase:
        Must be linearly stratified; :class:`StratificationError` is
        raised otherwise (use :class:`~repro.engine.model.PerfectModelEngine`
        for the general language).
    stratification:
        A precomputed stratification, if the caller already has one.
    memoize:
        Disable the proven/refuted goal caches and the delta-model
        cache for the E13 ablation bench.
    budget:
        A :class:`~repro.engine.budget.Budget` charged throughout every
        query (``ask``/``answers`` also accept a per-call ``budget=``
        override).  Exhaustion raises
        :class:`~repro.core.errors.ResourceExhausted`; an interrupted
        ``answers`` enumeration attaches the tuples decided so far.
    """

    def __init__(
        self,
        rulebase: Rulebase,
        stratification: Optional[LinearStratification] = None,
        *,
        memoize: bool = True,
        optimize_joins: bool | str = True,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        budget=None,
    ) -> None:
        if rulebase.has_deletions():
            raise EvaluationError(
                "the PROVE cascade covers the paper's add-only language; "
                "evaluate hypothetical deletions with the top-down engine"
            )
        self._rulebase = rulebase
        self._strat = stratification or linear_stratification(rulebase)
        self._rule_constants = frozenset(rulebase.constants())
        self._memoize = memoize
        self._join_mode = join_mode(optimize_joins)
        # Delta segments, split into their internal negation layers.
        self._delta_layers: dict[int, list[tuple[Rule, ...]]] = {}
        for stratum in range(1, self._strat.k + 1):
            delta_rules = self._strat.delta(stratum)
            segment = Rulebase(delta_rules)
            layers: list[tuple[Rule, ...]] = []
            for component in negation_strata(segment):
                group = tuple(
                    item
                    for predicate in component
                    for item in segment.definition(predicate)
                )
                if group:
                    layers.append(group)
            self._delta_layers[stratum] = layers
        # Caches.
        self._sigma_true: set[tuple[Atom, Database]] = set()
        self._sigma_false: set[tuple[Atom, Database]] = set()
        self._delta_cache: dict[tuple[int, Database], Interpretation] = {}
        self._path: set[tuple[Atom, Database]] = set()
        self._cycle_events = 0
        self._delta_in_progress: set[tuple[int, Database]] = set()
        self._plan_cache: dict[Database, object] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._budget = budget if budget is not None else NULL_BUDGET
        self.stats = ProverStats(self.metrics)
        counter = self.metrics.counter
        self._n_sigma_goals = counter("prove.sigma_goals")
        self._n_sigma_cache_hits = counter("prove.sigma_cache_hits")
        self._n_delta_models = counter("prove.delta_models")
        self._n_delta_cache_hits = counter("prove.delta_cache_hits")
        self._n_cycles_cut = counter("prove.cycles_cut")
        self._n_plan_hits = counter("prove.plan_cache_hits")
        self._n_plan_misses = counter("prove.plan_cache_misses")
        self._n_negation = counter("prove.negation_tests")
        self._n_hypo = counter("prove.hypothesis_expansions")
        self._g_max_depth = self.metrics.gauge("prove.max_depth")

    @property
    def rulebase(self) -> Rulebase:
        return self._rulebase

    @property
    def stratification(self) -> LinearStratification:
        return self._strat

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def domain(self, db: Database) -> list[Constant]:
        """``dom(R, DB)``."""
        constants = set(self._rule_constants) | set(db.constants())
        return sorted(constants, key=lambda c: (str(type(c.value)), str(c.value)))

    def ask(self, db: Database, query: Query, *, budget=None) -> bool:
        """Decide a query (atom, premise, or premise text).

        Variables are read existentially; ``~A`` holds iff no instance
        of ``A`` is provable.  ``budget`` overrides the prover-level
        budget for this call.
        """
        premise = self._coerce(query)
        domain = self.domain(db)
        with self._governed(budget):
            if isinstance(premise, Negated):
                return not self._exists(Positive(premise.atom), db, domain)
            return self._exists(premise, db, domain)

    def answers(
        self, db: Database, pattern: Union[str, Atom], *, budget=None
    ) -> set[tuple]:
        """All payload tuples making the pattern provable.

        On budget exhaustion the raised
        :class:`~repro.core.errors.ResourceExhausted` carries the
        tuples fully decided before the trip (a subset of the
        unbudgeted answer set)."""
        if isinstance(pattern, str):
            premise = parse_premise(pattern)
            if not isinstance(premise, Positive):
                raise EvaluationError("answers() needs a plain atom pattern")
            pattern = premise.atom
        domain = self.domain(db)
        variables = list(dict.fromkeys(pattern.variables()))
        results: set[tuple] = set()
        with self._governed(budget, partial_answers=results):
            for binding in ground_instances(variables, domain):
                if self._decide(Positive(pattern.substitute(binding)), db):
                    results.add(tuple(binding[var].value for var in variables))  # type: ignore[union-attr]
        return results

    def clear_caches(self) -> None:
        self._sigma_true.clear()
        self._sigma_false.clear()
        self._delta_cache.clear()
        self._plan_cache.clear()

    @contextmanager
    def _governed(self, budget, partial_answers: Optional[set] = None):
        """Activate a budget for one query; keep search state sound.

        Converts ``KeyboardInterrupt`` / ``RecursionError`` into
        :class:`ResourceExhausted`, attaches ``partial_answers`` when
        given, and — crucial for reuse — clears the in-flight goal path
        and Delta progress markers on the way out, so an interrupted
        query can never poison cycle detection for the next one.  The
        proven/refuted caches need no scrubbing: entries are only added
        for fully decided goals, and exhaustion aborts before that.
        """
        previous = self._budget
        active = budget if budget is not None else previous
        active.begin()
        self._budget = active
        try:
            yield active
        except ResourceExhausted as error:
            self._note_exhaustion(error, partial_answers)
            raise
        except KeyboardInterrupt:
            error = cancelled_error(active)
            self._note_exhaustion(error, partial_answers)
            raise error from None
        except RecursionError:
            error = depth_error(active)
            self._note_exhaustion(error, partial_answers)
            raise error from None
        finally:
            self._budget = previous
            self._path.clear()
            self._delta_in_progress.clear()

    def _note_exhaustion(
        self, error: ResourceExhausted, partial_answers: Optional[set]
    ) -> None:
        if partial_answers is not None:
            error.partial.merge_missing(answers=partial_answers)
        self.metrics.counter("budget.exhausted").value += 1
        if self._tracer.enabled:
            self._tracer.event(
                "budget",
                error.reason,
                args={"site": error.site, "steps": error.partial.steps},
            )

    # ------------------------------------------------------------------
    # Dispatch (the PROVE cascade)
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(query: Query) -> Premise:
        if isinstance(query, str):
            return parse_premise(query)
        if isinstance(query, Atom):
            return Positive(query)
        return query

    def _cost_plan(self, db: Database, domain: Sequence[Constant]):
        """Cost-aware positive-premise planner for the current database.

        IDB predicates are penalized with a domain**arity size so the
        planner prefers stored relations when selectivity ties.  Plans
        are cached per database: the prover revisits the same enlarged
        databases many times during a search.
        """
        if self._join_mode != "cost":
            return None
        plan = self._plan_cache.get(db)
        if plan is not None:
            self._n_plan_hits.value += 1
            return plan
        self._n_plan_misses.value += 1
        sizes = idb_aware_sizes(self._rulebase, db.count, len(domain))
        domain_size = len(domain)
        trace = self._tracer

        def plan(positives, bound):
            order = cost_aware_positive_order(
                positives, bound, sizes, domain_size
            )
            if trace.enabled and order:
                trace.event(
                    "plan",
                    " ".join(p.atom.predicate for p in order),
                    args={
                        "order": annotate_plan(order, bound, sizes, domain_size)
                    },
                )
            return order

        self._plan_cache[db] = plan
        return plan

    def _exists(self, premise: Premise, db: Database, domain) -> bool:
        budget = self._budget
        unbound = list(dict.fromkeys(premise.variables()))
        for binding in ground_instances(unbound, domain):
            if budget.enabled:
                budget.poll("prove.exists")
            if self._decide(premise.substitute(binding), db):
                return True
        return False

    def _decide(self, premise: Premise, db: Database) -> bool:
        """Decide a ground premise — the full PROVE cascade.

        Dispatches on where the goal predicate is defined, which is
        exactly where the paper's cascade would eventually route it.
        """
        if isinstance(premise, Hypothetical):
            enlarged = db.with_facts(*premise.additions)
            return self._decide(Positive(premise.atom), enlarged)
        if isinstance(premise, Negated):
            return not self._decide(Positive(premise.atom), db)
        goal = premise.atom
        if goal in db:  # line 1 of PROVE_Sigma / TEST0
            return True
        segment = self._strat.segment_of(goal.predicate)
        if segment == 0:  # EDB predicate, not a fact
            return False
        stratum = (segment + 1) // 2
        if segment % 2 == 0:
            return self._sigma_search(stratum, goal, db)
        return goal in self._delta_model(stratum, db)

    # ------------------------------------------------------------------
    # PROVE_Sigma_i: top-down search over linear hypothetical rules
    # ------------------------------------------------------------------

    def _sigma_search(self, stratum: int, goal: Atom, db: Database) -> bool:
        """Exhaustive realization of the nondeterministic goal search."""
        key = (goal, db)
        if key in self._sigma_true:
            self._n_sigma_cache_hits.value += 1
            return True
        if key in self._sigma_false:
            self._n_sigma_cache_hits.value += 1
            return False
        if key in self._path:
            # A goal may not feed its own proof: cut this branch.  The
            # result is not cached — another branch may still prove it.
            self._cycle_events += 1
            self._n_cycles_cut.value += 1
            return False

        self._n_sigma_goals.value += 1
        budget = self._budget
        if budget.enabled:
            budget.charge("prove.sigma_goals")
        self._path.add(key)
        self._g_max_depth.set_max(len(self._path))
        if budget.enabled:
            budget.check_depth("prove.sigma_goals", len(self._path))
        cycles_before = self._cycle_events
        domain = self.domain(db)
        proven = False
        trace = self._tracer
        goal_ctx = (
            trace.span(
                "goal", str(goal), args={"stratum": stratum, "db": len(db)}
            )
            if trace.enabled
            else NULL_SPAN
        )
        with goal_ctx:
            for item in self._rulebase.definition(goal.predicate):
                binding = match(item.head, goal)
                if binding is None:
                    continue
                rule_ctx = (
                    trace.span("rule", item.head.predicate, src=item.span)
                    if trace.enabled
                    else NULL_SPAN
                )
                with rule_ctx:
                    for _ in self._sigma_body(stratum, item, binding, db, domain):
                        proven = True
                        break
                if proven:
                    break
        self._path.discard(key)
        if proven:
            if self._memoize:
                self._sigma_true.add(key)
            return True
        if self._memoize and self._cycle_events == cycles_before:
            # Exhaustive failure with no cycle cut anywhere below:
            # safe to remember as refuted.
            self._sigma_false.add(key)
        return False

    def _sigma_body(
        self,
        stratum: int,
        item: Rule,
        binding: Substitution,
        db: Database,
        domain: Sequence[Constant],
    ) -> Iterator[Substitution]:
        """Bindings satisfying a Sigma rule body (goal-set expansion)."""
        return satisfy_body(
            item.body,
            binding=binding,
            ground_first=nonlocal_variables(item),
            domain=domain,
            optimize=self._join_mode == "greedy",
            plan=self._cost_plan(db, domain),
            positive=lambda pattern, current: self._match_atom(
                pattern, current, db, domain
            ),
            hypothetical=lambda premise, current: self._expand_hypothetical(
                premise, current, db, domain
            ),
            negated=lambda pattern, current: self._test_negated(
                pattern, current, db, domain
            ),
        )

    # ------------------------------------------------------------------
    # Premise evaluation shared by the Sigma search and Delta models
    # ------------------------------------------------------------------

    def _match_atom(
        self,
        pattern: Atom,
        binding: Substitution,
        db: Database,
        domain: Sequence[Constant],
    ) -> Iterator[Substitution]:
        """Enumerate bindings making a positive premise provable.

        Facts in the database come first (line 1 / TEST0's first case),
        then derivations: predicates defined in a Delta segment are
        matched against that segment's materialized perfect model;
        predicates defined in a Sigma segment are grounded over the
        domain and searched goal-directedly.
        """
        seen: set[tuple] = set()
        pattern_variables = list(dict.fromkeys(pattern.variables()))

        def emit(extended: Substitution) -> Iterator[Substitution]:
            signature = tuple(extended.get(var) for var in pattern_variables)
            if signature not in seen:
                seen.add(signature)
                yield extended

        for extended in db.matches(pattern, binding):
            yield from emit(extended)

        segment = self._strat.segment_of(pattern.predicate)
        if segment == 0:
            return
        stratum = (segment + 1) // 2
        if segment % 2 == 1:
            model = self._delta_model(stratum, db)
            for extended in model.matches(pattern, binding):
                yield from emit(extended)
        else:
            unbound = [var for var in pattern_variables if var not in binding]
            for grounding in ground_instances(unbound, domain, binding):
                goal = pattern.substitute(grounding)
                if self._sigma_search(stratum, goal, db):
                    yield from emit(grounding)

    def _expand_hypothetical(
        self,
        premise: Hypothetical,
        binding: Substitution,
        db: Database,
        domain: Sequence[Constant],
    ) -> Iterator[Substitution]:
        """Ground the premise and decide it at the enlarged database."""
        trace = self._tracer
        unbound = [
            var for var in dict.fromkeys(premise.variables()) if var not in binding
        ]
        for grounding in ground_instances(unbound, domain, binding):
            grounded = premise.substitute(grounding)
            self._n_hypo.value += 1
            ctx = (
                trace.span("hypothesis", str(grounded), src=premise.span)
                if trace.enabled
                else NULL_SPAN
            )
            with ctx:
                decided = self._decide(grounded, db)
            if decided:
                yield grounding

    def _test_negated(
        self,
        pattern: Atom,
        binding: Substitution,
        db: Database,
        domain: Sequence[Constant],
    ) -> bool:
        """Negation as failure with local variables inside the negation."""
        self._n_negation.value += 1
        if db.has_match(pattern, binding):
            return False
        segment = self._strat.segment_of(pattern.predicate)
        if segment == 0:
            return True
        stratum = (segment + 1) // 2
        if segment % 2 == 1:
            return not self._delta_model(stratum, db).has_match(pattern, binding)
        unbound = [
            var
            for var in dict.fromkeys(pattern.variables())
            if var not in binding
        ]
        for grounding in ground_instances(unbound, domain, binding):
            if self._sigma_search(stratum, pattern.substitute(grounding), db):
                return False
        return True

    # ------------------------------------------------------------------
    # PROVE_Delta_i: materialized perfect model per (stratum, database)
    # ------------------------------------------------------------------

    def _delta_model(self, stratum: int, db: Database) -> Interpretation:
        """Perfect model of Delta_stratum at ``db`` (plus the db facts).

        Premises over predicates defined below the segment are decided
        through the cascade — the paper's TEST0 oracle calls.
        """
        key = (stratum, db)
        cached = self._delta_cache.get(key)
        if cached is not None:
            self._n_delta_cache_hits.value += 1
            return cached
        if key in self._delta_in_progress:  # pragma: no cover - guarded by H-strat
            raise EvaluationError(
                f"recursive Delta_{stratum} model computation; the "
                f"stratification is inconsistent"
            )
        self._delta_in_progress.add(key)
        self._n_delta_models.value += 1
        if self._budget.enabled:
            self._budget.charge("prove.delta_models")
        domain = self.domain(db)
        segment = 2 * stratum - 1
        own = self._strat.predicates_in_segment(segment)
        interp = Interpretation(db)

        def positive(pattern: Atom, current: Substitution) -> Iterator[Substitution]:
            if pattern.predicate in own:
                yield from interp.matches(pattern, current)
            else:
                yield from self._match_atom(pattern, current, db, domain)

        def negated(pattern: Atom, current: Substitution) -> bool:
            if pattern.predicate in own:
                return not interp.has_match(pattern, current)
            return self._test_negated(pattern, current, db, domain)

        def hypothetical(
            premise: Hypothetical, current: Substitution
        ) -> Iterator[Substitution]:
            return self._expand_hypothetical(premise, current, db, domain)

        trace = self._tracer
        delta_ctx = (
            trace.span(
                "delta", f"Delta_{stratum}", args={"db": len(db)}
            )
            if trace.enabled
            else NULL_SPAN
        )
        with delta_ctx:
            self._close_delta_layers(
                stratum, interp, db, domain, positive, negated, hypothetical
            )
        self._delta_in_progress.discard(key)
        if self._memoize:
            self._delta_cache[key] = interp
        return interp

    def _close_delta_layers(
        self, stratum, interp, db, domain, positive, negated, hypothetical
    ) -> None:
        """Fixpoint of each negation layer of ``Delta_stratum``."""
        trace = self._tracer
        for layer_index, group in enumerate(self._delta_layers.get(stratum, [])):
            layer_ctx = (
                trace.span(
                    "stratum", str(layer_index), args={"rules": len(group)}
                )
                if trace.enabled
                else NULL_SPAN
            )
            with layer_ctx:
                self._close_delta_group(
                    group, interp, db, domain, positive, negated, hypothetical
                )

    def _close_delta_group(
        self, group, interp, db, domain, positive, negated, hypothetical
    ) -> None:
        """Fixpoint of one negation layer's rules (plus TEST0 oracles)."""
        trace = self._tracer
        budget = self._budget
        governed = budget.enabled
        changed = True
        while changed:
            changed = False
            pending: list[Atom] = []
            for item in group:
                rule_ctx = (
                    trace.span("rule", item.head.predicate, src=item.span)
                    if trace.enabled
                    else NULL_SPAN
                )
                with rule_ctx:
                    head_variables = set(item.head.variables())
                    for current in satisfy_body(
                        item.body,
                        positive=positive,
                        hypothetical=hypothetical,
                        negated=negated,
                        ground_first=nonlocal_variables(item),
                        domain=domain,
                        optimize=self._join_mode == "greedy",
                        plan=self._cost_plan(db, domain),
                    ):
                        if governed:
                            budget.charge("prove.delta_firings")
                        unbound = [
                            var for var in head_variables if var not in current
                        ]
                        if unbound:
                            for grounded in ground_instances(
                                unbound, domain, current
                            ):
                                pending.append(item.head.substitute(grounded))
                        else:
                            pending.append(item.head.substitute(current))
            for head in pending:
                if interp.add(head):
                    if governed:
                        budget.charge_atoms("prove.delta_atoms")
                    changed = True
