"""Resource governance for query evaluation.

Theorem 1 makes exhaustive search the *point* of this engine — even
small rulebases (the E5 Hamiltonian encoding, the E8 oracle cascades)
legitimately explode — so a long-running service must bound every
query rather than hope it terminates.  A :class:`Budget` bundles the
enforceable limits:

* ``timeout`` — wall-clock deadline in seconds, anchored when the
  first guarded entry point begins work;
* ``max_steps`` — inference-step limit (goal expansions, rule
  firings, model computations — the quantities the ``*.goals`` /
  ``*.rule_firings`` metrics already count);
* ``max_atoms`` — cap on *derived* atoms, a memory proxy that is
  strategy-invariant (naive and semi-naive closures derive identical
  atom sets, so an atom budget exhausts both or neither —
  ``tests/test_budget.py`` pins this);
* ``max_depth`` — proof-depth guard for the top-down provers, tripping
  long before Python's recursion limit would;
* ``token`` — a :class:`CancellationToken` for cooperative
  cancellation from the outside (the REPL's Ctrl-C path).

Exhaustion raises :class:`~repro.core.errors.ResourceExhausted`
carrying a :class:`~repro.core.errors.PartialResult`; the evaluators'
entry points annotate it with the answers/atoms established so far, so
callers degrade gracefully instead of losing the work.

The disabled path follows the tracer discipline
(:mod:`repro.obs.trace`): engines hold :data:`NULL_BUDGET`, whose
class-level ``enabled = False`` turns every guard into one attribute
test —

    budget = self._budget
    if budget.enabled:
        budget.charge("topdown.goals")

— so unbudgeted evaluation pays nothing measurable (the E13/E18
perf-guard counters are unchanged; see docs/ROBUSTNESS.md).

Deadline and cancellation are *polled*: ``charge`` consults the clock
every ``check_interval`` steps (default 32), so the raise lands within
a few dozen cheap operations of the deadline — the E19 bench records
the measured exhaustion latency.  Fault injection
(:mod:`repro.testing.failpoints`) hooks the same guards: every charge
first consults the failpoint registry while any failpoint is armed.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..core.errors import PartialResult, ResourceExhausted
from ..testing import failpoints as _failpoints

__all__ = [
    "Budget",
    "CancellationToken",
    "NullBudget",
    "NULL_BUDGET",
    "cancelled_error",
    "depth_error",
]


class CancellationToken:
    """Cooperative cancellation flag, checked at budget poll points.

    Share one token between the code running a query and the code that
    may want to stop it (a signal handler, another thread, a watchdog);
    ``cancel()`` makes the next poll raise ``ResourceExhausted`` with
    ``reason="cancelled"`` and partial results attached.
    """

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    def reset(self) -> None:
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:
        return f"CancellationToken(cancelled={self._cancelled})"


class Budget:
    """Enforceable resource limits for one evaluation.

    A budget is cumulative across everything it is threaded through:
    nested model computations, delta closures, and oracle consultations
    all charge the same cells.  Reuse a budget across queries to bound
    a whole session, or call :meth:`fresh` for a per-query copy.

    All limits are optional; a limitless ``Budget()`` still supports
    cancellation and fault injection (its guards run, they just never
    trip on their own).
    """

    enabled = True

    __slots__ = (
        "timeout",
        "max_steps",
        "max_atoms",
        "max_depth",
        "token",
        "steps",
        "atoms",
        "_deadline",
        "_interval",
        "_countdown",
        "_clock",
        "_started_at",
    )

    def __init__(
        self,
        *,
        timeout: Optional[float] = None,
        max_steps: Optional[int] = None,
        max_atoms: Optional[int] = None,
        max_depth: Optional[int] = None,
        token: Optional[CancellationToken] = None,
        check_interval: int = 32,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        for name, value in (
            ("timeout", timeout),
            ("max_steps", max_steps),
            ("max_atoms", max_atoms),
            ("max_depth", max_depth),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if check_interval <= 0:
            raise ValueError("check_interval must be positive")
        self.timeout = timeout
        self.max_steps = max_steps
        self.max_atoms = max_atoms
        self.max_depth = max_depth
        self.token = token
        self.steps = 0
        self.atoms = 0
        self._deadline: Optional[float] = None
        self._interval = check_interval
        self._countdown = check_interval
        self._clock = clock
        self._started_at: Optional[float] = None

    # -- lifecycle -------------------------------------------------------

    def begin(self) -> "Budget":
        """Anchor the deadline; idempotent (nested entry points may
        call it again without restarting the clock)."""
        if self._started_at is None:
            now = self._clock()
            self._started_at = now
            if self.timeout is not None:
                self._deadline = now + self.timeout
        return self

    def fresh(self) -> "Budget":
        """A new, unanchored budget with the same limits and token."""
        return Budget(
            timeout=self.timeout,
            max_steps=self.max_steps,
            max_atoms=self.max_atoms,
            max_depth=self.max_depth,
            token=self.token,
            check_interval=self._interval,
            clock=self._clock,
        )

    def elapsed(self) -> float:
        """Seconds since :meth:`begin` (0.0 before any work started)."""
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    # -- the guards ------------------------------------------------------

    def charge(self, site: str, amount: int = 1) -> None:
        """One unit of inference work at a guarded site.

        Raises :class:`ResourceExhausted` when the step limit is hit;
        every ``check_interval`` charges it also polls the deadline,
        the cancellation token, and any armed failpoint immediately.
        """
        if _failpoints.enabled:
            _failpoints.trigger(site)
        self.steps += amount
        if self.max_steps is not None and self.steps > self.max_steps:
            self._exhaust("steps", site)
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self._interval
            self._poll_now(site)

    def charge_atoms(self, site: str, amount: int = 1) -> None:
        """One derived atom added to some interpretation."""
        if _failpoints.enabled:
            _failpoints.trigger(site)
        self.atoms += amount
        if self.max_atoms is not None and self.atoms > self.max_atoms:
            self._exhaust("atoms", site)

    def check_depth(self, site: str, depth: int) -> None:
        """Guard the top-down provers' search depth."""
        if self.max_depth is not None and depth > self.max_depth:
            self._exhaust("depth", site)

    def poll(self, site: str) -> None:
        """Deadline/cancellation/failpoint check with no step charge
        (loop headers whose iterations do unbounded work)."""
        if _failpoints.enabled:
            _failpoints.trigger(site)
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self._interval
            self._poll_now(site)

    def _poll_now(self, site: str) -> None:
        if self.token is not None and self.token.cancelled:
            self._exhaust("cancelled", site)
        if self._deadline is not None and self._clock() > self._deadline:
            self._exhaust("deadline", site)

    # -- exhaustion ------------------------------------------------------

    def _exhaust(self, reason: str, site: str) -> None:
        limit = {
            "deadline": f"timeout={self.timeout}s",
            "steps": f"max_steps={self.max_steps}",
            "atoms": f"max_atoms={self.max_atoms}",
            "depth": f"max_depth={self.max_depth}",
            "cancelled": "cancellation requested",
        }[reason]
        raise ResourceExhausted(
            f"evaluation exhausted its budget at {site} ({limit}; "
            f"steps={self.steps}, derived atoms={self.atoms}, "
            f"elapsed={self.elapsed():.3f}s)",
            reason=reason,
            site=site,
            partial=self.partial(),
        )

    def partial(self) -> PartialResult:
        """A fresh :class:`PartialResult` seeded with this budget's
        usage numbers (entry points merge answers/atoms in)."""
        return PartialResult(
            steps=self.steps, atoms_derived=self.atoms, elapsed=self.elapsed()
        )

    def describe(self) -> str:
        """One-line limits summary (the REPL's ``:limits`` display)."""
        parts = []
        if self.timeout is not None:
            parts.append(f"timeout={self.timeout}s")
        if self.max_steps is not None:
            parts.append(f"steps={self.max_steps}")
        if self.max_atoms is not None:
            parts.append(f"atoms={self.max_atoms}")
        if self.max_depth is not None:
            parts.append(f"depth={self.max_depth}")
        return ", ".join(parts) if parts else "(no limits)"

    def __repr__(self) -> str:
        return f"Budget({self.describe()}, steps={self.steps}, atoms={self.atoms})"


class NullBudget:
    """The disabled budget: every guard is a no-op.

    ``enabled`` is ``False`` so hot paths skip the guard calls
    entirely; the methods exist so cold paths may call through
    unconditionally.
    """

    enabled = False

    __slots__ = ()

    def begin(self) -> "NullBudget":
        return self

    def fresh(self) -> "NullBudget":
        return self

    def elapsed(self) -> float:
        return 0.0

    def charge(self, site: str, amount: int = 1) -> None:
        return None

    def charge_atoms(self, site: str, amount: int = 1) -> None:
        return None

    def check_depth(self, site: str, depth: int) -> None:
        return None

    def poll(self, site: str) -> None:
        return None

    def partial(self) -> PartialResult:
        return PartialResult()

    def describe(self) -> str:
        return "(no limits)"


NULL_BUDGET = NullBudget()


def cancelled_error(budget) -> ResourceExhausted:
    """The :class:`ResourceExhausted` for a caught ``KeyboardInterrupt``
    (the Ctrl-C cancellation path shared by all evaluators)."""
    return ResourceExhausted(
        "evaluation cancelled (interrupt received); partial results attached",
        reason="cancelled",
        partial=budget.partial(),
    )


def depth_error(budget) -> ResourceExhausted:
    """The :class:`ResourceExhausted` for a caught ``RecursionError``:
    the search out-recursed the Python stack before any configured
    limit tripped.  Converted at every evaluator entry point so a raw
    ``RecursionError`` can never escape the engines."""
    return ResourceExhausted(
        "evaluation exceeded the interpreter recursion limit; set "
        "max_depth/max_steps for a deterministic bound",
        reason="depth",
        partial=budget.partial(),
    )
