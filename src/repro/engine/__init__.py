"""Evaluation engines.

* :mod:`repro.engine.datalog` — positive-Datalog least fixpoints
  (naive and semi-naive), the Bancilhon-Ramakrishnan substrate.
* :mod:`repro.engine.stratified` — stratified Datalog¬ perfect models,
  the Apt-Blair-Walker substrate.
* :mod:`repro.engine.model` — reference evaluator for the full
  hypothetical language (memoized per database).
* :mod:`repro.engine.prove` — the paper's PROVE_Sigma / PROVE_Delta
  cascade for linearly stratified rulebases.
* :mod:`repro.engine.topdown` — tabled goal-directed evaluation for the
  full (PSPACE) language.
* :mod:`repro.engine.proofs` — proof objects: explanations with an
  independent Definition 3 checker.
* :mod:`repro.engine.query` — engine-agnostic session API.

All engines accept ``metrics=`` (a
:class:`~repro.obs.metrics.MetricsRegistry`) and ``tracer=`` (a
:class:`~repro.obs.trace.Tracer`) keyword arguments; see
:mod:`repro.obs` and ``docs/OBSERVABILITY.md``.  They also accept
``budget=`` (a :class:`~repro.engine.budget.Budget`) bounding
evaluation by wall-clock deadline, inference steps, derived atoms,
proof depth, and cooperative cancellation; see
:mod:`repro.engine.budget` and ``docs/ROBUSTNESS.md``.
"""

from .budget import Budget, CancellationToken, NULL_BUDGET
from .datalog import FixpointStats, naive_least_fixpoint, seminaive_least_fixpoint
from .interpretation import Interpretation
from .model import EngineStats, PerfectModelEngine
from .proofs import Explainer, PremiseStep, Proof, format_proof, verify_proof
from .prove import LinearStratifiedProver, ProverStats
from .query import Session, answers, ask
from .stratified import perfect_model, stratified_holds
from .topdown import TopDownEngine, TopDownStats

__all__ = [
    "Budget",
    "CancellationToken",
    "NULL_BUDGET",
    "Interpretation",
    "naive_least_fixpoint",
    "seminaive_least_fixpoint",
    "FixpointStats",
    "perfect_model",
    "stratified_holds",
    "PerfectModelEngine",
    "EngineStats",
    "LinearStratifiedProver",
    "ProverStats",
    "TopDownEngine",
    "TopDownStats",
    "Explainer",
    "Proof",
    "PremiseStep",
    "verify_proof",
    "format_proof",
    "Session",
    "ask",
    "answers",
]
