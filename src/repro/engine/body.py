"""Shared rule-body satisfaction machinery.

Evaluating a rule body means enumerating the substitutions under which
every premise holds.  The engines differ only in *how* each premise
kind is decided, so this module factors the traversal out:

* positive premises are matched against an :class:`Interpretation`
  (producing bindings);
* hypothetical premises are delegated to a callback that knows how to
  evaluate them (the model engine recurses into an enlarged database,
  the PROVE engine calls the lower-level prover);
* negated premises are delegated to a test callback and evaluated
  *last*, after positives and hypotheticals have bound everything they
  can.

A variable is *local to a negation* — and hence read as quantified
inside it, the paper's usage (DESIGN.md section 2) — only when it
occurs in exactly one negated premise and nowhere else in the rule.
Variables that also occur in the head (``ok(N, C) :- ~clash(N, C)``),
in another premise, or in a second negation are ordinary rule
variables: Definition 3 grounds them over the domain *before* the
negation is tested.  :func:`nonlocal_variables` computes that set per
rule, and :func:`satisfy_body` grounds whatever of it is still unbound
right before the first negated premise.

Premises are reordered positives -> hypotheticals -> negations; within
a category the textual order is kept by default, so evaluation is
deterministic.  The *positive* premises may additionally be reordered
by a join planner: either the legacy greedy most-bound-first policy
(``optimize=True`` with no ``plan``) or an engine-supplied ``plan``
callback, typically the selectivity-based
:func:`~repro.analysis.planner.cost_aware_positive_order` closed over
live relation sizes.  The ordering policies themselves live in
:mod:`repro.analysis.planner` (they are shared with the static
binding-mode analyzer); this module re-exports them so existing
imports keep working.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Sequence

from ..analysis.planner import (
    cost_aware_positive_order,
    estimate_matches,
    greedy_positive_order,
    join_mode,
    nonlocal_variables,
    ordered_premises,
)
from ..core.ast import Hypothetical, Negated, Positive, Premise, Rule
from ..core.terms import Atom, Constant, Variable
from ..core.unify import Substitution, ground_instances
from .interpretation import Interpretation

__all__ = [
    "satisfy_body",
    "ordered_premises",
    "nonlocal_variables",
    "greedy_positive_order",
    "cost_aware_positive_order",
    "estimate_matches",
    "join_mode",
]

HypotheticalExpander = Callable[[Hypothetical, Substitution], Iterator[Substitution]]
NegatedTest = Callable[[Atom, Substitution], bool]
PositiveExpander = Callable[[Atom, Substitution], Iterator[Substitution]]
PositivePlanner = Callable[[Sequence[Positive], Iterable[Variable]], Sequence[Positive]]


def satisfy_body(
    body: Sequence[Premise],
    *,
    positive: PositiveExpander,
    hypothetical: HypotheticalExpander,
    negated: NegatedTest,
    binding: Optional[Substitution] = None,
    ground_first: Sequence[Variable] = (),
    domain: Optional[Iterable[Constant]] = None,
    optimize: bool = False,
    plan: Optional[PositivePlanner] = None,
) -> Iterator[Substitution]:
    """Enumerate substitutions under which every premise holds.

    ``positive(atom, binding)`` yields extended bindings matching the
    atom; ``hypothetical(premise, binding)`` yields extended bindings
    under which the premise holds (grounding its free variables);
    ``negated(atom, binding)`` decides a negated premise under the
    final binding.  Yielded substitutions are independent dicts.

    ``ground_first`` (typically :func:`nonlocal_variables` of the rule)
    lists variables that must be ground before any negated premise is
    tested; those still unbound once positives and hypotheticals are
    done are enumerated over ``domain``.

    ``plan`` reorders the positive premises given the variables bound
    on entry (the engines pass a cost-aware planner closed over live
    relation statistics); ``optimize`` without a ``plan`` falls back to
    :func:`greedy_positive_order`.
    """
    ordered = ordered_premises(body)
    if plan is not None or optimize:
        positives = [item for item in ordered if isinstance(item, Positive)]
        rest = [item for item in ordered if not isinstance(item, Positive)]
        seed = binding.keys() if binding else ()
        if plan is not None:
            ordered = list(plan(positives, seed)) + rest
        else:
            ordered = list(greedy_positive_order(positives, seed)) + rest
    first_negation = next(
        (index for index, premise in enumerate(ordered)
         if isinstance(premise, Negated)),
        len(ordered),
    )
    domain_list = list(domain) if domain is not None else []

    def extend(position: int, current: Substitution) -> Iterator[Substitution]:
        if position == first_negation and ground_first:
            missing = [var for var in ground_first if var not in current]
            if missing:
                for grounded in ground_instances(missing, domain_list, current):
                    yield from continue_from(position, grounded)
                return
        yield from continue_from(position, current)

    def continue_from(
        position: int, current: Substitution
    ) -> Iterator[Substitution]:
        if position == len(ordered):
            yield current
            return
        premise = ordered[position]
        if isinstance(premise, Positive):
            for extended in positive(premise.atom, current):
                yield from extend(position + 1, extended)
        elif isinstance(premise, Hypothetical):
            for extended in hypothetical(premise, current):
                yield from extend(position + 1, extended)
        else:
            if negated(premise.atom, current):
                yield from extend(position + 1, current)

    yield from extend(0, dict(binding) if binding else {})
