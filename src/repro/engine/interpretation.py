"""Mutable interpretations (sets of ground atoms) with pattern matching.

All engines manipulate growing sets of derived facts; this class wraps
such a set with a per-predicate index and the matching operation that
drives rule-body joins: given a pattern atom and a partial binding,
enumerate the bindings that extend it to match some stored fact.

Two things make this the engines' hot path and shape the design:

* Interpretations are constantly built *over a database* (one per
  lattice node in hypothetical evaluation).  Construction from a
  :class:`~repro.core.database.Database` adopts the database's
  per-predicate index as an immutable base layer in O(#predicates);
  derived atoms go into a mutable overlay on top.
* ``matches`` carries a ground fast path (set membership instead of a
  scan) and lazy per-(predicate, argument-position) hash maps used to
  narrow candidate rows when the pattern has bound positions.  The
  maps are maintained incrementally on :meth:`add`.

The optional ``probes`` attribute is a bound
:class:`~repro.obs.metrics.Counter` (``interp.index_probes``)
incremented whenever a fast path answers a match query.
"""

from __future__ import annotations

from itertools import chain
from typing import Iterable, Iterator, Optional, Union

from ..core.database import Database
from ..core.terms import Atom, Term, Variable
from ..core.unify import Substitution, match_args

__all__ = ["Interpretation"]

# Below this relation size a linear scan beats building position maps.
_INDEX_MIN_ROWS = 8

_Rows = frozenset


class Interpretation:
    """A mutable set of ground atoms, indexed by predicate."""

    __slots__ = ("_base", "_added", "_size", "_maps", "probes")

    def __init__(self, facts: Union[Database, Iterable[Atom]] = ()):
        self._maps: dict[str, list[dict[Term, list[tuple[Term, ...]]]]] = {}
        self.probes = None
        if isinstance(facts, Database):
            self._base: dict[str, frozenset[tuple[Term, ...]]] = dict(
                facts.relations()
            )
            self._added: dict[str, set[tuple[Term, ...]]] = {}
            self._size = len(facts)
        else:
            self._base = {}
            self._added = {}
            self._size = 0
            for item in facts:
                self.add(item)

    def add(self, item: Atom) -> bool:
        """Insert a ground atom; return True iff it was new."""
        predicate, args = item.predicate, item.args
        base = self._base.get(predicate)
        if base is not None and args in base:
            return False
        rows = self._added.get(predicate)
        if rows is None:
            rows = self._added[predicate] = set()
        elif args in rows:
            return False
        rows.add(args)
        self._size += 1
        maps = self._maps.get(predicate)
        if maps is not None:
            if len(args) > len(maps):
                maps.extend({} for _ in range(len(args) - len(maps)))
            for position, value in enumerate(args):
                maps[position].setdefault(value, []).append(args)
        return True

    def add_rows(self, predicate: str, rows: Iterable[tuple[Term, ...]]) -> int:
        """Bulk-insert argument tuples for one predicate; return how
        many were new.  Equivalent to ``add(Atom(predicate, args))``
        per row without constructing the atoms — the lattice engine's
        child-seeding path, where thousands of parent rows are copied
        per child model."""
        base = self._base.get(predicate)
        mine = self._added.get(predicate)
        if mine is None:
            mine = self._added[predicate] = set()
        maps = self._maps.get(predicate)
        added = 0
        for args in rows:
            if base is not None and args in base:
                continue
            if args in mine:
                continue
            mine.add(args)
            added += 1
            if maps is not None:
                if len(args) > len(maps):
                    maps.extend({} for _ in range(len(args) - len(maps)))
                for position, value in enumerate(args):
                    maps[position].setdefault(value, []).append(args)
        self._size += added
        return added

    def update(self, items: Iterable[Atom]) -> int:
        """Insert many atoms; return how many were new."""
        added = 0
        for item in items:
            if self.add(item):
                added += 1
        return added

    def __contains__(self, item: Atom) -> bool:
        base = self._base.get(item.predicate)
        if base is not None and item.args in base:
            return True
        rows = self._added.get(item.predicate)
        return rows is not None and item.args in rows

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Atom]:
        for predicate, rows in self._base.items():
            for args in rows:
                yield Atom(predicate, args)
        for predicate, rows in self._added.items():
            for args in rows:
                yield Atom(predicate, args)

    def predicates(self) -> frozenset[str]:
        found = {predicate for predicate, rows in self._base.items() if rows}
        found.update(
            predicate for predicate, rows in self._added.items() if rows
        )
        return frozenset(found)

    def relation(self, predicate: str) -> frozenset[tuple[Term, ...]]:
        base = self._base.get(predicate)
        added = self._added.get(predicate)
        if base is None:
            return frozenset(added) if added else frozenset()
        if not added:
            return base
        return base | added

    def relation_rows(self, predicate: str) -> Iterable[tuple[Term, ...]]:
        """Iterable over a predicate's rows without materializing the
        base-overlay union (:meth:`add` keeps the layers disjoint, so
        chaining them yields each row exactly once).  The lattice
        engine's seed-copy path reads parents through this."""
        base = self._base.get(predicate)
        added = self._added.get(predicate)
        if base is None:
            return added if added is not None else ()
        if not added:
            return base
        return chain(base, added)

    def layers(self, predicate: str):
        """The raw (base frozenset, overlay set) pair for one predicate.

        Either element may be ``None`` when that layer holds no rows.
        The compiled-kernel encoder (:mod:`repro.engine.kernels`) reads
        the layers separately: the base frozenset is the *shared COW
        object* adopted from a :class:`~repro.core.database.Database`,
        so encoding it is cached once per distinct relation version
        across the whole hypothesis lattice, while the mutable overlay
        is snapshotted per closure.  Callers must not mutate either.
        """
        return self._base.get(predicate), self._added.get(predicate)

    def count(self, predicate: str) -> int:
        base = self._base.get(predicate)
        added = self._added.get(predicate)
        return (len(base) if base else 0) + (len(added) if added else 0)

    def _position_maps(
        self, predicate: str
    ) -> list[dict[Term, list[tuple[Term, ...]]]]:
        """Build (and cache) per-argument-position maps for a predicate.

        Sized to the largest arity stored; rows shorter than a position
        do not appear in that position's map, which is correct because
        matching requires equal arity.  :meth:`add` keeps cached maps
        current.
        """
        maps = self._maps.get(predicate)
        if maps is None:
            maps = []
            for source in (self._base.get(predicate), self._added.get(predicate)):
                if not source:
                    continue
                for args in source:
                    if len(args) > len(maps):
                        maps.extend({} for _ in range(len(args) - len(maps)))
                    for position, value in enumerate(args):
                        maps[position].setdefault(value, []).append(args)
            self._maps[predicate] = maps
        return maps

    def matches(
        self, pattern: Atom, binding: Optional[Substitution] = None
    ) -> Iterator[Substitution]:
        """Enumerate extensions of ``binding`` matching ``pattern``.

        Each yielded substitution is an independent dict extending
        ``binding``; the pattern grounded by it is a stored fact.
        Ground patterns are decided by set membership; patterns with
        bound positions probe the position maps and scan only the
        narrowest candidate list.
        """
        predicate = pattern.predicate
        base = self._base.get(predicate)
        added = self._added.get(predicate)
        if not base and not added:
            return
        pattern_args = (
            pattern.substitute(binding).args if binding else pattern.args
        )
        bound = [
            (position, value)
            for position, value in enumerate(pattern_args)
            if not isinstance(value, Variable)
        ]
        if len(bound) == len(pattern_args):
            probes = self.probes
            if probes is not None:
                probes.value += 1
            if (base is not None and pattern_args in base) or (
                added is not None and pattern_args in added
            ):
                yield dict(binding) if binding else {}
            return
        if bound:
            total = (len(base) if base else 0) + (len(added) if added else 0)
            if total >= _INDEX_MIN_ROWS:
                maps = self._position_maps(predicate)
                best: Optional[list[tuple[Term, ...]]] = None
                for position, value in bound:
                    if position >= len(maps):
                        return
                    found = maps[position].get(value)
                    if found is None:
                        return
                    if best is None or len(found) < len(best):
                        best = found
                probes = self.probes
                if probes is not None:
                    probes.value += 1
                if best is not None:
                    for ground_args in best:
                        extended = match_args(pattern_args, ground_args, binding)
                        if extended is not None:
                            yield extended
                    return
        if base is not None:
            for ground_args in base:
                extended = match_args(pattern_args, ground_args, binding)
                if extended is not None:
                    yield extended
        if added is not None:
            for ground_args in added:
                extended = match_args(pattern_args, ground_args, binding)
                if extended is not None:
                    yield extended

    def has_match(
        self, pattern: Atom, binding: Optional[Substitution] = None
    ) -> bool:
        """True iff some stored fact matches the pattern under binding."""
        for _ in self.matches(pattern, binding):
            return True
        return False

    def to_frozenset(self) -> frozenset[Atom]:
        return frozenset(self)

    def copy(self) -> "Interpretation":
        duplicate = Interpretation()
        # The base layer is immutable (frozensets adopted from a
        # Database), so it is shared; only the overlay is copied.
        duplicate._base = self._base
        duplicate._added = {
            predicate: set(rows) for predicate, rows in self._added.items()
        }
        duplicate._size = self._size
        return duplicate

    def __repr__(self) -> str:
        return f"Interpretation({self._size} atoms)"
