"""Mutable interpretations (sets of ground atoms) with pattern matching.

All engines manipulate growing sets of derived facts; this class wraps
such a set with a per-predicate index and the matching operation that
drives rule-body joins: given a pattern atom and a partial binding,
enumerate the bindings that extend it to match some stored fact.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..core.terms import Atom, Term
from ..core.unify import Substitution, match_args

__all__ = ["Interpretation"]


class Interpretation:
    """A mutable set of ground atoms, indexed by predicate."""

    __slots__ = ("_by_predicate", "_size")

    def __init__(self, facts: Iterable[Atom] = ()):
        self._by_predicate: dict[str, set[tuple[Term, ...]]] = {}
        self._size = 0
        for item in facts:
            self.add(item)

    def add(self, item: Atom) -> bool:
        """Insert a ground atom; return True iff it was new."""
        rows = self._by_predicate.setdefault(item.predicate, set())
        before = len(rows)
        rows.add(item.args)
        if len(rows) > before:
            self._size += 1
            return True
        return False

    def update(self, items: Iterable[Atom]) -> int:
        """Insert many atoms; return how many were new."""
        added = 0
        for item in items:
            if self.add(item):
                added += 1
        return added

    def __contains__(self, item: Atom) -> bool:
        rows = self._by_predicate.get(item.predicate)
        return rows is not None and item.args in rows

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Atom]:
        for predicate, rows in self._by_predicate.items():
            for args in rows:
                yield Atom(predicate, args)

    def predicates(self) -> frozenset[str]:
        return frozenset(
            predicate for predicate, rows in self._by_predicate.items() if rows
        )

    def relation(self, predicate: str) -> frozenset[tuple[Term, ...]]:
        return frozenset(self._by_predicate.get(predicate, ()))

    def count(self, predicate: str) -> int:
        return len(self._by_predicate.get(predicate, ()))

    def matches(
        self, pattern: Atom, binding: Optional[Substitution] = None
    ) -> Iterator[Substitution]:
        """Enumerate extensions of ``binding`` matching ``pattern``.

        Each yielded substitution is an independent dict extending
        ``binding``; the pattern grounded by it is a stored fact.
        """
        rows = self._by_predicate.get(pattern.predicate)
        if not rows:
            return
        pattern_args = (
            pattern.substitute(binding).args if binding else pattern.args
        )
        for ground_args in rows:
            extended = match_args(pattern_args, ground_args, binding)
            if extended is not None:
                yield extended

    def has_match(
        self, pattern: Atom, binding: Optional[Substitution] = None
    ) -> bool:
        """True iff some stored fact matches the pattern under binding."""
        for _ in self.matches(pattern, binding):
            return True
        return False

    def to_frozenset(self) -> frozenset[Atom]:
        return frozenset(self)

    def copy(self) -> "Interpretation":
        duplicate = Interpretation()
        duplicate._by_predicate = {
            predicate: set(rows) for predicate, rows in self._by_predicate.items()
        }
        duplicate._size = self._size
        return duplicate

    def __repr__(self) -> str:
        return f"Interpretation({self._size} atoms)"
