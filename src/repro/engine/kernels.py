"""Generated join kernels: compiled rule bodies for the bottom-up engines.

The interpreted hot path evaluates a rule body by recursive generator
composition (:func:`repro.engine.body.satisfy_body`): every premise
visit allocates substitution dicts, re-walks pattern atoms, and
re-dispatches on premise kind.  This module compiles each *planned*
rule body — the premise order PR 1's cost planner fixes, including the
delta-keyed semi-naive variants of :mod:`repro.engine.delta` — into a
generated Python closure of specialized bind/probe/filter loops over
interned int tuples (:mod:`repro.core.interning`,
:mod:`repro.core.columns`), with constant tests hoisted and
negation/hypothetical premises inlined in int space (the hypothetical
*recursion* case stays a guarded call back into the engine).

Counter parity is the contract.  The semi-naive driver still counts
firings, charges budgets, runs tracer spans, and deduplicates heads —
kernels only replace the body enumeration, and they replicate its
observable behavior exactly:

* each head the interpreted path would yield is yielded (same
  multiset, so ``model.rule_firings`` matches firing for firing);
* negation tests bump the engine's ``model.negation_tests`` counter at
  the same structural points;
* hypothetical recursion-case instances call back into the engine
  (same child-model construction, trace spans, and lattice memo
  behavior), while the collapse case — "additions already present,
  test the goal in the current fixpoint" — runs entirely in int
  space.  The engine memoizes recursion-case *decisions* per
  (premise, database, grounding): truth there is fixed once the child
  model exists, so ``model.hypothesis_expansions`` counts distinct
  expansions on the compiled path rather than one per semi-naive
  re-fire — that collapse of repeated work is a deliberate part of
  the speedup, not a parity bug;
* in provenance mode the generated code reconstructs the exact binding
  dict the interpreted path would hand the ``record`` sink.

Anything outside the compilable fragment (hypothetical deletions) and
any rule whose plan raises falls back to the interpreted path per
firing — kernels are an optimization, never a semantics gate.

Caching is three-leveled: generated *source* is cached globally per
source string (identical rule shapes across engines share one
``exec``); instantiated kernels are cached per engine keyed by
(rule, premise order, delta position, record mode); encoded relations
are cached per engine keyed by the copy-on-write frozenset object, so
one encode pass serves every lattice child that shares the relation.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..analysis.planner import (
    KernelPlan,
    KernelUnsupported,
    greedy_positive_order,
    kernel_plan,
    nonlocal_variables,
    ordered_premises,
)
from ..core.ast import Hypothetical, Positive, Rule
from ..core.columns import ColumnStore, RelationView
from ..core.errors import EvaluationError
from ..core.interning import SymbolTable
from ..core.terms import Constant, Variable
from ..obs.metrics import Counter

__all__ = [
    "COMPILE_MODES",
    "KernelProgram",
    "KernelRun",
    "compile_mode",
    "generate_source",
]

COMPILE_MODES = ("auto", "on", "off")

_MISSING = object()

# source text -> compiled _factory; shared across every engine in the
# process, so identical rule shapes are exec'd exactly once.
_SOURCE_FACTORIES: dict[str, Callable] = {}


def compile_mode(value) -> str:
    """Normalize a ``compile=`` argument to ``"auto"|"on"|"off"``."""
    if value is True or value == "on":
        return "on"
    if value is False or value == "off":
        return "off"
    if value is None or value == "auto":
        return "auto"
    raise EvaluationError(
        f"unknown compile mode {value!r}; use one of {COMPILE_MODES}"
    )


def _tuple_expr(parts: Sequence[str]) -> str:
    if len(parts) == 1:
        return f"({parts[0]},)"
    return "(" + ", ".join(parts) + ")"


def _unpack(names: Sequence[str], source: str) -> str:
    if len(names) == 1:
        return f"{names[0]}, = {source}"
    return ", ".join(names) + f" = {source}"


def generate_source(
    plan: KernelPlan, target_index: int, record: bool
) -> tuple[str, tuple[Constant, ...], tuple[Variable, ...]]:
    """Render one access plan to kernel source.

    Returns ``(source, constants, variables)``: the factory text plus
    the constants/variable objects its ``CONSTS``/``VARS`` parameters
    must be bound to (ids per engine, so the source itself is
    engine-neutral and globally cacheable).
    """
    consts: dict[Constant, str] = {}
    var_objs: dict[Variable, str] = {}
    env: dict[Variable, str] = {}
    prelude: list[str] = []
    factory_extra: list[str] = []
    body: list[tuple[int, str]] = []
    flags = {"view": False, "dom": False, "dec": False, "neg": False,
             "prb": False, "empty": False}
    counter = iter(range(1 << 30))

    def const_name(item: Constant) -> str:
        name = consts.get(item)
        if name is None:
            name = f"K{len(consts)}"
            consts[item] = name
        return name

    def var_obj(item: Variable) -> str:
        name = var_objs.get(item)
        if name is None:
            name = f"W{len(var_objs)}"
            var_objs[item] = name
        return name

    def slot_expr(kind: str, payload) -> str:
        if kind == "const":
            return const_name(payload)
        return env[payload]

    def emit(depth: int, line: str) -> None:
        body.append((depth, line))

    def emit_domain_loops(depth: int, variables) -> int:
        flags["dom"] = flags["dom"] or bool(variables)
        for item in variables:
            name = f"x{next(counter)}"
            env[item] = name
            emit(depth, f"for {name} in DOM:")
            depth += 1
        return depth

    depth = 0
    for position, step in enumerate(plan.steps):
        if position == plan.ground_at:
            depth = emit_domain_loops(depth, plan.ground_vars)
        k = position
        access = step.atoms[0]
        pred = access.atom.predicate
        arity = access.arity
        is_target = target_index >= 0 and step.index == target_index

        if step.kind == "positive":
            if access.is_ground:
                flags["prb"] = True
                parts = [slot_expr(kind, p) for kind, p in access.slots]
                emit(depth, "PRB.value += 1")
                emit(depth, f"t{k} = {_tuple_expr(parts) if parts else '()'}")
                if is_target:
                    prelude.append(f"DS{k} = ctx.delta_rowset({pred!r})")
                    emit(depth, f"if t{k} in DS{k}:")
                else:
                    flags["view"] = True
                    prelude.append(f"RB{k}, RO{k} = _view({pred!r}).rowsets()")
                    emit(depth, f"if t{k} in RB{k} or t{k} in RO{k}:")
                depth += 1
                continue
            # Row enumeration: probe the per-position index when a
            # position is known, else scan the relation.
            if access.probe is not None:
                flags["prb"] = True
                flags["empty"] = True
                kind, payload = access.slots[access.probe]
                key = slot_expr(kind, payload)
                if is_target:
                    prelude.append(
                        f"I{k} = ctx.delta_index({pred!r}, {arity}, {access.probe})"
                    )
                else:
                    flags["view"] = True
                    prelude.append(
                        f"I{k} = _view({pred!r}).index({arity}, {access.probe})"
                    )
                emit(depth, "PRB.value += 1")
                emit(depth, f"for r{k} in I{k}.get({key}, _E):")
            else:
                if is_target:
                    prelude.append(f"T{k} = ctx.delta_tuples({pred!r}, {arity})")
                else:
                    flags["view"] = True
                    prelude.append(f"T{k} = _view({pred!r}).tuples({arity})")
                emit(depth, f"for r{k} in T{k}:")
            depth += 1
            names = []
            checks: list[str] = []
            for i, (kind, payload) in enumerate(access.slots):
                if kind == "bind":
                    name = f"a{k}_{i}"
                    env[payload] = name
                    names.append(name)
                elif kind == "check":
                    name = f"a{k}_{i}"
                    names.append(name)
                    checks.append(f"if {name} != {env[payload]}: continue")
                elif i == access.probe:
                    names.append("_")
                else:
                    name = f"a{k}_{i}"
                    names.append(name)
                    checks.append(
                        f"if {name} != {slot_expr(kind, payload)}: continue"
                    )
            if any(name != "_" for name in names):
                emit(depth, _unpack(names, f"r{k}"))
            for check in checks:
                emit(depth, check)
            continue

        if step.kind == "negated":
            flags["neg"] = True
            emit(depth, "NEG.value += 1")
            if access.is_ground:
                flags["view"] = True
                flags["prb"] = True
                prelude.append(f"RB{k}, RO{k} = _view({pred!r}).rowsets()")
                parts = [slot_expr(kind, p) for kind, p in access.slots]
                emit(depth, "PRB.value += 1")
                emit(depth, f"t{k} = {_tuple_expr(parts) if parts else '()'}")
                emit(depth, f"if t{k} not in RB{k} and t{k} not in RO{k}:")
                depth += 1
                continue
            constrained = any(
                kind in ("const", "bound", "check") for kind, _ in access.slots
            )
            if not constrained:
                # Any row of the right arity matches a free pattern.
                flags["view"] = True
                prelude.append(f"TOT{k} = _view({pred!r}).total({arity})")
                emit(depth, f"if not TOT{k}:")
                depth += 1
                continue
            local: dict[Variable, str] = {}
            if access.probe is not None:
                flags["view"] = True
                flags["prb"] = True
                flags["empty"] = True
                kind, payload = access.slots[access.probe]
                key = slot_expr(kind, payload)
                prelude.append(
                    f"I{k} = _view({pred!r}).index({arity}, {access.probe})"
                )
                emit(depth, "PRB.value += 1")
                emit(depth, f"for r{k} in I{k}.get({key}, _E):")
            else:
                flags["view"] = True
                prelude.append(f"T{k} = _view({pred!r}).tuples({arity})")
                emit(depth, f"for r{k} in T{k}:")
            names = []
            checks = []
            for i, (kind, payload) in enumerate(access.slots):
                if kind == "bind":
                    name = f"a{k}_{i}"
                    local[payload] = name
                    names.append(name)
                elif kind == "check":
                    name = f"a{k}_{i}"
                    names.append(name)
                    checks.append(f"if {name} != {local[payload]}: continue")
                elif i == access.probe:
                    names.append("_")
                else:
                    name = f"a{k}_{i}"
                    names.append(name)
                    checks.append(
                        f"if {name} != {slot_expr(kind, payload)}: continue"
                    )
            if checks and any(name != "_" for name in names):
                emit(depth + 1, _unpack(names, f"r{k}"))
            for check in checks:
                emit(depth + 1, check)
            emit(depth + 1, "break")
            emit(depth, "else:")
            depth += 1
            continue

        # Hypothetical premise: enumerate Definition 3 instances over
        # the domain, split collapse (all additions already stored ->
        # test goal in the current fixpoint, fully in int space) from
        # recursion (guarded call back into the engine's child-model
        # machinery).
        depth = emit_domain_loops(depth, step.ground_vars)
        goal_parts = [slot_expr(kind, p) for kind, p in access.slots]
        emit(depth, f"t{k} = {_tuple_expr(goal_parts) if goal_parts else '()'}")
        conds = []
        for j, added in enumerate(step.atoms[1:]):
            parts = [slot_expr(kind, p) for kind, p in added.slots]
            emit(depth, f"u{k}_{j} = {_tuple_expr(parts) if parts else '()'}")
            prelude.append(
                f"AD{k}_{j} = ctx.db_rowset({added.atom.predicate!r})"
            )
            conds.append(f"u{k}_{j} in AD{k}_{j}")
        collapse = " and ".join(conds) if conds else "True"
        if is_target:
            prelude.append(f"DS{k} = ctx.delta_rowset({pred!r})")
            emit(depth, f"if t{k} in DS{k}:")
            depth += 1
            emit(depth, f"if {collapse}:")
            depth += 1
            continue
        flags["view"] = True
        prelude.append(f"GB{k}, GO{k} = _view({pred!r}).rowsets()")
        pvars = tuple(dict.fromkeys(step.premise.variables()))
        factory_extra.append(
            f"HV{k} = {_tuple_expr([var_obj(v) for v in pvars]) if pvars else '()'}"
        )
        prelude.append(f"HY{k} = ctx.hyp_hook(PREMS[{step.index}], HV{k})")
        prelude.append(f"HM{k} = ctx.hyp_memo(PREMS[{step.index}])")
        # Raw interned ids: recursion-case decisions are memoized per
        # (premise, database) right here in int space — the engine
        # call-back (which decodes, grounds, and models the enlarged
        # database) runs once per distinct instance and stores the
        # verdict in HM.
        values = _tuple_expr([env[v] for v in pvars]) if pvars else "()"
        emit(depth, f"if {collapse}:")
        emit(depth + 1, f"h{k} = t{k} in GB{k} or t{k} in GO{k}")
        emit(depth, "else:")
        emit(depth + 1, f"v{k} = {values}")
        emit(depth + 1, f"h{k} = HM{k}.get(v{k})")
        emit(depth + 1, f"if h{k} is None:")
        emit(depth + 2, f"h{k} = HY{k}(v{k})")
        emit(depth, f"if h{k}:")
        depth += 1

    if plan.ground_at == len(plan.steps):
        depth = emit_domain_loops(depth, plan.ground_vars)

    head_parts = [slot_expr(kind, p) for kind, p in plan.head.slots]
    head_tuple = _tuple_expr(head_parts) if head_parts else "()"
    head_pred = plan.head.atom.predicate
    if record:
        flags["dec"] = flags["dec"] or bool(plan.bound_vars)
        binding = ", ".join(
            f"{var_obj(v)}: DEC[{env[v]}]" for v in plan.bound_vars
        )
        emit(depth, f"_h = MK({head_pred!r}, {head_tuple})")
        emit(depth, f"REC(RULE, _h, {{{binding}}})")
        emit(depth, "yield _h")
    else:
        emit(depth, f"yield MK({head_pred!r}, {head_tuple})")

    lines = ["def _factory(RULE, CONSTS, VARS, PREMS):"]
    if consts:
        lines.append("    " + _unpack(list(consts.values()), "CONSTS"))
    if var_objs:
        lines.append("    " + _unpack(list(var_objs.values()), "VARS"))
    lines.extend("    " + line for line in factory_extra)
    lines.append("    def kernel(ctx):")
    lines.append("        MK = ctx.make")
    if flags["view"]:
        lines.append("        _view = ctx.view")
    if flags["dom"]:
        lines.append("        DOM = ctx.domain_ids")
    if flags["dec"]:
        lines.append("        DEC = ctx.decode")
    if flags["neg"]:
        lines.append("        NEG = ctx.neg")
    if flags["prb"]:
        lines.append("        PRB = ctx.probes")
    if record:
        lines.append("        REC = ctx.record")
    if flags["empty"]:
        lines.append("        _E = ()")
    lines.extend("        " + line for line in prelude)
    for indent, line in body:
        lines.append("        " + "    " * indent + line)
    lines.append("    return kernel")
    return "\n".join(lines) + "\n", tuple(consts), tuple(var_objs)


class _RuleSpec:
    """Static per-rule data shared by every kernel variant of one rule."""

    __slots__ = (
        "rule",
        "key",
        "positives",
        "rest",
        "default_order",
        "guards",
        "index_of",
        "has_hyp",
    )

    def __init__(self, item: Rule) -> None:
        self.rule = item
        self.key = id(item)
        ordered = ordered_premises(item.body)
        self.positives = [p for p in ordered if isinstance(p, Positive)]
        self.rest = [p for p in ordered if not isinstance(p, Positive)]
        self.default_order = ordered
        self.guards = nonlocal_variables(item)
        self.index_of = {id(p): i for i, p in enumerate(item.body)}
        self.has_hyp = any(isinstance(p, Hypothetical) for p in item.body)


class KernelProgram:
    """Per-engine kernel state: symbols, encode cache, compiled kernels.

    One program lives as long as its engine; its :class:`SymbolTable`
    ids and encoded-relation cache are therefore stable across the
    whole hypothesis lattice the engine explores.
    """

    def __init__(self, metrics=None) -> None:
        self.symbols = SymbolTable()
        self.store = ColumnStore(self.symbols)
        if metrics is not None:
            self.compiled = metrics.counter("kernel.compiled")
            self.fires = metrics.counter("kernel.fires")
            self.cache_hits = metrics.counter("kernel.cache_hits")
            self.fallbacks = metrics.counter("kernel.fallbacks")
        else:
            self.compiled = Counter("kernel.compiled")
            self.fires = Counter("kernel.fires")
            self.cache_hits = Counter("kernel.cache_hits")
            self.fallbacks = Counter("kernel.fallbacks")
        self._specs: dict[int, _RuleSpec] = {}
        self._unsupported: set[int] = set()
        self._kernels: dict[tuple, Optional[Callable]] = {}
        self._sources: dict[int, dict[tuple, str]] = {}
        self._domain_ids: Optional[tuple] = None
        self._freeze_cache: dict[tuple[str, int], tuple] = {}

    def domain_ids(self, domain) -> list[int]:
        """Interned ids for a domain sequence, cached by identity.

        One evaluation passes the same domain list down through every
        stratum closure of every lattice child, so a single-slot
        identity cache removes re-interning from the per-closure setup
        (the slot keeps the list alive, so the id cannot be recycled).
        """
        cached = self._domain_ids
        if cached is not None and cached[0] is domain:
            return cached[1]
        ids = [self.symbols.intern(item) for item in domain]
        self._domain_ids = (domain, ids)
        return ids

    def freeze(self, interp) -> frozenset:
        """An interpretation's frozenset-of-atoms model snapshot.

        Equivalent to ``interp.to_frozenset()`` but routed through the
        symbol table's ground-atom cache: lattice children overlap
        heavily in derived atoms, so most rows resolve to an existing
        Atom object (with its hash already cached) instead of a fresh
        allocation per model.  Base layers are the COW frozensets
        shared across the hypothesis lattice, so their atom lists are
        additionally cached per relation version (keyed by identity;
        the cached tuple pins the frozenset so its id stays valid).
        """
        symbols = self.symbols
        encode = symbols.encode_args
        make = symbols.make_atom
        cache = self._freeze_cache
        out = []
        for predicate in interp.predicates():
            base, added = interp.layers(predicate)
            if base:
                key = (predicate, id(base))
                hit = cache.get(key)
                if hit is None or hit[0] is not base:
                    atoms = [make(predicate, encode(args)) for args in base]
                    cache[key] = (base, atoms)
                else:
                    atoms = hit[1]
                out.extend(atoms)
            if added:
                for args in added:
                    out.append(make(predicate, encode(args)))
        return frozenset(out)

    def spec(self, item: Rule) -> Optional[_RuleSpec]:
        key = id(item)
        found = self._specs.get(key)
        if found is None:
            if key in self._unsupported:
                return None
            if any(
                isinstance(p, Hypothetical) and p.deletions for p in item.body
            ):
                self._unsupported.add(key)
                return None
            found = self._specs[key] = _RuleSpec(item)
        return found

    def kernel(
        self,
        spec: _RuleSpec,
        ordered,
        order_key: tuple[int, ...],
        target_key: int,
        record: bool,
    ) -> Optional[Callable]:
        key = (spec.key, order_key, target_key, record)
        found = self._kernels.get(key, _MISSING)
        if found is not _MISSING:
            if found is not None:
                self.cache_hits.value += 1
            return found
        try:
            plan = kernel_plan(spec.rule, ordered, spec.guards)
            source, const_terms, var_terms = generate_source(
                plan, target_key, record
            )
            factory = _SOURCE_FACTORIES.get(source)
            if factory is None:
                namespace: dict = {}
                exec(compile(source, "<kernel>", "exec"), namespace)
                factory = _SOURCE_FACTORIES[source] = namespace["_factory"]
            const_ids = tuple(self.symbols.intern(c) for c in const_terms)
            kern = factory(spec.rule, const_ids, var_terms, spec.rule.body)
            self.compiled.value += 1
            self._sources.setdefault(spec.key, {})[key] = source
        except KernelUnsupported:
            kern = None
        self._kernels[key] = kern
        return kern

    def sources_for(self, item: Rule) -> list[str]:
        """Every kernel source compiled so far for one rule."""
        return list(self._sources.get(id(item), {}).values())

    def preview(self, item: Rule, record: bool = False) -> Optional[str]:
        """The rule's default-order full-fire kernel source (compiling
        it on demand), or None when the rule is not compilable."""
        spec = self.spec(item)
        if spec is None:
            return None
        ordered = spec.default_order
        order_key = tuple(spec.index_of[id(p)] for p in ordered)
        kern = self.kernel(spec, ordered, order_key, -1, record)
        if kern is None:
            return None
        return self._sources[spec.key].get((spec.key, order_key, -1, record))

    def run(self, **kwargs) -> "KernelRun":
        """A per-closure execution context; see :class:`KernelRun`."""
        return KernelRun(self, **kwargs)


class KernelRun:
    """One closure's kernel execution context (the generated code's ``ctx``).

    Built by an engine right before each :func:`repro.engine.delta.
    close_layer` call; carries the live interpretation/database/domain,
    the engine's planner and counters, and per-closure caches of
    :class:`RelationView` objects.  The semi-naive driver calls
    :meth:`begin_round` at round headers, :meth:`fire` in place of its
    interpreted body enumeration (None return means "interpret this
    one"), and :meth:`added` for every head accepted into the
    interpretation so live views stay current.
    """

    __slots__ = (
        "program",
        "interp",
        "db",
        "domain",
        "plan",
        "optimize",
        "record",
        "neg",
        "probes",
        "hyp_call",
        "_hyp_memo",
        "domain_ids",
        "decode",
        "make",
        "_views",
        "_delta",
        "_delta_views",
        "_db_rowsets",
        "_orders",
        "_kerns",
    )

    def __init__(
        self,
        program: KernelProgram,
        *,
        interp,
        db=None,
        domain=(),
        plan=None,
        optimize: bool = False,
        record=None,
        negation: Optional[Counter] = None,
        probes: Optional[Counter] = None,
        hyp_call=None,
        hyp_memo=None,
    ) -> None:
        self.program = program
        self.interp = interp
        self.db = db
        self.domain = domain
        self.plan = plan
        self.optimize = optimize
        self.record = record
        self.neg = negation if negation is not None else Counter("kernel.negation")
        self.probes = probes if probes is not None else Counter("kernel.probes")
        self.hyp_call = hyp_call
        self._hyp_memo = hyp_memo
        symbols = program.symbols
        self.domain_ids = program.domain_ids(domain)
        self.decode = symbols.constants
        self.make = symbols.make_atom
        self._views: dict[str, RelationView] = {}
        self._delta = None
        self._delta_views: dict[str, RelationView] = {}
        self._db_rowsets: dict[str, frozenset] = {}
        # Per-closure memos: join order (planned once per rule against
        # this closure's relation sizes; order never changes the head
        # multiset, only enumeration cost) and resolved kernels per
        # (rule, delta target).
        self._orders: dict[int, tuple] = {}
        self._kerns: dict[tuple, Optional[Callable]] = {}

    # -- driver hooks ---------------------------------------------------

    def begin_round(self) -> None:
        """Invalidate per-round delta views (called at round headers)."""
        self._delta_views.clear()

    def fire(self, item: Rule, target, delta):
        """Compiled head enumeration for one rule, or None to fall back."""
        program = self.program
        spec = program.spec(item)
        if spec is None or (spec.has_hyp and self.hyp_call is None):
            program.fallbacks.value += 1
            return None
        index_of = spec.index_of
        target_key = index_of[id(target)] if target is not None else -1
        memo_key = (spec.key, target_key)
        kern = self._kerns.get(memo_key, _MISSING)
        if kern is _MISSING:
            order = self._orders.get(spec.key)
            if order is None:
                plan = self.plan
                if plan is not None:
                    ordered = list(plan(spec.positives, ())) + spec.rest
                elif self.optimize:
                    ordered = (
                        list(greedy_positive_order(spec.positives, ()))
                        + spec.rest
                    )
                else:
                    ordered = spec.default_order
                order = self._orders[spec.key] = (
                    ordered,
                    tuple(index_of[id(p)] for p in ordered),
                )
            ordered, order_key = order
            kern = program.kernel(
                spec, ordered, order_key, target_key, self.record is not None
            )
            self._kerns[memo_key] = kern
        elif kern is not None:
            program.cache_hits.value += 1
        if kern is None:
            program.fallbacks.value += 1
            return None
        program.fires.value += 1
        self._delta = delta
        return kern(self)

    def added(self, head) -> None:
        """Patch live views with a head the driver just accepted."""
        view = self._views.get(head.predicate)
        if view is not None:
            view.add(self.program.symbols.encode_args(head.args))

    # -- generated-code accessors --------------------------------------

    def view(self, predicate: str) -> RelationView:
        found = self._views.get(predicate)
        if found is None:
            base_rows, overlay_rows = self.interp.layers(predicate)
            store = self.program.store
            base = store.encoded(base_rows) if base_rows else None
            encode = store.symbols.encode_args
            found = self._views[predicate] = RelationView(
                base,
                [encode(args) for args in overlay_rows] if overlay_rows else (),
            )
        return found

    def _dview(self, predicate: str) -> RelationView:
        found = self._delta_views.get(predicate)
        if found is None:
            base_rows, overlay_rows = self._delta.layers(predicate)
            store = self.program.store
            base = store.encoded(base_rows) if base_rows else None
            encode = store.symbols.encode_args
            found = self._delta_views[predicate] = RelationView(
                base,
                [encode(args) for args in overlay_rows] if overlay_rows else (),
            )
        return found

    def delta_tuples(self, predicate: str, arity: int):
        return self._dview(predicate).tuples(arity)

    def delta_index(self, predicate: str, arity: int, pos: int):
        return self._dview(predicate).index(arity, pos)

    def delta_rowset(self, predicate: str):
        base, overlay = self._dview(predicate).rowsets()
        return (base | overlay) if base else overlay

    def db_rowset(self, predicate: str) -> frozenset:
        found = self._db_rowsets.get(predicate)
        if found is None:
            db = self.db
            rows = db.relation(predicate) if db is not None else None
            found = self._db_rowsets[predicate] = (
                self.program.store.encoded(rows).rowset if rows else frozenset()
            )
        return found

    def hyp_memo(self, premise) -> dict:
        """The (premise, database) decision memo read inline by kernels.

        Generated code probes this dict in int space before paying for
        the engine call-back; the call-back stores each recursion-case
        verdict back into the same dict.  Engines that pass no
        ``hyp_memo`` factory get a throwaway dict (correct, never hit).
        """
        fn = self._hyp_memo
        return fn(premise) if fn is not None else {}

    def hyp_hook(self, premise, pvars):
        """A per-premise closure deciding recursion-case instances.

        Generated code calls the hook with a tuple of *interned ids*
        only on a :meth:`hyp_memo` miss; the engine-side callback
        decodes them to Constants, grounds the premise, evaluates the
        enlarged database, and memoizes the verdict.
        """
        call = self.hyp_call
        decode = self.decode

        def hook(ids, _call=call, _premise=premise, _pvars=pvars, _dec=decode):
            return _call(_premise, _pvars, ids, _dec)

        return hook
