"""Reference evaluator for hypothetical Datalog with stratified negation.

This engine computes, for a rulebase ``R`` and database ``DB``, the set
of all ground atoms ``A`` with ``R, DB |- A`` under Definition 3 plus
negation-by-failure.  It is the semantic ground truth against which the
paper's goal-directed proof procedures (:mod:`repro.engine.prove`) are
cross-checked.

How it works
------------
The perfect model at a database is computed stratum by stratum (strata
here are the classic negation strata: recursion through hypothetical
premises is allowed, recursion through negation is not — the paper's
standing assumption in Section 3.1).  Within a stratum, rules are
applied to a fixpoint.  A hypothetical premise ``A[add: B...]`` under a
grounding either

* adds nothing new (every ``B`` already in the database) — then it is
  the premise ``A`` inside the *same* fixpoint, or
* strictly enlarges the database — then the engine recursively computes
  the full model of the enlarged database.  Since additions only grow
  the database and the ground-atom space over ``dom(R, DB)`` is finite,
  this recursion is well founded.

Models are memoized per database, so the overall cost is "number of
reachable databases x fixpoint cost" rather than "number of proof
paths".  For Example 7 (Hamiltonian path) this makes the evaluator a
Held-Karp-style dynamic program: exponential in the number of nodes,
as Theorem 1 says it must be, but not factorial.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

from ..core.ast import Hypothetical, Negated, Positive, Premise, Rule, Rulebase
from ..core.database import Database
from ..core.errors import EvaluationError
from ..core.parser import parse_premise
from ..core.terms import Atom, Constant, Variable
from ..core.unify import Substitution, ground_instances
from ..obs.metrics import MetricsRegistry, StatsView
from ..obs.trace import NULL_SPAN, NULL_TRACER, Tracer
from .body import (
    cost_aware_positive_order,
    join_mode,
    nonlocal_variables,
    satisfy_body,
)
from .interpretation import Interpretation

__all__ = ["PerfectModelEngine", "EngineStats"]

Query = Union[str, Atom, Premise]


class EngineStats(StatsView):
    """Deprecated: work counters of a :class:`PerfectModelEngine`, now a
    thin view over a :class:`~repro.obs.metrics.MetricsRegistry`
    (``model.*``); read the registry directly in new code."""

    _counter_fields = {
        "models_computed": "model.models_computed",
        "cache_hits": "model.cache_hits",
        "rule_rounds": "model.rule_rounds",
        "atoms_derived": "model.atoms_derived",
    }


class PerfectModelEngine:
    """Memoizing bottom-up evaluator for hypothetical Datalog¬.

    Parameters
    ----------
    rulebase:
        The rules.  Negation must be stratified in the classic sense
        (checked at construction); hypothetical recursion is fine and
        linearity is *not* required — this engine evaluates the full
        PSPACE language.
    max_databases:
        Safety valve: the number of distinct databases whose models may
        be materialized before :class:`EvaluationError` is raised.
        Hypothetical evaluation legitimately explores exponentially
        many databases, so runaway queries are easier to hit than in
        plain Datalog.
    memoize:
        Disable to measure the cost of memoization for the E13 ablation
        bench; leave enabled otherwise.
    optimize_joins:
        Join-planning policy for positive premises (E16 ablation);
        semantics-neutral.  ``True``/``"cost"`` orders by estimated
        binding selectivity against live relation sizes, ``"greedy"``
        keeps the legacy most-bound-first policy, ``False`` evaluates
        in textual order.
    """

    def __init__(
        self,
        rulebase: Rulebase,
        *,
        max_databases: int = 200_000,
        memoize: bool = True,
        optimize_joins: bool | str = True,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        from ..analysis.stratify import negation_strata

        if rulebase.has_deletions():
            raise EvaluationError(
                "the bottom-up model engine supports the paper's add-only "
                "language; evaluate hypothetical deletions with the "
                "top-down engine"
            )
        self._rulebase = rulebase
        layers = negation_strata(rulebase)
        self._layer_rules: list[tuple[Rule, ...]] = [
            tuple(
                item
                for predicate in layer
                for item in rulebase.definition(predicate)
            )
            for layer in layers
        ]
        self._rule_constants = frozenset(rulebase.constants())
        self._cache: dict[Database, frozenset[Atom]] = {}
        self._max_databases = max_databases
        self._memoize = memoize
        self._join_mode = join_mode(optimize_joins)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = EngineStats(self.metrics)
        # Counters are bound once; hot paths do a slots-attribute
        # increment, the same cost as the old stats-struct fields.
        counter = self.metrics.counter
        self._n_models = counter("model.models_computed")
        self._n_cache_hits = counter("model.cache_hits")
        self._n_cache_misses = counter("model.cache_misses")
        self._n_rounds = counter("model.rule_rounds")
        self._n_derived = counter("model.atoms_derived")
        self._n_negation = counter("model.negation_tests")
        self._n_hypo = counter("model.hypothesis_expansions")
        self._h_model_size = self.metrics.histogram("model.model_size")

    @property
    def rulebase(self) -> Rulebase:
        return self._rulebase

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def domain(self, db: Database) -> list[Constant]:
        """``dom(R, DB)``: all constants of the rulebase and database."""
        constants = set(self._rule_constants) | set(db.constants())
        return sorted(constants, key=lambda c: (str(type(c.value)), str(c.value)))

    def model(self, db: Database) -> frozenset[Atom]:
        """All ground atoms derivable from ``db`` (Definition 3 + NAF)."""
        return self._model(db, self.domain(db))

    def ask(self, db: Database, query: Query) -> bool:
        """Decide a query: an atom, a premise, or premise text.

        Variables in the query are read existentially; a negated
        premise ``~A`` holds iff no instance of ``A`` is derivable.
        """
        premise = self._coerce(query)
        return self.holds(db, premise)

    def answers(self, db: Database, pattern: Union[str, Atom]) -> set[tuple]:
        """All payload tuples ``t`` with ``pattern[t]`` derivable.

        >>> # answers(db, "grad(S)") -> {("tony",), ("sue",)}
        """
        if isinstance(pattern, str):
            premise = parse_premise(pattern)
            if not isinstance(premise, Positive):
                raise EvaluationError("answers() needs a plain atom pattern")
            pattern = premise.atom
        model = self.model(db)
        variables = list(dict.fromkeys(pattern.variables()))
        results: set[tuple] = set()
        interp = Interpretation(model)
        for binding in interp.matches(pattern):
            results.add(
                tuple(binding[var].value for var in variables)  # type: ignore[union-attr]
            )
        return results

    def holds(self, db: Database, premise: Premise) -> bool:
        """Decide one premise at a database (variables existential)."""
        domain = self.domain(db)
        if isinstance(premise, Negated):
            return not self._exists(db, Positive(premise.atom), domain)
        return self._exists(db, premise, domain)

    def clear_cache(self) -> None:
        self._cache.clear()

    @property
    def cached_databases(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(query: Query) -> Premise:
        if isinstance(query, str):
            return parse_premise(query)
        if isinstance(query, Atom):
            return Positive(query)
        return query

    def _exists(self, db: Database, premise: Premise, domain) -> bool:
        """Is some grounding of the premise derivable at ``db``?"""
        if isinstance(premise, Positive):
            goal = premise.atom
            model = self._model(db, domain)
            if goal.is_ground:
                return goal in model
            return Interpretation(model).has_match(goal)
        if isinstance(premise, Hypothetical):
            trace = self._tracer
            unbound = list(dict.fromkeys(premise.variables()))
            for binding in ground_instances(unbound, domain):
                grounded = premise.substitute(binding)
                db2 = db.with_facts(*grounded.additions)
                self._n_hypo.value += 1
                ctx = (
                    trace.span("hypothesis", str(grounded), src=premise.span)
                    if trace.enabled
                    else NULL_SPAN
                )
                with ctx:
                    model = self._model(db2, domain)
                if grounded.atom in model:
                    return True
            return False
        raise EvaluationError(f"cannot decide premise {premise}")

    def _model(self, db: Database, domain: Sequence[Constant]) -> frozenset[Atom]:
        cached = self._cache.get(db)
        if cached is not None:
            self._n_cache_hits.value += 1
            return cached
        if len(self._cache) >= self._max_databases:
            raise EvaluationError(
                f"hypothetical evaluation touched more than "
                f"{self._max_databases} databases; raise max_databases "
                f"if this is intended"
            )
        self._n_cache_misses.value += 1
        self._n_models.value += 1
        trace = self._tracer
        ctx = (
            trace.span("model", f"db[{len(db)}]")
            if trace.enabled
            else NULL_SPAN
        )
        with ctx:
            interp = Interpretation(db)
            for index, rules in enumerate(self._layer_rules):
                stratum_ctx = (
                    trace.span("stratum", str(index), args={"rules": len(rules)})
                    if trace.enabled
                    else NULL_SPAN
                )
                with stratum_ctx:
                    self._close_layer(rules, interp, db, domain)
            result = interp.to_frozenset()
        self._h_model_size.observe(len(result))
        if self._memoize:
            self._cache[db] = result
        return result

    def _close_layer(
        self,
        rules: tuple[Rule, ...],
        interp: Interpretation,
        db: Database,
        domain: Sequence[Constant],
    ) -> None:
        plan = None
        if self._join_mode == "cost":
            domain_size = len(domain)

            def plan(positives, bound):
                return cost_aware_positive_order(
                    positives, bound, interp.count, domain_size
                )

        trace = self._tracer
        n_negation = self._n_negation

        def negated(pattern: Atom, current: Substitution) -> bool:
            n_negation.value += 1
            return not interp.has_match(pattern, current)

        changed = True
        while changed:
            changed = False
            self._n_rounds.value += 1
            pending: list[Atom] = []
            for item in rules:
                rule_ctx = (
                    trace.span(
                        "rule", item.head.predicate, src=item.span
                    )
                    if trace.enabled
                    else NULL_SPAN
                )
                with rule_ctx:
                    head_variables = set(item.head.variables())
                    bindings = satisfy_body(
                        item.body,
                        positive=lambda pattern, current: interp.matches(
                            pattern, current
                        ),
                        hypothetical=lambda premise, current: self._expand_hypothetical(
                            premise, current, db, interp, domain
                        ),
                        negated=negated,
                        ground_first=nonlocal_variables(item),
                        domain=domain,
                        optimize=self._join_mode == "greedy",
                        plan=plan,
                    )
                    for binding in bindings:
                        unbound = [
                            var for var in head_variables if var not in binding
                        ]
                        if unbound:
                            for grounded in ground_instances(
                                unbound, domain, binding
                            ):
                                pending.append(item.head.substitute(grounded))
                        else:
                            pending.append(item.head.substitute(binding))
            for head in pending:
                if interp.add(head):
                    changed = True
                    self._n_derived.value += 1

    def _expand_hypothetical(
        self,
        premise: Hypothetical,
        binding: Substitution,
        db: Database,
        interp: Interpretation,
        domain: Sequence[Constant],
    ) -> Iterator[Substitution]:
        """Bindings under which ``A[add: B...]`` holds at ``db``.

        Free variables of the premise are grounded over the domain
        (Definition 3).  When the additions are already present the
        premise collapses to ``A`` inside the current fixpoint; when
        they are new the engine recurses into the enlarged database.
        """
        trace = self._tracer
        unbound = [
            var for var in dict.fromkeys(premise.variables()) if var not in binding
        ]
        for grounding in ground_instances(unbound, domain, binding):
            grounded = premise.substitute(grounding)
            db2 = db.with_facts(*grounded.additions)
            if db2 is db:
                if grounded.atom in interp:
                    yield grounding
            else:
                self._n_hypo.value += 1
                ctx = (
                    trace.span("hypothesis", str(grounded), src=premise.span)
                    if trace.enabled
                    else NULL_SPAN
                )
                with ctx:
                    model = self._model(db2, domain)
                if grounded.atom in model:
                    yield grounding
