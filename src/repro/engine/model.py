"""Reference evaluator for hypothetical Datalog with stratified negation.

This engine computes, for a rulebase ``R`` and database ``DB``, the set
of all ground atoms ``A`` with ``R, DB |- A`` under Definition 3 plus
negation-by-failure.  It is the semantic ground truth against which the
paper's goal-directed proof procedures (:mod:`repro.engine.prove`) are
cross-checked.

How it works
------------
The perfect model at a database is computed stratum by stratum (strata
here are the classic negation strata: recursion through hypothetical
premises is allowed, recursion through negation is not — the paper's
standing assumption in Section 3.1).  Within a stratum, rules are
closed by the shared differential machinery of
:mod:`repro.engine.delta` (``strategy="seminaive"``, the default) or by
exhaustive iteration (``strategy="naive"``, the baseline the E18 bench
measures against).  A hypothetical premise ``A[add: B...][del: C...]``
under a grounding either

* changes nothing (every ``B`` already present, no ``C`` present) —
  then it is the premise ``A`` inside the *same* fixpoint, or
* moves to a different database ``(DB − {C}) + {B}`` — then the engine
  recursively computes the full model there.  Deletions apply before
  additions (the paper's ``R, (DB − {C}) + {B} |- A`` reading), and
  the recursion is well founded because all reachable databases live
  in the finite lattice of fact sets over ``dom(R, DB)`` and models
  are memoized per database.

Models are memoized per database, so the overall cost is "number of
reachable databases x fixpoint cost" rather than "number of proof
paths".  For Example 7 (Hamiltonian path) this makes the evaluator a
Held-Karp-style dynamic program: exponential in the number of nodes,
as Theorem 1 says it must be, but not factorial.

Lattice model reuse
-------------------
With ``reuse_models=True`` (the default, semi-naive only) a child
fixpoint ``model(DB + {B...})`` does not start from scratch: Definition
3's inference rules are monotone in the database for the negation-free
fragment, so every atom of a *negation-free stratum prefix* (see
:func:`~repro.analysis.monotone.monotone_layer_prefix`) that the parent
evaluation has already closed is still derivable at the child and is
seeded into it.  The seeded strata then run an incremental closure
whose initial delta is just the added facts (plus whatever lower
seeded strata derive freshly); rules with hypothetical premises are
re-fired in full once, since their recursion-case truth shifts between
databases.  Strata outside the prefix — or not yet closed by the
parent at spawn time — fall back to a fresh computation, so the
optimization is exactly as strong as the monotonicity proof.

``model.models_seeded`` counts child evaluations entered with a parent
snapshot available (the lattice-incremental path); the
``model.atoms_seeded`` histogram reports how many derived atoms each of
them actually inherited — 0 whenever the rulebase's monotone prefix is
empty (e.g. Example 6's parity program, whose bottom stratum is
negation-guarded), positive on negation-free programs such as the
university and chain examples.

Deletion propagation
--------------------
The mirror image of the seed: when the target database is *smaller*
than a state the engine already holds — a ``[del: ...]`` recursion
below the live parent, or a public ``model(db.without_facts(f))``
after ``model(db)`` — the model is *patched* by delete-and-rederive
(:mod:`repro.engine.dred`) instead of recomputed: untouched strata are
copied, purely-positive strata over-delete and re-derive in time
proportional to the change, and negation-/hypothesis-carrying strata
are re-closed and diffed.  ``dred.models_patched`` counts patches; the
E23 bench pins the work bound.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

from ..core.ast import Hypothetical, Negated, Positive, Premise, Rule, Rulebase
from ..core.database import Database
from ..core.errors import EvaluationError, InvariantViolation, ResourceExhausted
from ..core.parser import parse_premise
from ..core.terms import Atom, Constant, Term, Variable
from ..core.unify import Substitution, ground_instances
from ..obs.metrics import MetricsRegistry, StatsView
from ..obs.provenance import (
    NULL_PROVENANCE,
    ProvenanceRecorder,
    WhyNotReport,
    explain_absence,
)
from ..obs.trace import NULL_SPAN, NULL_TRACER, Tracer
from ..testing import failpoints as _failpoints
from .body import cost_aware_positive_order, join_mode
from .budget import NULL_BUDGET, cancelled_error, depth_error
from .delta import LayerInstruments, close_layer
from .dred import (
    DredInstruments,
    DredSource,
    OldView,
    patch_stratum,
    stratum_incremental,
    stratum_reads,
)
from .interpretation import Interpretation
from .kernels import KernelProgram, compile_mode

__all__ = ["PerfectModelEngine", "EngineStats"]

Query = Union[str, Atom, Premise]


class EngineStats(StatsView):
    """Deprecated: work counters of a :class:`PerfectModelEngine`, now a
    thin view over a :class:`~repro.obs.metrics.MetricsRegistry`
    (``model.*``); read the registry directly in new code."""

    _counter_fields = {
        "models_computed": "model.models_computed",
        "cache_hits": "model.cache_hits",
        "rule_rounds": "model.rule_rounds",
        "atoms_derived": "model.atoms_derived",
    }


class _SeedSource:
    """What a child fixpoint may inherit from the evaluation that
    spawned it: a relation reader over the parent's state, how many
    strata that state has fully closed, and the EDB facts by which the
    child database exceeds the parent's."""

    __slots__ = ("relation", "closed_layers", "additions")

    def __init__(
        self,
        relation: Callable[[str], Iterable[tuple[Term, ...]]],
        closed_layers: int,
        additions: tuple[Atom, ...],
    ) -> None:
        self.relation = relation
        self.closed_layers = closed_layers
        self.additions = additions


class _DemandEntry:
    """One query's demand state: the delegate engine evaluating the
    rewritten program, the program itself, and the databases whose
    magic facts have already been counted into ``demand.magic_facts``
    (the delegate memoizes models, so counting must not repeat)."""

    __slots__ = ("engine", "program", "counted")

    def __init__(self, engine: "PerfectModelEngine", program) -> None:
        self.engine = engine
        self.program = program
        self.counted: set[Database] = set()


class PerfectModelEngine:
    """Memoizing bottom-up evaluator for hypothetical Datalog¬.

    Parameters
    ----------
    rulebase:
        The rules.  Negation must be stratified in the classic sense
        (checked at construction); hypothetical recursion is fine and
        linearity is *not* required — this engine evaluates the full
        PSPACE language.
    max_databases:
        Safety valve: the number of distinct databases whose models may
        be materialized before :class:`EvaluationError` is raised.
        Hypothetical evaluation legitimately explores exponentially
        many databases, so runaway queries are easier to hit than in
        plain Datalog.
    memoize:
        Disable to measure the cost of memoization for the E13 ablation
        bench; leave enabled otherwise.
    optimize_joins:
        Join-planning policy for positive premises (E16 ablation);
        semantics-neutral.  ``True``/``"cost"`` orders by estimated
        binding selectivity against live relation sizes, ``"greedy"``
        keeps the legacy most-bound-first policy, ``False`` evaluates
        in textual order.
    strategy:
        Stratum-closure discipline: ``"seminaive"`` (differential, the
        default) or ``"naive"`` (exhaustive baseline for the E18
        bench).  Semantics-neutral.
    compile:
        Generated join kernels (:mod:`repro.engine.kernels`) for the
        body-evaluation hot path.  ``"auto"`` (default) enables them on
        this engine — long-lived, lattice-exploring evaluation is where
        compilation pays for itself; ``"on"`` forces, ``"off"``
        interprets every rule body.  Semantics-neutral, and work-
        counter exact where work is actually repeated: kernels yield
        the same head multiset (``model.rule_firings``) and visit the
        same negation tests (``model.negation_tests``) firing for
        firing, while recursion-case hypothetical decisions are
        memoized per (premise, database, grounding) — so
        ``model.hypothesis_expansions`` counts *distinct* expansions
        when compiled instead of one per semi-naive re-fire.  Any rule
        outside the compilable fragment falls back to interpretation
        per firing (``kernel.fallbacks``).  A cross-check fallback to
        ``strategy="naive"`` also switches compilation off: after a
        failed self-check the engine runs the most trusted path only.
    reuse_models:
        Seed child fixpoints of the database lattice from the parent
        evaluation's monotone stratum prefix (see module docstring).
        Only effective with the semi-naive strategy; semantics-neutral,
        with an automatic fall-back to fresh computation for any
        stratum that is not provably monotone.
    budget:
        A :class:`~repro.engine.budget.Budget` charged throughout every
        evaluation this engine runs (public entry points also accept a
        per-call ``budget=`` override).  Exhaustion raises
        :class:`~repro.core.errors.ResourceExhausted` with the atoms of
        the outermost in-flight model attached as a partial result.
    cross_check:
        Verify every top-level differential model against a naive
        recompute; a mismatch (or an armed ``model.invariant``
        failpoint) raises :class:`~repro.core.errors.InvariantViolation`
        internally, on which the engine *falls back once* to
        ``strategy="naive"``, bumps ``engine.fallbacks``, records a
        :class:`~repro.analysis.diagnostics.Diagnostic` in
        ``self.diagnostics``, and retries.  Off by default — it doubles
        evaluation cost.
    demand:
        Goal-directed (magic-sets) evaluation of :meth:`ask` and
        :meth:`answers` (docs/DEMAND.md).  ``"on"`` and ``"auto"``
        rewrite the rulebase per query via
        :func:`repro.analysis.magic.magic_rewrite` and evaluate the
        demanded sub-model in a delegate engine sharing this one's
        metrics; when the safety analysis rejects, the query runs
        untransformed with ``engine.demand_fallbacks`` bumped —
        ``"on"`` additionally records the rejection diagnostics in
        ``self.diagnostics``.  ``"off"`` (default) never rewrites.
        :meth:`model` is always the full perfect model.
    demand_seeds:
        Internal (set on delegate engines): maps hypothetically-called
        restricted predicates to their all-bound magic predicate, so
        recursion into a child database seeds it with the ground magic
        fact for the goal being tested.
    domain_constants:
        Internal (set on delegate engines): the constants contributed
        by the *original* rulebase, overriding this rulebase's own.
        The rewrite drops rules outside the query cone and adds seed
        constants, either of which would otherwise change
        ``dom(R, DB)`` and with it Definition 3's groundings.
    provenance:
        Record a why-provenance edge (firing rule + premise bindings,
        keyed by the database the fixpoint ran over) for every derived
        atom, enabling :meth:`why` / :meth:`assumptions` replay with
        zero re-evaluation (docs/OBSERVABILITY.md).  Off by default
        with the ``NULL_TRACER`` discipline: the disabled path holds
        :data:`~repro.obs.provenance.NULL_PROVENANCE` and hands the
        closure ``record=None``.  Enabling it disables lattice model
        reuse (seeded atoms would carry no edges) and adds recording
        cost proportional to rule firings.
    provenance_recorder:
        Internal (set on delegate engines): share the parent engine's
        :class:`~repro.obs.provenance.ProvenanceRecorder` so demanded
        evaluation records into the same DAG.
    provenance_aux:
        Internal (set on delegate engines): the demand rewrite's
        auxiliary predicates (``magic__``/``sup__``/seed), stripped
        from recorded edges so provenance explains the original
        program.
    """

    _ANCESTOR_SCAN_CAP = 4096

    def __init__(
        self,
        rulebase: Rulebase,
        *,
        max_databases: int = 200_000,
        memoize: bool = True,
        optimize_joins: bool | str = True,
        strategy: str = "seminaive",
        compile: bool | str | None = "auto",
        reuse_models: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        budget=None,
        cross_check: bool = False,
        demand: str = "off",
        demand_seeds: Optional[dict] = None,
        domain_constants: Optional[Iterable[Constant]] = None,
        provenance: bool = False,
        provenance_recorder=None,
        provenance_aux: Optional[Iterable[str]] = None,
    ) -> None:
        from ..analysis.monotone import monotone_layer_prefix
        from ..analysis.stratify import negation_strata

        if strategy not in ("naive", "seminaive"):
            raise EvaluationError(
                f"unknown evaluation strategy {strategy!r}; "
                f"expected 'naive' or 'seminaive'"
            )
        if demand not in ("auto", "on", "off"):
            raise EvaluationError(
                f"unknown demand mode {demand!r}; "
                f"expected 'auto', 'on', or 'off'"
            )
        self._rulebase = rulebase
        layers = negation_strata(rulebase)
        self._layer_rules: list[tuple[Rule, ...]] = [
            tuple(
                item
                for predicate in layer
                for item in rulebase.definition(predicate)
            )
            for layer in layers
        ]
        self._layer_predicates: list[frozenset[str]] = [
            frozenset(layer) for layer in layers
        ]
        self._predicate_layer: dict[str, int] = {
            predicate: index
            for index, layer in enumerate(layers)
            for predicate in layer
        }
        # Hypothetical-carrying rules per stratum: re-fired in full on
        # the first round of a seeded closure (recursion-case truth is
        # database-dependent; no delta witnesses the shift).
        self._refire_rules: list[tuple[Rule, ...]] = [
            tuple(
                item
                for item in rules
                if any(isinstance(p, Hypothetical) for p in item.body)
            )
            for rules in self._layer_rules
        ]
        self._seed_prefix = monotone_layer_prefix(self._layer_rules)
        # Per-stratum deletion-propagation classification: which
        # predicates can invalidate the stratum (None = any), and
        # whether DRed may patch it in place (purely positive rules).
        self._dred_reads = [
            stratum_reads(rules) for rules in self._layer_rules
        ]
        self._dred_incremental = [
            stratum_incremental(rules) for rules in self._layer_rules
        ]
        self._strategy = strategy
        self._reuse = bool(reuse_models) and strategy == "seminaive"
        self._rule_constants = (
            frozenset(domain_constants)
            if domain_constants is not None
            else frozenset(rulebase.constants())
        )
        self._cache: dict[Database, frozenset[Atom]] = {}
        # Compiled-path memo of recursion-case hypothetical decisions:
        # (premise identity, database) -> (premise, {grounding-ids ->
        # verdict}).  Truth is fixed per key because child models are
        # memoized and final; the inner dict is read inline by
        # generated kernels (see KernelRun.hyp_memo).
        self._hyp_memo: dict[tuple, tuple] = {}
        self._max_databases = max_databases
        self._memoize = memoize
        self._optimize_joins = optimize_joins
        self._join_mode = join_mode(optimize_joins)
        self._demand_mode = demand
        self._demand_seeds = dict(demand_seeds) if demand_seeds else {}
        # Per-query delegate engines (or None for counted rejections),
        # keyed by the query goal's (predicate, args): the rewritten
        # program depends on the goal's constants (the seed rule), not
        # on the database.
        self._demand_cache: dict[tuple, Optional["_DemandEntry"]] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # "auto" resolves to "on" here: this engine is long-lived and
        # explores database lattices, so kernel compilation amortizes.
        self._compile = compile_mode(compile)
        self._kernel_program = (
            KernelProgram(self.metrics) if self._compile != "off" else None
        )
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._budget = budget if budget is not None else NULL_BUDGET
        if provenance_recorder is not None:
            self._provenance = provenance_recorder
        elif provenance:
            self._provenance = ProvenanceRecorder(self.metrics)
        else:
            self._provenance = NULL_PROVENANCE
        self._prov_aux = (
            frozenset(provenance_aux) if provenance_aux else frozenset()
        )
        if self._provenance.enabled:
            # Lattice-seeded atoms arrive without derivation edges at
            # the child database, which would leave replay holes.
            self._reuse = False
        self._cross_check = bool(cross_check)
        # Interpretations of models currently being computed, outermost
        # first; harvested for partial results when evaluation is cut
        # short (frames are popped on success only).
        self._inflight: list[Interpretation] = []
        # In-flight frames by database, each mapping to its live
        # ``[interpretation, strata-closed-so-far]`` state.  Add-only
        # recursion grows the database strictly, so it cannot revisit
        # one; deletions make add/delete cycles through the lattice
        # possible.  A benign cycle (the goal's stratum already closed
        # in the in-flight evaluation) is answered from that final
        # prefix; a genuine one is refused.  Only consulted when the
        # rulebase has deletions.
        self._has_deletions = rulebase.has_deletions()
        self._inflight_dbs: dict[Database, list] = {}
        #: Diagnostics recorded by graceful-degradation events (one per
        #: naive fallback); rendered by the CLI alongside query output.
        self.diagnostics: list = []
        # Set by the one-shot naive fallback; every later query on this
        # engine announces the degradation instead of silently running
        # naive forever (see _note_degraded).
        self._degraded = False
        self._degraded_warned = False
        self.stats = EngineStats(self.metrics)
        # Counters are bound once; hot paths do a slots-attribute
        # increment, the same cost as the old stats-struct fields.
        counter = self.metrics.counter
        self._n_models = counter("model.models_computed")
        self._n_cache_hits = counter("model.cache_hits")
        self._n_cache_misses = counter("model.cache_misses")
        self._n_rounds = counter("model.rule_rounds")
        self._n_firings = counter("model.rule_firings")
        self._n_derived = counter("model.atoms_derived")
        self._n_negation = counter("model.negation_tests")
        self._n_hypo = counter("model.hypothesis_expansions")
        self._n_seeded = counter("model.models_seeded")
        self._n_fresh = counter("model.models_fresh")
        self._n_fallbacks = counter("engine.fallbacks")
        self._n_demand_fallbacks = counter("engine.demand_fallbacks")
        self._n_probes = counter("interp.index_probes")
        self._n_patched = counter("dred.models_patched")
        self._n_strata_skipped = counter("dred.strata_skipped")
        self._n_strata_incremental = counter("dred.strata_incremental")
        self._n_strata_recomputed = counter("dred.strata_recomputed")
        self._dred_instruments = DredInstruments(
            overdelete_firings=counter("dred.overdelete_firings"),
            atoms_overdeleted=counter("dred.atoms_overdeleted"),
            atoms_rederived=counter("dred.atoms_rederived"),
            rederive_checks=counter("dred.rederive_checks"),
        )
        self._h_model_size = self.metrics.histogram("model.model_size")
        self._h_delta_size = self.metrics.histogram("model.delta_size")
        self._h_atoms_seeded = self.metrics.histogram("model.atoms_seeded")

    @property
    def rulebase(self) -> Rulebase:
        return self._rulebase

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def domain(self, db: Database) -> list[Constant]:
        """``dom(R, DB)``: all constants of the rulebase and database."""
        constants = set(self._rule_constants) | set(db.constants())
        return sorted(constants, key=lambda c: (str(type(c.value)), str(c.value)))

    def model(self, db: Database, *, budget=None) -> frozenset[Atom]:
        """All ground atoms derivable from ``db`` (Definition 3 + NAF).

        ``budget`` (a :class:`~repro.engine.budget.Budget`) overrides
        the engine-level budget for this call; exhaustion raises
        :class:`~repro.core.errors.ResourceExhausted` carrying the
        atoms established so far as a partial result.
        """
        return self._run(budget, lambda: self._model(db, self.domain(db)))

    def ask(self, db: Database, query: Query, *, budget=None) -> bool:
        """Decide a query: an atom, a premise, or premise text.

        Variables in the query are read existentially; a negated
        premise ``~A`` holds iff no instance of ``A`` is derivable.
        """
        premise = self._coerce(query)
        if self._demand_mode != "off":
            entry = self._demand_delegate(db, premise)
            if entry is not None:
                try:
                    return entry.engine.holds(db, premise, budget=budget)
                finally:
                    self._absorb_delegate(entry)
        return self.holds(db, premise, budget=budget)

    def answers(
        self, db: Database, pattern: Union[str, Atom], *, budget=None
    ) -> set[tuple]:
        """All payload tuples ``t`` with ``pattern[t]`` derivable.

        >>> # answers(db, "grad(S)") -> {("tony",), ("sue",)}
        """
        if isinstance(pattern, str):
            premise = parse_premise(pattern)
            if not isinstance(premise, Positive):
                raise EvaluationError("answers() needs a plain atom pattern")
            pattern = premise.atom
        if self._demand_mode != "off":
            entry = self._demand_delegate(db, Positive(pattern))
            if entry is not None:
                try:
                    model = entry.engine.model(db, budget=budget)
                except ResourceExhausted as error:
                    if (
                        error.partial.atoms is not None
                        and error.partial.answers is None
                    ):
                        error.partial.answers = self._match_tuples(
                            error.partial.atoms, pattern
                        )
                    self._absorb_delegate(entry)
                    raise
                self._absorb_delegate(entry)
                return self._match_tuples(model, pattern)
        try:
            model = self.model(db, budget=budget)
        except ResourceExhausted as error:
            if error.partial.atoms is not None and error.partial.answers is None:
                error.partial.answers = self._match_tuples(
                    error.partial.atoms, pattern
                )
            raise
        return self._match_tuples(model, pattern)

    @staticmethod
    def _match_tuples(
        atoms: Iterable[Atom], pattern: Atom
    ) -> set[tuple]:
        variables = list(dict.fromkeys(pattern.variables()))
        results: set[tuple] = set()
        interp = Interpretation(atoms)
        for binding in interp.matches(pattern):
            results.add(
                tuple(binding[var].value for var in variables)  # type: ignore[union-attr]
            )
        return results

    def holds(self, db: Database, premise: Premise, *, budget=None) -> bool:
        """Decide one premise at a database (variables existential)."""
        domain = self.domain(db)
        if isinstance(premise, Negated):
            return self._run(
                budget,
                lambda: not self._exists(db, Positive(premise.atom), domain),
            )
        return self._run(budget, lambda: self._exists(db, premise, domain))

    # ------------------------------------------------------------------
    # Provenance: why / why-not / which hypotheses
    # ------------------------------------------------------------------

    @property
    def provenance(self):
        """The engine's recorder (:data:`NULL_PROVENANCE` when off)."""
        return self._provenance

    def why(self, db: Database, query: Query, *, budget=None):
        """A :class:`~repro.engine.proofs.Proof` of the query replayed
        from recorded provenance edges, or ``None`` if not derivable.

        Requires ``provenance=True``.  If the query was already
        evaluated by this engine the proof is pure replay — zero rule
        re-firings (``prov.edges_replayed`` counts the walk instead);
        otherwise the query is evaluated first, exactly as :meth:`ask`
        would (demand included), to populate the DAG.  Variables are
        read existentially: the proof shown is for the first derivable
        grounding.  For a hypothetical query ``A[add: B...]`` the
        returned proof derives ``A`` at the enlarged database.  The
        result verifies against :func:`~repro.engine.proofs.verify_proof`.
        """
        premise = self._coerce(query)
        self._require_provenance("why")
        if isinstance(premise, Negated):
            raise EvaluationError(
                "a negated query has no why-proof; ask why_not on its atom"
            )
        domain = self.domain(db)
        proof = self._run(budget, lambda: self._replay_any(db, premise, domain))
        if proof is None and self._holds_recorded(db, premise, budget=budget):
            proof = self._run(
                budget, lambda: self._replay_any(db, premise, domain)
            )
        if self._tracer.enabled:
            self._tracer.event(
                "provenance",
                "why",
                args={"query": str(premise), "found": proof is not None},
            )
        return proof

    def why_not(self, db: Database, query: Query, *, budget=None) -> WhyNotReport:
        """A failure witness for an underivable query
        (:class:`~repro.obs.provenance.WhyNotReport`).

        Walks every rule defining the goal's predicate against the
        *full* perfect model (demanded sub-models may lack support
        atoms a witness must cite) and reports, per rule, the first
        premise with no support — including "blocked by negation on X"
        and "no derivation in child db under [add: ...]".  Works
        whether or not recording is enabled: absence has no edges to
        replay.  A hypothetical query descends into the enlarged
        database; variables are grounded over ``dom(R, DB)`` and the
        witness shown is for the first grounding.
        """
        premise = self._coerce(query)
        if isinstance(premise, Negated):
            raise EvaluationError(
                "why_not of a negation is a why question on its atom"
            )
        domain = self.domain(db)
        report = self._run(budget, lambda: self._why_not(db, premise, domain))
        if self._tracer.enabled:
            self._tracer.event(
                "provenance",
                "why-not",
                args={"query": str(premise), "kind": report.kind},
            )
        return report

    def assumptions(
        self, db: Database, query: Query, *, budget=None
    ) -> Optional[frozenset[Atom]]:
        """The hypothetical additions a recorded derivation of the
        query actually used, or ``None`` if not derivable.

        Requires ``provenance=True``.  The set holds every leaf fact
        of the replayed derivation that is *not* in ``db`` — i.e. the
        ``[add: ...]`` facts the answer rests on — minimized per node
        over the recorded alternative edges (greedy, per-derivation;
        an empty set means the query is derivable from the database
        alone).  Existential variables resolve to the first derivable
        grounding, as in :meth:`why`.
        """
        premise = self._coerce(query)
        self._require_provenance("assumptions")
        if isinstance(premise, Negated):
            raise EvaluationError(
                "a negated query has no supporting derivation to inspect"
            )
        domain = self.domain(db)
        assumed = self._run(
            budget, lambda: self._assumptions(db, premise, domain)
        )
        if assumed is None and self._holds_recorded(db, premise, budget=budget):
            assumed = self._run(
                budget, lambda: self._assumptions(db, premise, domain)
            )
        if self._tracer.enabled:
            self._tracer.event(
                "provenance",
                "assumptions",
                args={
                    "query": str(premise),
                    "count": len(assumed) if assumed is not None else -1,
                },
            )
        return assumed

    def _require_provenance(self, what: str) -> None:
        if not self._provenance.enabled:
            raise EvaluationError(
                f"{what} needs recorded derivation edges; construct the "
                f"engine with provenance=True (see docs/OBSERVABILITY.md)"
            )

    def _holds_recorded(self, db: Database, premise: Premise, *, budget=None) -> bool:
        """Evaluate a query so its derivations land in the recorder —
        the same path :meth:`ask` takes, demand delegation included
        (the delegate shares this engine's recorder)."""
        if self._demand_mode != "off":
            entry = self._demand_delegate(db, premise)
            if entry is not None:
                try:
                    return entry.engine.holds(db, premise, budget=budget)
                finally:
                    self._absorb_delegate(entry)
        return self.holds(db, premise, budget=budget)

    def _query_groundings(
        self, db: Database, premise: Premise, domain: Sequence[Constant]
    ) -> Iterator[tuple[Atom, Database]]:
        """``(goal atom, database to explain at)`` per grounding."""
        unbound = list(dict.fromkeys(premise.variables()))
        budget = self._budget
        for grounding in ground_instances(unbound, domain):
            if budget.enabled:
                budget.poll("prov.groundings")
            grounded = premise.substitute(grounding)
            if isinstance(grounded, Hypothetical):
                yield grounded.atom, self._child_db(db, grounded)
            else:
                yield grounded.atom, db

    def _replay_any(
        self, db: Database, premise: Premise, domain: Sequence[Constant]
    ):
        for goal, target in self._query_groundings(db, premise, domain):
            proof = self._provenance.replay(self._rulebase, goal, target)
            if proof is not None:
                return proof
        return None

    def _assumptions(
        self, db: Database, premise: Premise, domain: Sequence[Constant]
    ) -> Optional[frozenset[Atom]]:
        for goal, target in self._query_groundings(db, premise, domain):
            assumed = self._provenance.assumptions(goal, target)
            if assumed is not None:
                if target is not db:
                    # A hypothetical query's own additions are
                    # assumptions too.
                    assumed |= target.facts - db.facts
                return assumed
        return None

    def _why_not(
        self, db: Database, premise: Premise, domain: Sequence[Constant]
    ) -> WhyNotReport:
        views: dict[Database, Interpretation] = {}

        def model_of(at: Database) -> Interpretation:
            view = views.get(at)
            if view is None:
                view = views[at] = Interpretation(self._model(at, domain))
            return view

        ground = next(premise.variables(), None) is None
        first: Optional[tuple[Atom, Database]] = None
        for goal, target in self._query_groundings(db, premise, domain):
            if goal in model_of(target):
                note = ""
                if target is not db:
                    note = "derivable in the child db of the hypothetical query"
                return WhyNotReport(goal, len(db), "holds", note=note)
            if first is None:
                first = (goal, target)
        if first is None:
            raise EvaluationError(
                f"cannot ground {premise} over an empty domain"
            )
        goal, target = first
        note = ""
        if target is not db:
            note = (
                "explained in the child db under "
                f"{self._delta_note(db, target)}"
            )
        elif not ground:
            note = f"shown for the grounding {goal}; no grounding is derivable"
        return explain_absence(
            self._rulebase,
            goal,
            target,
            model_of,
            domain,
            budget=self._budget,
            note=note,
        )

    @staticmethod
    def _delta_note(db: Database, target: Database) -> str:
        """Human-readable ``[add: ...][del: ...]`` delta between the
        query database and the child a hypothetical query moved to."""
        parts = []
        added = sorted(target.facts - db.facts, key=str)
        removed = sorted(db.facts - target.facts, key=str)
        if added:
            parts.append("[add: " + ", ".join(map(str, added)) + "]")
        if removed:
            parts.append("[del: " + ", ".join(map(str, removed)) + "]")
        return "".join(parts) if parts else "[no net change]"

    def clear_cache(self) -> None:
        self._cache.clear()
        self._hyp_memo.clear()

    @property
    def cached_databases(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(query: Query) -> Premise:
        if isinstance(query, str):
            return parse_premise(query)
        if isinstance(query, Atom):
            return Positive(query)
        return query

    # ------------------------------------------------------------------
    # Demand (magic-sets) delegation
    # ------------------------------------------------------------------

    def _demand_delegate(
        self, db: Database, premise: Premise
    ) -> Optional[_DemandEntry]:
        """The per-query delegate engine, or ``None`` for a counted
        fallback to full evaluation.

        Static rejections (the rewrite refused) are cached per query
        goal; the genericity check is per database — a query constant
        outside ``dom(R, DB)`` would enter the domain through the seed
        fact and ground rules the untransformed program never grounds.
        """
        goal = premise.goal
        key = (goal.predicate, goal.args, isinstance(premise, Negated))
        if key in self._demand_cache:
            entry = self._demand_cache[key]
        else:
            entry = self._demand_build(premise)
            self._demand_cache[key] = entry
        if entry is None:
            self._n_demand_fallbacks.value += 1
            return None
        if not self._demand_constants_ok(db, goal):
            self._n_demand_fallbacks.value += 1
            if self._tracer.enabled:
                self._tracer.event(
                    "demand",
                    "fallback",
                    args={"query": str(premise), "reason": "foreign-constants"},
                )
            return None
        return entry

    def _demand_build(self, premise: Premise) -> Optional[_DemandEntry]:
        from ..analysis.magic import magic_rewrite

        result = magic_rewrite(self._rulebase, premise)
        if not result.ok:
            if self._demand_mode == "on" and result.diagnostics:
                self.diagnostics.extend(result.diagnostics)
            if self._tracer.enabled:
                self._tracer.event(
                    "demand",
                    "fallback",
                    args={"query": str(premise), "reason": result.reason},
                )
            return None
        program = result.program
        assert program is not None
        self.metrics.counter("demand.rules_rewritten").value += (
            program.guarded_rules
        )
        if self._tracer.enabled:
            report = program.report
            self._tracer.event(
                "demand",
                "rewrite",
                args={
                    "query": str(premise),
                    "adornment": report.adornment,
                    "restricted": sorted(report.restricted),
                    "free": sorted(report.free),
                    "magic_rules": program.magic_rules,
                    "sup_rules": program.sup_rules,
                },
            )
        engine = PerfectModelEngine(
            program.rulebase,
            max_databases=self._max_databases,
            memoize=self._memoize,
            optimize_joins=self._optimize_joins,
            strategy=self._strategy,
            compile="off" if self._degraded else self._compile,
            reuse_models=self._reuse,
            metrics=self.metrics,
            tracer=self._tracer,
            budget=self._budget,
            demand="off",
            demand_seeds=program.bound_seeds,
            domain_constants=self._rule_constants,
            provenance_recorder=(
                self._provenance if self._provenance.enabled else None
            ),
            provenance_aux=program.demand_predicates,
        )
        return _DemandEntry(engine, program)

    def _demand_constants_ok(self, db: Database, goal: Atom) -> bool:
        constants = set(goal.constants())
        if constants <= self._rule_constants:
            return True
        return constants <= self._rule_constants | set(db.constants())

    def _absorb_delegate(self, entry: _DemandEntry) -> None:
        """Fold a delegate call's side effects back into this engine:
        degradation diagnostics, and the magic facts of any newly
        materialized model (``demand.magic_facts``)."""
        if entry.engine.diagnostics:
            self.diagnostics.extend(entry.engine.diagnostics)
            entry.engine.diagnostics.clear()
        predicates = entry.program.demand_predicates
        fresh = 0
        for cached_db, atoms in entry.engine._cache.items():
            if cached_db in entry.counted:
                continue
            entry.counted.add(cached_db)
            fresh += sum(
                1 for atom in atoms if atom.predicate in predicates
            )
        if fresh:
            self.metrics.counter("demand.magic_facts").value += fresh

    # ------------------------------------------------------------------
    # Resource governance and graceful degradation
    # ------------------------------------------------------------------

    def _run(self, budget, thunk):
        """One governed evaluation, with the naive-fallback retry.

        An :class:`InvariantViolation` (cross-check mismatch or armed
        ``model.invariant`` failpoint) triggers at most one automatic
        degradation to ``strategy="naive"``; a second violation — the
        naive engine disagreeing with itself — escapes to the caller.
        """
        if self._degraded:
            self._note_degraded()
        with self._governed(budget):
            try:
                return thunk()
            except InvariantViolation as error:
                self._fall_back(error)
                return thunk()

    @property
    def degraded(self) -> bool:
        """True once a failed self-check has forced the permanent
        fallback to ``strategy="naive"`` (kernels off, reuse off)."""
        return self._degraded

    def _note_degraded(self) -> None:
        """Announce that a query is being served by a degraded engine.

        The one-shot fallback used to be silent after the query that
        triggered it: every later query ran naive (slower, no kernels,
        no lattice reuse) with nothing telling the caller why.  Now
        each degraded query bumps ``engine.degraded_queries``, traces a
        ``degraded`` event, and the first one records an
        ``engine-degraded`` diagnostic.
        """
        self.metrics.counter("engine.degraded_queries").value += 1
        if self._tracer.enabled:
            self._tracer.event(
                "fallback", "degraded", args={"strategy": self._strategy}
            )
        if not self._degraded_warned:
            from ..analysis.diagnostics import Diagnostic

            self._degraded_warned = True
            self.diagnostics.append(
                Diagnostic(
                    code="engine-degraded",
                    message=(
                        "engine remains degraded to strategy='naive' after "
                        "an earlier failed self-check; differential "
                        "evaluation, compiled kernels, and lattice reuse "
                        "stay disabled for the life of this engine"
                    ),
                    severity="warning",
                )
            )

    @contextmanager
    def _governed(self, budget):
        """Activate a budget for the duration of one public entry call.

        Converts ``KeyboardInterrupt`` / ``RecursionError`` into
        :class:`ResourceExhausted` and attaches the outermost in-flight
        model's atoms as the partial result, so no evaluation path can
        lose work or escape with a raw interpreter error.
        """
        previous = self._budget
        active = budget if budget is not None else previous
        active.begin()
        self._budget = active
        try:
            yield active
        except ResourceExhausted as error:
            self._note_exhaustion(error)
            raise
        except KeyboardInterrupt:
            error = cancelled_error(active)
            self._note_exhaustion(error)
            raise error from None
        except RecursionError:
            error = depth_error(active)
            self._note_exhaustion(error)
            raise error from None
        finally:
            self._budget = previous
            self._inflight.clear()
            self._inflight_dbs.clear()

    def _note_exhaustion(self, error: ResourceExhausted) -> None:
        if self._inflight:
            error.partial.merge_missing(atoms=self._inflight[0].to_frozenset())
        self.metrics.counter("budget.exhausted").value += 1
        if self._tracer.enabled:
            self._tracer.event(
                "budget",
                error.reason,
                args={"site": error.site, "steps": error.partial.steps},
            )

    def _fall_back(self, error: InvariantViolation) -> None:
        """Degrade to the naive strategy once, rather than crash or
        return answers a failed self-check has cast doubt on."""
        if self._strategy == "naive":
            raise error
        from ..analysis.diagnostics import Diagnostic

        self._strategy = "naive"
        self._reuse = False
        self._degraded = True
        # Run the most trusted path only: interpreted bodies, no
        # generated code, until the caller replaces the engine.
        self._kernel_program = None
        self._cache.clear()
        self._hyp_memo.clear()
        self._inflight.clear()
        self._inflight_dbs.clear()
        self._n_fallbacks.value += 1
        self.diagnostics.append(
            Diagnostic(
                code="engine-fallback",
                message=(
                    "differential evaluation failed an internal "
                    f"self-check ({error}); re-evaluating with "
                    "strategy='naive'"
                ),
                severity="warning",
            )
        )
        if self._tracer.enabled:
            self._tracer.event("fallback", "naive", args={"cause": str(error)})

    def _verify_model(self, db: Database, result: frozenset[Atom]) -> None:
        """The differential engine's self-check at a top-level model.

        Recomputes the model with a fresh naive engine and raises
        :class:`InvariantViolation` on divergence.  An armed
        ``model.invariant`` failpoint fires here too, so the fallback
        path is testable without constructing a real divergence.
        """
        if self._strategy != "seminaive":
            return  # nothing differential to distrust on the naive path
        if _failpoints.enabled:
            _failpoints.trigger("model.invariant")
        if not self._cross_check:
            return
        reference = PerfectModelEngine(
            self._rulebase,
            max_databases=self._max_databases,
            memoize=self._memoize,
            optimize_joins=False,
            strategy="naive",
            compile="off",  # diverse redundancy: interpret the reference
            reuse_models=False,
            budget=self._budget,
            demand_seeds=self._demand_seeds,
            domain_constants=self._rule_constants,
        ).model(db)
        if reference != result:
            missing = len(reference - result)
            extra = len(result - reference)
            raise InvariantViolation(
                "differential model diverged from the naive reference "
                f"at db[{len(db)}]: {missing} atom(s) missing, "
                f"{extra} spurious"
            )

    @staticmethod
    def _child_db(db: Database, grounded: Hypothetical) -> Database:
        """The database a grounded hypothetical premise moves to:
        ``(db − deletions) + additions``, deletions first (the paper's
        ``R, (DB − {C}) + {B} |- A``), normalized so a net no-op
        returns ``db`` *itself*.  Identity matters: the collapse test
        is ``child is db``, and a ``[del: f][add: f]`` round trip
        produces an equal-but-distinct object that would otherwise
        recurse into "fresh" copies of the same database forever.
        """
        if not grounded.deletions:
            return db.with_facts(*grounded.additions)
        db2 = db.without_facts(*grounded.deletions).with_facts(
            *grounded.additions
        )
        if db2 is not db and len(db2) == len(db) and db2 == db:
            return db
        return db2

    def _exists(self, db: Database, premise: Premise, domain) -> bool:
        """Is some grounding of the premise derivable at ``db``?"""
        if isinstance(premise, Positive):
            goal = premise.atom
            model = self._model(db, domain)
            if goal.is_ground:
                return goal in model
            return Interpretation(model).has_match(goal)
        if isinstance(premise, Hypothetical):
            trace = self._tracer
            budget = self._budget
            unbound = list(dict.fromkeys(premise.variables()))
            for binding in ground_instances(unbound, domain):
                if budget.enabled:
                    budget.poll("model.exists")
                grounded = premise.substitute(binding)
                db2 = self._child_db(db, grounded)
                self._n_hypo.value += 1
                ctx = (
                    trace.span("hypothesis", str(grounded), src=premise.span)
                    if trace.enabled
                    else NULL_SPAN
                )
                with ctx:
                    model = self._model(db2, domain)
                if grounded.atom in model:
                    return True
            return False
        raise EvaluationError(f"cannot decide premise {premise}")

    def _ancestor_seed(self, db: Database) -> Optional[_SeedSource]:
        """A seed source from the largest cached strict-subset database.

        Covers the public incremental-recomputation pattern
        (``model(db)`` then ``model(db.with_facts(...))``); during
        lattice recursion the live parent is passed directly instead.
        """
        if not self._seed_prefix or not self._cache:
            return None
        if len(self._cache) > self._ANCESTOR_SCAN_CAP:
            return None
        best: Optional[Database] = None
        size = len(db)
        for other in self._cache:
            if len(other) < size and (best is None or len(other) > len(best)):
                if other <= db:
                    best = other
        if best is None:
            return None
        relations: dict[str, list[tuple[Term, ...]]] = {}
        for item in self._cache[best]:
            relations.setdefault(item.predicate, []).append(item.args)
        additions = tuple(db.facts - best.facts)
        return _SeedSource(
            lambda predicate: relations.get(predicate, ()),
            len(self._layer_rules),
            additions,
        )

    def _dred_ancestor(
        self, db: Database, domain: Sequence[Constant]
    ) -> Optional[DredSource]:
        """A deletion-propagation source from the smallest cached
        strict-superset database — the public retract pattern
        (``model(db)`` then ``model(db.without_facts(f))``).

        Guarded on domain equality: a removed fact can take constants
        out of ``dom(R, DB)``, which changes how unbound head variables
        ground, and then the superset's model speaks a different
        language than the one to compute.
        """
        if not self._reuse or not self._cache:
            return None
        if len(self._cache) > self._ANCESTOR_SCAN_CAP:
            return None
        best: Optional[Database] = None
        size = len(db)
        for other in self._cache:
            if len(other) > size and (best is None or len(other) < len(best)):
                if db <= other:
                    best = other
        if best is None:
            return None
        if self.domain(best) != list(domain):
            return None
        relations: dict[str, list[tuple[Term, ...]]] = {}
        for item in self._cache[best]:
            relations.setdefault(item.predicate, []).append(item.args)
        removed = tuple(best.facts - db.facts)
        return DredSource(
            lambda predicate: relations.get(predicate, ()),
            len(self._layer_rules),
            removed,
            (),
        )

    def _model(
        self,
        db: Database,
        domain: Sequence[Constant],
        parent: Optional[_SeedSource] = None,
        dred: Optional[DredSource] = None,
    ) -> frozenset[Atom]:
        cached = self._cache.get(db)
        if cached is not None:
            self._n_cache_hits.value += 1
            return cached
        if self._has_deletions and db in self._inflight_dbs:
            # Backstop only: goal-aware recursion resolves benign
            # cycles in _hyp_recurse before reaching here.
            raise EvaluationError(
                "hypothetical add/delete premises form a cycle through "
                f"the database db[{len(db)}]: its whole model is needed "
                "while it is still being computed.  Bottom-up "
                "evaluation computes whole models per database and "
                "cannot resolve cross-database circular support; "
                "evaluate this query with the top-down engine"
            )
        if len(self._cache) >= self._max_databases:
            raise EvaluationError(
                f"hypothetical evaluation touched more than "
                f"{self._max_databases} databases; raise max_databases "
                f"if this is intended"
            )
        self._n_cache_misses.value += 1
        self._n_models.value += 1
        budget = self._budget
        if budget.enabled:
            budget.charge("model.models_computed")
        trace = self._tracer
        ctx = (
            trace.span("model", f"db[{len(db)}]")
            if trace.enabled
            else NULL_SPAN
        )
        top = not self._inflight
        record = (
            self._provenance.sink(db, aux=self._prov_aux)
            if self._provenance.enabled
            else None
        )
        with ctx:
            interp = Interpretation(db)
            interp.probes = self._n_probes
            self._inflight.append(interp)
            if self._has_deletions:
                self._inflight_dbs[db] = [interp, 0]
            if self._reuse and parent is None:
                parent = self._ancestor_seed(db)
                if parent is None and dred is None:
                    dred = self._dred_ancestor(db, domain)
            if parent is None and dred is not None and record is None:
                self._dred_fill(db, domain, interp, dred)
            else:
                seed_limit = 0
                # ``fresh`` is the running delta for seeded strata: the
                # new EDB facts plus atoms lower seeded strata derive
                # beyond the parent's state.
                fresh = Interpretation()
                if parent is not None:
                    seed_limit = min(parent.closed_layers, self._seed_prefix)
                    seeded_atoms = 0
                    for k in range(seed_limit):
                        for predicate in self._layer_predicates[k]:
                            seeded_atoms += interp.add_rows(
                                predicate, parent.relation(predicate)
                            )
                    for item in parent.additions:
                        fresh.add(item)
                    self._n_seeded.value += 1
                    self._h_atoms_seeded.observe(seeded_atoms)
                else:
                    self._n_fresh.value += 1
                for index, rules in enumerate(self._layer_rules):
                    stratum_ctx = (
                        trace.span(
                            "stratum", str(index), args={"rules": len(rules)}
                        )
                        if trace.enabled
                        else NULL_SPAN
                    )
                    with stratum_ctx:
                        seeded = index < seed_limit
                        new = self._close_layer(
                            rules,
                            interp,
                            db,
                            domain,
                            index,
                            seed_delta=fresh if seeded else None,
                            refire=self._refire_rules[index] if seeded else (),
                            record=record,
                        )
                        if index + 1 < seed_limit:
                            fresh.update(new)
                    if self._has_deletions:
                        self._inflight_dbs[db][1] = index + 1
            program = self._kernel_program
            result = (
                program.freeze(interp)
                if program is not None
                else interp.to_frozenset()
            )
        self._inflight.pop()
        if self._has_deletions:
            self._inflight_dbs.pop(db, None)
        self._h_model_size.observe(len(result))
        if self._memoize:
            self._cache[db] = result
        if top and (self._cross_check or _failpoints.enabled):
            self._verify_model(db, result)
        return result

    def _dred_fill(
        self,
        db: Database,
        domain: Sequence[Constant],
        interp: Interpretation,
        source: DredSource,
    ) -> None:
        """Fill ``interp`` with the model at ``db`` by patching the
        pre-change state in ``source`` (delete-and-rederive) instead of
        running the fixpoint from scratch.

        Strata the source has closed are skipped (no relevant change),
        DRed-patched (purely positive), or re-closed and diffed
        (negation / hypothetical premises); strata beyond
        ``source.closed_layers`` — a live parent interrupted
        mid-evaluation — are computed fresh.  The predicate-level
        removed/added accumulators start from the EDB diff and are
        replaced per stratum with the *extension* diff, so only net
        changes propagate upward.
        """
        old = OldView(source.relation)
        removed_acc: dict[str, set[Atom]] = {}
        added_acc: dict[str, set[Atom]] = {}
        for item in source.removed:
            removed_acc.setdefault(item.predicate, set()).add(item)
        for item in source.added:
            added_acc.setdefault(item.predicate, set()).add(item)
        self._n_patched.value += 1
        trace = self._tracer
        if trace.enabled:
            trace.event(
                "dred",
                "patch",
                args={
                    "db": len(db),
                    "removed": len(source.removed),
                    "added": len(source.added),
                    "closed_layers": source.closed_layers,
                },
            )
        fresh_from = min(source.closed_layers, len(self._layer_rules))
        for index, rules in enumerate(self._layer_rules):
            predicates = self._layer_predicates[index]
            stratum_ctx = (
                trace.span("stratum", str(index), args={"rules": len(rules)})
                if trace.enabled
                else NULL_SPAN
            )
            with stratum_ctx:
                if index >= fresh_from:
                    # The source never closed this stratum; nothing to
                    # patch against.  (Only live parents end here — a
                    # cached model has every stratum closed.)
                    self._close_layer(rules, interp, db, domain, index)
                    self._n_strata_recomputed.value += 1
                    diff = False
                else:
                    reads = self._dred_reads[index]
                    touched = reads is None or any(
                        removed_acc.get(predicate) or added_acc.get(predicate)
                        for predicate in (reads | predicates)
                    )
                    if not touched:
                        for predicate in predicates:
                            interp.add_rows(predicate, old.rows(predicate))
                        self._n_strata_skipped.value += 1
                        diff = False
                    elif self._dred_incremental[index]:
                        deleted, seed = patch_stratum(
                            rules,
                            predicates,
                            old,
                            interp,
                            db,
                            domain,
                            removed_acc,
                            added_acc,
                            optimize=self._join_mode == "greedy",
                            instruments=self._dred_instruments,
                            budget=self._budget,
                        )
                        self._close_layer(
                            rules, interp, db, domain, index, seed_delta=seed
                        )
                        self._n_strata_incremental.value += 1
                        diff = True
                    else:
                        # Negation or hypotheses: anti-monotone under
                        # the change — re-close in full over the
                        # patched lower strata, then diff to keep
                        # propagating.
                        self._close_layer(rules, interp, db, domain, index)
                        self._n_strata_recomputed.value += 1
                        diff = True
                if diff:
                    for predicate in predicates:
                        old_rows = old.rows(predicate)
                        new_rows = interp.relation(predicate)
                        removed_acc[predicate] = {
                            Atom(predicate, args)
                            for args in old_rows - new_rows
                        }
                        added_acc[predicate] = {
                            Atom(predicate, args)
                            for args in new_rows - old_rows
                        }
            state = self._inflight_dbs.get(db)
            if state is not None:
                state[1] = index + 1

    def _close_layer(
        self,
        rules: tuple[Rule, ...],
        interp: Interpretation,
        db: Database,
        domain: Sequence[Constant],
        layer_index: int,
        seed_delta: Optional[Interpretation] = None,
        refire: Sequence[Rule] = (),
        record=None,
    ) -> Interpretation:
        plan = None
        if self._join_mode == "cost":
            domain_size = len(domain)

            def plan(positives, bound):
                return cost_aware_positive_order(
                    positives, bound, interp.count, domain_size
                )

        n_negation = self._n_negation

        def negated(pattern: Atom, current: Substitution) -> bool:
            n_negation.value += 1
            return not interp.has_match(pattern, current)

        def hypothetical(
            premise: Hypothetical, current: Substitution
        ) -> Iterator[Substitution]:
            return self._expand_hypothetical(
                premise, current, db, interp, domain, layer_index
            )

        def hypothetical_delta(
            premise: Hypothetical, current: Substitution, delta: Interpretation
        ) -> Iterator[Substitution]:
            return self._expand_hypothetical_delta(
                premise, current, delta, db, domain
            )

        kernels = None
        if self._kernel_program is not None:
            memo = self._hyp_memo

            def hyp_memo(premise) -> dict:
                # One decision dict per (premise, database); generated
                # code probes it inline in int space, so memo hits pay
                # no Python call at all.  The value tuple keeps the
                # premise alive so its id cannot be recycled.
                key = (id(premise), db)
                found = memo.get(key)
                if found is None or found[0] is not premise:
                    found = memo[key] = (premise, {})
                return found[1]

            def hyp_call(premise, pvars, ids, decode) -> bool:
                # The compiled recursion-case guard, reached only on a
                # hyp_memo miss: generated code has already decided the
                # collapse test in int space and hands over only
                # instances that enlarge the database.  Recursion-case
                # truth is fixed per (instance, db) — the child model
                # is memoized and final — so the verdict is stored back
                # into the kernel-visible memo instead of re-deriving
                # the child database on every semi-naive re-fire.
                grounding = {
                    var: decode[ident] for var, ident in zip(pvars, ids)
                }
                grounded = premise.substitute(grounding)
                db2 = self._child_db(db, grounded)
                if db2 is db:
                    # Collapse case: decided inline by the kernel; kept
                    # as an unmemoized guard (depends on the
                    # still-growing interpretation).
                    return grounded.atom in interp
                found = self._hyp_recurse(
                    grounded, db2, db, interp, domain, layer_index,
                    premise.span,
                )
                hyp_memo(premise)[ids] = found
                return found

            kernels = self._kernel_program.run(
                interp=interp,
                db=db,
                domain=domain,
                plan=plan,
                optimize=self._join_mode == "greedy",
                record=record,
                negation=self._n_negation,
                probes=self._n_probes,
                hyp_call=hyp_call,
                hyp_memo=hyp_memo,
            )

        return close_layer(
            rules,
            interp,
            domain,
            hypothetical=hypothetical,
            hypothetical_delta=hypothetical_delta,
            negated=negated,
            strategy=self._strategy,
            seed_delta=seed_delta,
            refire_full=refire,
            plan=plan,
            optimize=self._join_mode == "greedy",
            instruments=LayerInstruments(
                rounds=self._n_rounds,
                firings=self._n_firings,
                derived=self._n_derived,
                delta_size=self._h_delta_size,
            ),
            tracer=self._tracer,
            budget=self._budget,
            record=record,
            kernels=kernels,
        )

    def _expand_hypothetical(
        self,
        premise: Hypothetical,
        binding: Substitution,
        db: Database,
        interp: Interpretation,
        domain: Sequence[Constant],
        layer_index: int,
    ) -> Iterator[Substitution]:
        """Bindings under which ``A[add: B...]`` holds at ``db``.

        Free variables of the premise are grounded over the domain
        (Definition 3).  When the additions are already present the
        premise collapses to ``A`` inside the current fixpoint; when
        they are new the engine recurses into the enlarged database,
        handing the child a seed source over this evaluation's state
        (strata below ``layer_index`` are closed, hence quiescent).
        """
        unbound = [
            var for var in dict.fromkeys(premise.variables()) if var not in binding
        ]
        for grounding in ground_instances(unbound, domain, binding):
            grounded = premise.substitute(grounding)
            db2 = self._child_db(db, grounded)
            if db2 is db:
                if grounded.atom in interp:
                    yield grounding
            elif self._hyp_recurse(
                grounded, db2, db, interp, domain, layer_index, premise.span
            ):
                yield grounding

    def _hyp_recurse(
        self,
        grounded: Hypothetical,
        db2: Database,
        db: Database,
        interp: Interpretation,
        domain: Sequence[Constant],
        layer_index: int,
        span=None,
    ) -> bool:
        """Decide one recursion-case instance ``A[add: B...]`` at ``db``.

        Shared by the interpreted expansion above and the compiled
        kernels' guarded call-back (:mod:`repro.engine.kernels`), so
        demand seeding, lattice-seed construction, the ``hypothesis``
        trace span, and the ``model.hypothesis_expansions`` counter are
        identical on both paths by construction.
        """
        if self._has_deletions:
            state = self._inflight_dbs.get(db2)
            if state is not None:
                self._n_hypo.value += 1
                return self._inflight_goal(grounded.atom, state)
        added = grounded.additions
        if self._demand_seeds:
            # Demand delegate: static magic propagation cannot survive
            # a non-monotone prefix flipping off in the child
            # (docs/DEMAND.md), so the demand for the hypothetically-
            # tested goal is injected as a ground magic fact of the
            # enlarged database.
            seed = self._demand_seeds.get(grounded.atom.predicate)
            if seed is not None:
                magic_fact = Atom(seed, grounded.atom.args)
                db2 = db2.with_facts(magic_fact)
                added = added + (magic_fact,)
        self._n_hypo.value += 1
        parent = None
        dred = None
        if self._reuse:
            if (
                not grounded.deletions
                or db.without_facts(*grounded.deletions) is db
            ):
                # Child is a superset: the monotone-prefix seed holds.
                additions = tuple(item for item in added if item not in db)
                parent = _SeedSource(
                    interp.relation_rows, layer_index, additions
                )
            else:
                # A deletion took effect: the child database is not
                # above this one in the lattice, so seed atoms are not
                # guaranteed derivable there.  Patch downward instead:
                # the strata below ``layer_index`` are closed at the
                # parent, and both states share this query's domain.
                removed = tuple(db.facts - db2.facts)
                added_facts = tuple(db2.facts - db.facts)
                dred = DredSource(
                    interp.relation_rows, layer_index, removed, added_facts
                )
        trace = self._tracer
        ctx = (
            trace.span("hypothesis", str(grounded), src=span)
            if trace.enabled
            else NULL_SPAN
        )
        with ctx:
            model = self._model(db2, domain, parent, dred)
        return grounded.atom in model

    def _inflight_goal(self, goal: Atom, state: list) -> bool:
        """Resolve a recursion into a database whose model is still
        being computed (an add/delete cycle through the lattice).

        Strata close in order, and a closed stratum's extension is
        final — so when the goal's stratum is already closed in the
        in-flight evaluation, membership there IS the model's answer
        and the cycle is benign.  (EDB-only predicates have no stratum
        and are final from the start.)  A goal in a stratum at or above
        the in-flight frontier has genuinely circular support, which
        whole-model evaluation cannot resolve; refuse with a pointer at
        the engine that can.
        """
        interp2, closed = state
        layer = self._predicate_layer.get(goal.predicate)
        if layer is None or layer < closed:
            return goal in interp2
        raise EvaluationError(
            "hypothetical add/delete premises form a cycle through a "
            f"database whose model is still being computed, and the "
            f"goal {goal} sits in a stratum not yet closed there.  "
            "Bottom-up evaluation computes whole models per database "
            "and cannot resolve cross-database circular support; "
            "evaluate this query with the top-down engine"
        )

    def _expand_hypothetical_delta(
        self,
        premise: Hypothetical,
        binding: Substitution,
        delta: Interpretation,
        db: Database,
        domain: Sequence[Constant],
    ) -> Iterator[Substitution]:
        """Delta-restricted expansion: collapse-case instances only.

        Within one stratum closure only the collapse case of a
        hypothetical premise (``db + additions == db``, so the premise
        is its goal atom inside the current fixpoint) can change as the
        stratum grows; recursion-case truth is fixed.  An instance is
        relevant iff its goal atom is in the delta.
        """
        unbound = [
            var for var in dict.fromkeys(premise.variables()) if var not in binding
        ]
        for grounding in ground_instances(unbound, domain, binding):
            grounded = premise.substitute(grounding)
            if grounded.atom not in delta:
                continue
            if self._child_db(db, grounded) is db:
                yield grounding
