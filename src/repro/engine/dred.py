"""Deletion propagation for the bottom-up model engine (DRed).

PR 3's differential machinery (:mod:`repro.engine.delta`) maintains a
model under *additions*: a child fixpoint starts from a parent state
and closes with the new facts as the seed delta.  This module is the
reverse direction — given a complete model at ``DB`` and a change to
``DB' = DB − removed + added``, patch the model instead of recomputing
it, in time proportional to the change.  It is the engine behind

* ``model(db.without_facts(f))`` after ``model(db)`` — the
  :class:`~repro.engine.model.PerfectModelEngine` finds the cached
  superset model and patches it (a REPL/server retract);
* first-class ``[del: ...]`` premises — a recursion-case instance at a
  *smaller* database patches the live parent state downward instead of
  evaluating the child from scratch.

The algorithm is delete-and-rederive (Gupta-Mumick-Subrahmanian),
specialized to the stratified shape of the model engine.  Strata are
processed bottom-up and classified per change:

* **skipped** — no predicate the stratum reads or defines changed: the
  old extension is copied wholesale (O(#rows) set adoption, no rule
  fires).
* **incremental** — the stratum's rules are purely positive: run DRed
  proper.  *Over-delete* fires each rule with one premise restricted
  to the deleted delta and the rest against the *pre-change* state —
  the exact mirror image of the semi-naive discipline, through the
  same :func:`~repro.engine.delta.rule_firings` helper — collecting
  every derivation a deleted atom supported.  Atoms with remaining EDB
  support (present in ``DB'``) are never deleted.  *Re-derive* then
  checks each over-deleted atom for an alternative derivation from the
  surviving state; this is where the support accounting lives — an
  atom's support is counted *at deletion time* against the new state
  (first surviving derivation wins), because persistent per-atom
  derivation counters are unsound under the set-at-a-time semi-naive
  closure (a derivation may be enumerated once per delta-restricted
  premise, so stored counts carry multiplicity noise).  Finally the
  stratum re-enters :func:`~repro.engine.delta.close_layer` with
  ``seed_delta`` = re-derived atoms + additions, which transitively
  restores everything downstream of a survivor.
* **recomputed** — the stratum carries negation or hypothetical
  premises: its extension can grow under deletion (an anti-monotone
  stratum; see :mod:`repro.analysis.monotone`), so it is re-closed in
  full against the already-patched lower strata and the old/new
  extensions are diffed to keep propagating upward.  Deletions *and*
  additions flow through every boundary: a lower-stratum deletion can
  add atoms through negation, and vice versa.

The patched model is bit-for-bit the model a fresh fixpoint would
compute — ``PerfectModelEngine(cross_check=True)`` verifies exactly
that, and the E23 bench (``benchmarks/bench_e23_dred.py``) pins the
work bound: a 1-fact retract re-answers with a small fraction of the
full fixpoint's rule firings.  See docs/INCREMENTAL.md.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from ..core.ast import Hypothetical, Negated, Positive, Rule
from ..core.database import Database
from ..core.errors import EvaluationError
from ..core.terms import Atom, Constant, Term
from ..core.unify import Substitution, match_args
from .body import nonlocal_variables, satisfy_body
from .budget import NULL_BUDGET
from .delta import delta_sources, rule_firings
from .interpretation import Interpretation

__all__ = [
    "DredInstruments",
    "DredSource",
    "OldView",
    "patch_stratum",
    "stratum_incremental",
    "stratum_reads",
]


class DredSource:
    """The pre-change model a patch starts from.

    ``relation`` reads the old model's rows per predicate (a cached
    frozenset model or a live parent
    :class:`~repro.engine.interpretation.Interpretation`);
    ``closed_layers`` says how many bottom-up strata of that state are
    complete — higher strata are recomputed fresh.  ``removed`` and
    ``added`` are the EDB-level diff from the old database to the new
    one.
    """

    __slots__ = ("relation", "closed_layers", "removed", "added")

    def __init__(
        self,
        relation: Callable[[str], Iterable[tuple[Term, ...]]],
        closed_layers: int,
        removed: tuple[Atom, ...],
        added: tuple[Atom, ...],
    ) -> None:
        self.relation = relation
        self.closed_layers = closed_layers
        self.removed = removed
        self.added = added


class DredInstruments:
    """Bound counters a patch increments; all optional (see
    :class:`~repro.engine.delta.LayerInstruments` for the discipline)."""

    __slots__ = (
        "overdelete_firings",
        "atoms_overdeleted",
        "atoms_rederived",
        "rederive_checks",
    )

    def __init__(
        self,
        overdelete_firings=None,
        atoms_overdeleted=None,
        atoms_rederived=None,
        rederive_checks=None,
    ) -> None:
        self.overdelete_firings = overdelete_firings
        self.atoms_overdeleted = atoms_overdeleted
        self.atoms_rederived = atoms_rederived
        self.rederive_checks = rederive_checks


class OldView:
    """Lazy pattern-matching view over the pre-change model.

    Per-predicate rows are pulled from the source reader on first use
    and indexed in an :class:`Interpretation`, so a patch touching two
    strata never materializes the relations it does not read.
    """

    __slots__ = ("_relation", "_interp", "_loaded")

    def __init__(self, relation: Callable[[str], Iterable]) -> None:
        self._relation = relation
        self._interp = Interpretation()
        self._loaded: set[str] = set()

    def _load(self, predicate: str) -> None:
        if predicate not in self._loaded:
            self._loaded.add(predicate)
            self._interp.add_rows(predicate, self._relation(predicate))

    def matches(self, pattern: Atom, binding=None):
        self._load(pattern.predicate)
        return self._interp.matches(pattern, binding)

    def rows(self, predicate: str) -> frozenset[tuple[Term, ...]]:
        self._load(predicate)
        return self._interp.relation(predicate)

    def __contains__(self, item: Atom) -> bool:
        self._load(item.predicate)
        return item in self._interp


def stratum_reads(rules: Sequence[Rule]) -> Optional[frozenset[str]]:
    """The predicates whose change can affect this stratum's rules, or
    ``None`` when the stratum must be considered touched by *any*
    change (a hypothetical premise explores whole child models, whose
    truth may shift with any fact)."""
    reads: set[str] = set()
    for item in rules:
        for premise in item.body:
            if isinstance(premise, Hypothetical):
                return None
            reads.add(premise.goal.predicate)
    return frozenset(reads)


def stratum_incremental(rules: Sequence[Rule]) -> bool:
    """True iff every premise is positive — the fragment DRed patches
    in place.  Negation and hypothetical premises force a recompute of
    the stratum (their truth is anti-monotone under deletion)."""
    return all(
        isinstance(premise, Positive) for item in rules for premise in item.body
    )


def _no_negated(pattern: Atom, current: Substitution) -> bool:
    raise EvaluationError(
        f"deletion propagation fired a negated premise ~{pattern} in an "
        f"incremental stratum; stratum classification is broken"
    )


def _no_hypothetical(premise, current):
    raise EvaluationError(
        f"deletion propagation fired a hypothetical premise {premise} in "
        f"an incremental stratum; stratum classification is broken"
    )


def patch_stratum(
    rules: tuple[Rule, ...],
    predicates: frozenset[str],
    old: OldView,
    interp: Interpretation,
    db_new: Database,
    domain: Sequence[Constant],
    removed: dict[str, set[Atom]],
    added: dict[str, set[Atom]],
    *,
    optimize: bool = False,
    plan=None,
    instruments: Optional[DredInstruments] = None,
    budget=NULL_BUDGET,
) -> tuple[set[Atom], Interpretation]:
    """DRed one purely-positive stratum; returns ``(deleted, seed)``.

    On entry ``interp`` holds the patched state of every lower stratum
    over ``db_new``; on exit it additionally holds this stratum's old
    extension minus the over-deleted atoms plus the directly re-derived
    ones.  The caller must then run the seeded closure
    (:func:`~repro.engine.delta.close_layer` with ``seed_delta=seed``)
    to restore derivations that chain through a re-derived or added
    atom, and afterwards diff ``deleted`` against the closed ``interp``
    to see which deletions stuck.

    ``removed``/``added`` map predicates to the net atom-level changes
    accumulated from the EDB diff and the lower strata.
    """
    reads: set[str] = set()
    prep = []
    for item in rules:
        reads.update(premise.goal.predicate for premise in item.body)
        prep.append(
            (
                item,
                set(item.head.variables()),
                nonlocal_variables(item),
                delta_sources(item),
            )
        )
    relevant = reads | predicates

    # Everything already known to be gone: retracted EDB facts of this
    # stratum's own predicates, and lower-stratum/EDB removals start
    # the over-delete frontier.
    deleted: set[Atom] = set()
    frontier = Interpretation()
    for predicate, atoms in removed.items():
        if predicate in relevant:
            for item in atoms:
                frontier.add(item)
        if predicate in predicates:
            deleted.update(atoms)

    n_overdelete = n_deleted = n_checks = n_rederived = None
    if instruments is not None:
        n_overdelete = instruments.overdelete_firings
        n_deleted = instruments.atoms_overdeleted
        n_checks = instruments.rederive_checks
        n_rederived = instruments.atoms_rederived
    governed = budget.enabled

    # -- over-delete: enumerate the derivations the frontier killed ----
    while len(frontier):
        if governed:
            budget.poll("dred.round")
        candidates: list[Atom] = []
        for item, head_variables, guards, sources in prep:
            for target in sources:
                if not frontier.count(target.goal.predicate):
                    continue
                for head in rule_firings(
                    item,
                    head_variables,
                    guards,
                    target,
                    frontier,
                    positive=old.matches,
                    hypothetical=_no_hypothetical,
                    negated=_no_negated,
                    domain=domain,
                    optimize=optimize,
                    plan=plan,
                ):
                    if n_overdelete is not None:
                        n_overdelete.value += 1
                    if governed:
                        budget.charge("dred.firings")
                    candidates.append(head)
        frontier = Interpretation()
        for head in candidates:
            if head in deleted:
                continue
            if head in db_new:
                continue  # EDB support in the new database survives
            if head not in old:
                continue  # never was derived; nothing to delete
            deleted.add(head)
            frontier.add(head)
            if n_deleted is not None:
                n_deleted.value += 1

    # -- copy the survivors of the old extension -----------------------
    dead_rows: dict[str, set[tuple[Term, ...]]] = {}
    for item in deleted:
        dead_rows.setdefault(item.predicate, set()).add(item.args)
    for predicate in predicates:
        rows = old.rows(predicate)
        dead = dead_rows.get(predicate)
        if dead:
            interp.add_rows(
                predicate, (args for args in rows if args not in dead)
            )
        else:
            interp.add_rows(predicate, rows)

    # -- re-derive: alternative support against the surviving state ----
    definitions: dict[str, list] = {}
    for entry in prep:
        definitions.setdefault(entry[0].head.predicate, []).append(entry)
    seed = Interpretation()
    for item in sorted(deleted, key=str):
        if governed:
            budget.poll("dred.rederive")
        for rule, _head_variables, guards, _sources in definitions.get(
            item.predicate, ()
        ):
            binding = match_args(rule.head.args, item.args)
            if binding is None:
                continue
            if n_checks is not None:
                n_checks.value += 1
            alive = next(
                satisfy_body(
                    rule.body,
                    positive=interp.matches,
                    hypothetical=_no_hypothetical,
                    negated=_no_negated,
                    binding=binding,
                    ground_first=guards,
                    domain=domain,
                    optimize=optimize,
                    plan=plan,
                ),
                None,
            )
            if alive is not None:
                interp.add(item)
                seed.add(item)
                if n_rederived is not None:
                    n_rederived.value += 1
                break

    # Additions this stratum can consume enter through the seed delta:
    # re-asserted EDB facts of its own predicates are already in the
    # interpretation's base, lower-stratum additions were added when
    # those strata closed — the delta is what makes rules fire on them.
    for predicate, atoms in added.items():
        if predicate in relevant:
            for item in atoms:
                seed.add(item)
    return deleted, seed
