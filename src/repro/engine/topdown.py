"""Tabled top-down evaluator for the full hypothetical language.

The bottom-up reference engine (:mod:`repro.engine.model`) computes the
*entire* perfect model of every database it touches.  That is the
cleanest reading of the declarative semantics, but on rulebases like
Example 3 — where a hypothetical premise re-enters its own predicate at
an enlarged database — the whole-model strategy materializes models for
astronomically many databases even though any *particular* query only
needs a handful of facts.

This engine decides goals instead: ``R, DB |- A`` is evaluated by
depth-first search over rule choices with

* memoization of proven goals per ``(atom, database)``;
* cycle cutting — a goal may not feed its own proof with the same
  database (minimal proofs never need that), and a refutation computed
  under a cycle cut is *not* cached, which keeps the search complete;
* negation-as-failure by exhaustively refuting the negated atom's
  instances.  Soundness needs classic stratified negation (checked at
  construction): a negated predicate sits strictly below the querying
  rule, so its decision can never depend on an in-progress goal.

This is the evaluator of choice for rulebases outside the linearly
stratified fragment (where :class:`~repro.engine.prove.LinearStratifiedProver`
does not apply): Example 3's joint-degree policy, Example 10, and any
other PSPACE-fragment program with bounded *goal-directed* behaviour.
The worst case is of course still exponential — Theorem 1 guarantees
that much.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Union

from ..core.ast import Hypothetical, Negated, Positive, Premise, Rulebase
from ..core.database import Database
from ..core.errors import EvaluationError, ResourceExhausted
from ..core.parser import parse_premise
from ..core.terms import Atom, Constant, Variable
from ..core.unify import Substitution, ground_instances, match
from ..analysis.planner import annotate_plan, idb_aware_sizes
from ..obs.metrics import MetricsRegistry, StatsView
from ..obs.trace import NULL_SPAN, NULL_TRACER, Tracer
from .body import (
    cost_aware_positive_order,
    greedy_positive_order,
    join_mode,
    nonlocal_variables,
    ordered_premises,
)
from .budget import NULL_BUDGET, cancelled_error, depth_error

__all__ = ["TopDownEngine", "TopDownStats"]

Query = Union[str, Atom, Premise]


class TopDownStats(StatsView):
    """Deprecated: work counters of a :class:`TopDownEngine`, now a
    thin view over a :class:`~repro.obs.metrics.MetricsRegistry`
    (``topdown.*``); read the registry directly in new code."""

    _counter_fields = {
        "goals": "topdown.goals",
        "cache_hits": "topdown.cache_hits",
        "cycles_cut": "topdown.cycles_cut",
    }
    _gauge_fields = {"max_depth": "topdown.max_depth"}


class TopDownEngine:
    """Goal-directed evaluator with tabling for hypothetical Datalog¬."""

    def __init__(
        self,
        rulebase: Rulebase,
        *,
        memoize: bool = True,
        optimize_joins: bool | str = True,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        budget=None,
    ) -> None:
        from ..analysis.stratify import negation_strata

        negation_strata(rulebase)  # raises if negation is recursive
        self._rulebase = rulebase
        self._rule_constants = frozenset(rulebase.constants())
        self._memoize = memoize
        self._join_mode = join_mode(optimize_joins)
        self._true: set[tuple[Atom, Database]] = set()
        self._false: set[tuple[Atom, Database]] = set()
        self._path: set[tuple[Atom, Database]] = set()
        self._cycle_events = 0
        self._domain_set: frozenset[Constant] = frozenset()
        self._size_oracles: dict[Database, object] = {}
        self._order_cache: dict[tuple, list[Premise]] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._budget = budget if budget is not None else NULL_BUDGET
        self.stats = TopDownStats(self.metrics)
        counter = self.metrics.counter
        self._n_goals = counter("topdown.goals")
        self._n_cache_hits = counter("topdown.cache_hits")
        self._n_cycles_cut = counter("topdown.cycles_cut")
        self._n_plan_hits = counter("topdown.plan_cache_hits")
        self._n_plan_misses = counter("topdown.plan_cache_misses")
        self._n_negation = counter("topdown.negation_tests")
        self._n_hypo = counter("topdown.hypothesis_expansions")
        self._g_max_depth = self.metrics.gauge("topdown.max_depth")

    @property
    def rulebase(self) -> Rulebase:
        return self._rulebase

    # ------------------------------------------------------------------
    # Public API (mirrors the other engines)
    # ------------------------------------------------------------------

    def domain(self, db: Database) -> list[Constant]:
        """``dom(R, DB)``."""
        constants = set(self._rule_constants) | set(db.constants())
        self._domain_set = frozenset(constants)
        return sorted(constants, key=lambda c: (str(type(c.value)), str(c.value)))

    def ask(self, db: Database, query: Query, *, budget=None) -> bool:
        """Decide a query (variables existential; ``~A`` is not-exists).

        ``budget`` overrides the engine-level budget for this call."""
        premise = self._coerce(query)
        domain = self.domain(db)
        with self._governed(budget):
            if isinstance(premise, Negated):
                return not self._exists(Positive(premise.atom), db, domain)
            return self._exists(premise, db, domain)

    def answers(
        self, db: Database, pattern: Union[str, Atom], *, budget=None
    ) -> set[tuple]:
        """All payload tuples making the pattern provable.

        On budget exhaustion the raised
        :class:`~repro.core.errors.ResourceExhausted` carries the
        tuples fully decided before the trip."""
        if isinstance(pattern, str):
            premise = parse_premise(pattern)
            if not isinstance(premise, Positive):
                raise EvaluationError("answers() needs a plain atom pattern")
            pattern = premise.atom
        domain = self.domain(db)
        variables = list(dict.fromkeys(pattern.variables()))
        results: set[tuple] = set()
        with self._governed(budget, partial_answers=results):
            for binding in ground_instances(variables, domain):
                if self._decide(pattern.substitute(binding), db, domain):
                    results.add(tuple(binding[var].value for var in variables))  # type: ignore[union-attr]
        return results

    def clear_caches(self) -> None:
        self._true.clear()
        self._false.clear()
        self._size_oracles.clear()
        self._order_cache.clear()

    @contextmanager
    def _governed(self, budget, partial_answers: Optional[set] = None):
        """Activate a budget for one query; keep the tables sound.

        Mirrors the PROVE cascade's discipline: interrupts and
        recursion overflows become :class:`ResourceExhausted` with
        partial answers attached, and the in-flight goal path is
        cleared on every exit so an aborted search cannot poison cycle
        detection for later queries (the proven/refuted tables only
        ever receive fully decided goals, so they stay valid).
        """
        previous = self._budget
        active = budget if budget is not None else previous
        active.begin()
        self._budget = active
        try:
            yield active
        except ResourceExhausted as error:
            self._note_exhaustion(error, partial_answers)
            raise
        except KeyboardInterrupt:
            error = cancelled_error(active)
            self._note_exhaustion(error, partial_answers)
            raise error from None
        except RecursionError:
            error = depth_error(active)
            self._note_exhaustion(error, partial_answers)
            raise error from None
        finally:
            self._budget = previous
            self._path.clear()

    def _note_exhaustion(
        self, error: ResourceExhausted, partial_answers: Optional[set]
    ) -> None:
        if partial_answers is not None:
            error.partial.merge_missing(answers=partial_answers)
        self.metrics.counter("budget.exhausted").value += 1
        if self._tracer.enabled:
            self._tracer.event(
                "budget",
                error.reason,
                args={"site": error.site, "steps": error.partial.steps},
            )

    # ------------------------------------------------------------------
    # The search
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(query: Query) -> Premise:
        if isinstance(query, str):
            return parse_premise(query)
        if isinstance(query, Atom):
            return Positive(query)
        return query

    def _exists(self, premise: Premise, db: Database, domain) -> bool:
        budget = self._budget
        unbound = list(dict.fromkeys(premise.variables()))
        for binding in ground_instances(unbound, domain):
            if budget.enabled:
                budget.poll("topdown.exists")
            if self._decide_premise(premise.substitute(binding), db, domain):
                return True
        return False

    def _decide_premise(self, premise: Premise, db: Database, domain) -> bool:
        if isinstance(premise, Hypothetical):
            updated = db.without_facts(*premise.deletions).with_facts(
                *premise.additions
            )
            self._n_hypo.value += 1
            trace = self._tracer
            ctx = (
                trace.span("hypothesis", str(premise), src=premise.span)
                if trace.enabled
                else NULL_SPAN
            )
            with ctx:
                return self._decide(premise.atom, updated, domain)
        if isinstance(premise, Negated):
            self._n_negation.value += 1
            return not self._decide(premise.atom, db, domain)
        return self._decide(premise.atom, db, domain)

    def _decide(self, goal: Atom, db: Database, domain) -> bool:
        """Is the ground atom derivable at ``db``?"""
        if goal in db:
            return True
        if not self._rulebase.definition(goal.predicate):
            return False
        # Definition 3 grounds rules over dom(R, DB): every rule-derived
        # atom draws its constants from the domain, so a goal mentioning
        # an out-of-domain constant can only come from the database
        # (checked above).  Without this guard a fact schema like
        # ``p(X).`` would "prove" p(c) for constants no model contains.
        if any(value not in self._domain_set for value in goal.constants()):
            return False
        key = (goal, db)
        if key in self._true:
            self._n_cache_hits.value += 1
            return True
        if key in self._false:
            self._n_cache_hits.value += 1
            return False
        if key in self._path:
            self._cycle_events += 1
            self._n_cycles_cut.value += 1
            return False
        self._n_goals.value += 1
        budget = self._budget
        if budget.enabled:
            budget.charge("topdown.goals")
        self._path.add(key)
        self._g_max_depth.set_max(len(self._path))
        if budget.enabled:
            budget.check_depth("topdown.goals", len(self._path))
        cycles_before = self._cycle_events
        proven = False
        trace = self._tracer
        goal_ctx = (
            trace.span("goal", str(goal), args={"db": len(db)})
            if trace.enabled
            else NULL_SPAN
        )
        with goal_ctx:
            for item in self._rulebase.definition(goal.predicate):
                binding = match(item.head, goal)
                if binding is None:
                    continue
                body = self._plan_body(item, binding, db, domain)
                guard = nonlocal_variables(item)
                rule_ctx = (
                    trace.span("rule", item.head.predicate, src=item.span)
                    if trace.enabled
                    else NULL_SPAN
                )
                with rule_ctx:
                    satisfied = self._satisfy(body, 0, binding, db, domain, guard)
                if satisfied:
                    proven = True
                    break
        self._path.discard(key)
        if proven:
            if self._memoize:
                self._true.add(key)
            return True
        if self._memoize and self._cycle_events == cycles_before:
            self._false.add(key)
        return False

    def _plan_body(
        self, item, binding: Substitution, db: Database, domain
    ) -> list[Premise]:
        """The body in evaluation order under the active join policy.

        Cost plans are memoized per (rule, bound variables, database):
        the search decides the same goal shape at the same database
        many times, and the plan depends on nothing else.
        """
        body = ordered_premises(item.body)
        if self._join_mode == "textual":
            return body
        positives = [p for p in body if isinstance(p, Positive)]
        rest = [p for p in body if not isinstance(p, Positive)]
        if self._join_mode != "cost":
            return list(greedy_positive_order(positives, binding.keys())) + rest
        key = (id(item), frozenset(binding.keys()), db)
        cached = self._order_cache.get(key)
        if cached is not None:
            self._n_plan_hits.value += 1
            return cached
        self._n_plan_misses.value += 1
        sizes = self._size_oracles.get(db)
        if sizes is None:
            sizes = idb_aware_sizes(self._rulebase, db.count, len(domain))
            self._size_oracles[db] = sizes
        order = cost_aware_positive_order(
            positives, binding.keys(), sizes, len(domain)
        )
        trace = self._tracer
        if trace.enabled and order:
            trace.event(
                "plan",
                " ".join(p.atom.predicate for p in order),
                src=item.span,
                args={
                    "order": annotate_plan(
                        order, binding.keys(), sizes, len(domain)
                    )
                },
            )
        planned = list(order) + rest
        self._order_cache[key] = planned
        return planned

    def _satisfy(
        self,
        body: Sequence[Premise],
        position: int,
        binding: Substitution,
        db: Database,
        domain,
        guard: Sequence[Variable] = (),
    ) -> bool:
        """Can the body from ``position`` on be satisfied under binding?

        ``guard`` lists the rule's non-local variables; any still
        unbound when the first negated premise is reached are grounded
        over the domain first (Definition 3 quantifies them outside
        the negation).
        """
        if position == len(body):
            return True
        premise = body[position]
        if isinstance(premise, Positive):
            for extended in self._match_positive(premise.atom, binding, db, domain):
                if self._satisfy(body, position + 1, extended, db, domain, guard):
                    return True
            return False
        if isinstance(premise, Hypothetical):
            unbound = [
                var
                for var in dict.fromkeys(premise.variables())
                if var not in binding
            ]
            trace = self._tracer
            for grounding in ground_instances(unbound, domain, binding):
                grounded = premise.substitute(grounding)
                updated = db.without_facts(*grounded.deletions).with_facts(
                    *grounded.additions
                )
                self._n_hypo.value += 1
                ctx = (
                    trace.span("hypothesis", str(grounded), src=premise.span)
                    if trace.enabled
                    else NULL_SPAN
                )
                with ctx:
                    decided = self._decide(grounded.atom, updated, domain)
                if decided:
                    if self._satisfy(body, position + 1, grounding, db, domain, guard):
                        return True
            return False
        # Negated premises: ground the rule's remaining non-local
        # variables first, then read leftover (truly local) variables
        # as quantified inside the negation.
        missing = [var for var in guard if var not in binding]
        if missing:
            for grounded in ground_instances(missing, domain, binding):
                if self._satisfy(body, position, grounded, db, domain, ()):
                    return True
            return False
        self._n_negation.value += 1
        pattern = premise.atom.substitute(binding)
        unbound = list(dict.fromkeys(pattern.variables()))
        for grounding in ground_instances(unbound, domain):
            if self._decide(pattern.substitute(grounding), db, domain):
                return False
        return self._satisfy(body, position + 1, binding, db, domain, guard)

    def _match_positive(
        self, pattern: Atom, binding: Substitution, db: Database, domain
    ) -> Iterator[Substitution]:
        """Bindings making a positive premise hold: database matches
        first, then derived instances over the domain."""
        seen: set[tuple] = set()
        variables = list(dict.fromkeys(pattern.variables()))
        for extended in db.matches(pattern, binding):
            signature = tuple(extended.get(var) for var in variables)
            if signature not in seen:
                seen.add(signature)
                yield extended
        if not self._rulebase.definition(pattern.predicate):
            return
        unbound = [var for var in variables if var not in binding]
        for grounding in ground_instances(unbound, domain, binding):
            signature = tuple(grounding.get(var) for var in variables)
            if signature in seen:
                continue
            if self._decide(pattern.substitute(grounding), db, domain):
                seen.add(signature)
                yield grounding
