"""High-level query API.

Most users want to load a rulebase, pick a database, and ask queries
without choosing an engine.  :class:`Session` does exactly that: it
classifies the rulebase, selects the paper's
:class:`~repro.engine.prove.LinearStratifiedProver` when a linear
stratification exists, and falls back to the goal-directed
:class:`~repro.engine.topdown.TopDownEngine` (the general PSPACE
language) otherwise.  The bottom-up
:class:`~repro.engine.model.PerfectModelEngine` is available on request
(``engine="model"``) as the declarative reference.

Module-level :func:`ask` and :func:`answers` are one-shot conveniences;
build a :class:`Session` when issuing several queries so caches are
shared.

:meth:`Session.watch` registers a *standing query*: a pattern whose
answer set is re-evaluated on demand, reporting only what changed
(:class:`WatchDiff`).  Standing queries are the engine-side half of the
server's ``subscribe`` op and the REPL's ``:watch`` (docs/SERVER.md,
docs/INCREMENTAL.md); with the bottom-up engine each refresh rides the
differential machinery — a retract re-answers by deletion propagation
rather than a fresh fixpoint.
"""

from __future__ import annotations

from typing import Optional, Union

from ..analysis.classify import ComplexityReport, classify
from ..analysis.stratify import is_linearly_stratified
from ..core.ast import Positive, Premise, Rulebase
from ..core.database import Database
from ..core.errors import EvaluationError
from ..core.parser import parse_premise
from ..core.terms import Atom
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from .kernels import compile_mode
from .model import PerfectModelEngine
from .prove import LinearStratifiedProver
from .topdown import TopDownEngine

__all__ = ["Session", "StandingQuery", "WatchDiff", "ask", "answers"]

Query = Union[str, Atom, Premise]
Engine = Union[PerfectModelEngine, LinearStratifiedProver, TopDownEngine]


class WatchDiff:
    """The change in a standing query's answer set across one refresh.

    ``added``/``removed`` are frozensets of payload tuples (the same
    shape :meth:`Session.answers` returns).  Falsy when nothing
    changed, so subscribers can be notified only on real diffs.
    """

    __slots__ = ("added", "removed")

    def __init__(
        self, added: frozenset[tuple], removed: frozenset[tuple]
    ) -> None:
        self.added = added
        self.removed = removed

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)

    def __repr__(self) -> str:
        return (
            f"WatchDiff(added={sorted(self.added)}, "
            f"removed={sorted(self.removed)})"
        )


class StandingQuery:
    """One registered pattern of a :meth:`Session.watch` subscription.

    Holds the last answer set delivered; :meth:`refresh` re-evaluates
    against a database and returns only the delta.  The first refresh
    reports the whole current answer set as ``added`` (the subscriber
    starts from nothing).  Re-evaluation goes through the session's
    engine, so with the bottom-up engine an assert/retract refresh is
    served by the lattice seed / deletion-propagation paths instead of
    a from-scratch fixpoint.
    """

    __slots__ = ("_session", "pattern", "text", "_last")

    def __init__(self, session: "Session", pattern: Union[str, Atom]) -> None:
        if isinstance(pattern, str):
            premise = parse_premise(pattern)
            if not isinstance(premise, Positive):
                raise EvaluationError(
                    "watch() needs a plain atom pattern, like answers(); "
                    f"got {premise}"
                )
            pattern = premise.atom
        self._session = session
        self.pattern = pattern
        self.text = str(pattern)
        self._last: Optional[frozenset[tuple]] = None

    @property
    def answers(self) -> Optional[frozenset[tuple]]:
        """The answer set as of the last refresh (None before one)."""
        return self._last

    def rebind(self, session: "Session") -> None:
        """Point this watch at a new session (e.g. after the REPL
        rebuilds its engine when the rulebase changes).  The remembered
        answer set is kept, so the next refresh reports a true diff
        against what the subscriber last saw."""
        self._session = session

    def refresh(self, db: Database, *, budget=None) -> WatchDiff:
        """Re-evaluate at ``db``; return what changed since last time."""
        current = frozenset(
            self._session.answers(db, self.pattern, budget=budget)
        )
        previous = self._last if self._last is not None else frozenset()
        self._last = current
        return WatchDiff(current - previous, previous - current)


class Session:
    """A rulebase plus a chosen evaluation engine.

    ``engine`` may be:

    * ``"auto"`` (default) — ``"prove"`` when the rulebase is linearly
      stratified, ``"topdown"`` otherwise;
    * ``"prove"`` — the paper's Section 5.2 PROVE cascade (requires
      linear stratification);
    * ``"topdown"`` — tabled goal-directed search, full language;
    * ``"model"`` — the bottom-up reference evaluator (computes whole
      perfect models; may be infeasible on rulebases whose hypothetical
      recursion touches very many databases).

    ``demand`` (``"auto"``/``"on"``/``"off"``, default ``"off"``)
    enables the goal-directed magic-sets rewrite for the bottom-up
    engine's :meth:`ask`/:meth:`answers` (docs/DEMAND.md).  The
    top-down engines are inherently goal-directed, so the knob only
    affects ``engine="model"``; it is accepted (and ignored) for the
    others so callers can set it uniformly.

    ``compile`` (``"auto"``/``"on"``/``"off"``, default ``"auto"``)
    selects generated join kernels for the bottom-up engine
    (docs/PERFORMANCE.md); like ``demand`` it only affects
    ``engine="model"`` — the top-down engines have no closure loop to
    compile — but is accepted uniformly.

    ``provenance`` (default ``False``) makes a ``"model"`` engine
    record why-provenance edges from its first evaluation
    (docs/OBSERVABILITY.md).  The explanation surfaces :meth:`why` /
    :meth:`why_not` / :meth:`assumptions` work regardless of the flag
    and of the chosen engine: when the session's primary engine does
    not record, they are served by a lazily created recording
    :class:`~repro.engine.model.PerfectModelEngine` that shares this
    session's metrics, budget, and demand mode.
    """

    def __init__(
        self,
        rulebase: Rulebase,
        engine: str = "auto",
        *,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        budget=None,
        demand: str = "off",
        provenance: bool = False,
        compile: bool | str | None = "auto",
    ) -> None:
        self._rulebase = rulebase
        if demand not in ("auto", "on", "off"):
            raise EvaluationError(
                f"unknown demand mode {demand!r}; "
                f"expected 'auto', 'on', or 'off'"
            )
        self._tracer = tracer
        self._budget = budget
        self._demand = demand
        self._compile = compile_mode(compile)
        self._prov_engine: Optional[PerfectModelEngine] = None
        if engine == "auto":
            engine = "prove" if is_linearly_stratified(rulebase) else "topdown"
        if engine == "prove":
            self._engine: Engine = LinearStratifiedProver(
                rulebase, metrics=metrics, tracer=tracer, budget=budget
            )
        elif engine == "topdown":
            self._engine = TopDownEngine(
                rulebase, metrics=metrics, tracer=tracer, budget=budget
            )
        elif engine == "model":
            self._engine = PerfectModelEngine(
                rulebase,
                metrics=metrics,
                tracer=tracer,
                budget=budget,
                demand=demand,
                provenance=provenance,
                compile=self._compile,
            )
        else:
            raise EvaluationError(
                f"unknown engine {engine!r}; use 'auto', 'prove', "
                f"'topdown', or 'model'"
            )
        self._engine_name = engine

    @property
    def rulebase(self) -> Rulebase:
        return self._rulebase

    @property
    def engine(self) -> Engine:
        return self._engine

    @property
    def engine_name(self) -> str:
        return self._engine_name

    @property
    def metrics(self) -> MetricsRegistry:
        """The engine's metrics registry (``repro.obs``)."""
        return self._engine.metrics

    def ask(self, db: Database, query: Query, *, budget=None) -> bool:
        """Decide a query: ``R, DB |- query``?

        Accepts an atom, a premise object, or premise text such as
        ``"grad(tony)[add: take(tony, cs452)]"``.  Variables are read
        existentially.  ``budget`` (a
        :class:`~repro.engine.budget.Budget`) bounds this call; on
        exhaustion :class:`~repro.core.errors.ResourceExhausted` is
        raised with partial results attached (docs/ROBUSTNESS.md).
        """
        return self._engine.ask(db, query, budget=budget)

    def answers(
        self, db: Database, pattern: Union[str, Atom], *, budget=None
    ) -> set[tuple]:
        """All payload tuples satisfying an atom pattern.

        ``session.answers(db, "grad(S)")`` returns ``{("tony",), ...}``.
        ``budget`` bounds the call as in :meth:`ask`.
        """
        return self._engine.answers(db, pattern, budget=budget)

    def watch(self, pattern: Union[str, Atom]) -> StandingQuery:
        """Register a standing query over an atom pattern.

        Returns a :class:`StandingQuery`; call its
        :meth:`~StandingQuery.refresh` after each database change to
        get the add/del diff of its answer set.  The session keeps no
        reference — the caller owns the subscription's lifetime.
        """
        return StandingQuery(self, pattern)

    def classify(self) -> ComplexityReport:
        """Theorem 1 classification of this session's rulebase."""
        return classify(self._rulebase)

    def explain(self, db: Database, query: Query, *, budget=None):
        """A :class:`~repro.engine.proofs.Proof` for a provable query,
        or ``None``.  Backed by a lazily created Explainer (shared
        across calls so its caches persist); ``budget`` bounds the
        proof search (docs/ROBUSTNESS.md)."""
        if not hasattr(self, "_explainer"):
            from .proofs import Explainer

            self._explainer = Explainer(self._rulebase, budget=self._budget)
        return self._explainer.explain(db, query, budget=budget)

    # -- provenance explanations (docs/OBSERVABILITY.md) ----------------

    def _provenance_engine(self) -> PerfectModelEngine:
        """The engine serving why/why-not/assumptions: the session's
        own, when it records, else a lazily created recording twin."""
        engine = self._engine
        if isinstance(engine, PerfectModelEngine) and engine.provenance.enabled:
            return engine
        if self._prov_engine is None:
            self._prov_engine = PerfectModelEngine(
                self._rulebase,
                metrics=self._engine.metrics,
                tracer=self._tracer,
                budget=self._budget,
                demand=self._demand,
                provenance=True,
                compile=self._compile,
            )
        return self._prov_engine

    def why(self, db: Database, query: Query, *, budget=None):
        """A :class:`~repro.engine.proofs.Proof` replayed from recorded
        provenance edges, or ``None`` if the query is not derivable.
        Evaluates on demand (recording) if the query has not been
        evaluated yet; see
        :meth:`~repro.engine.model.PerfectModelEngine.why`."""
        return self._provenance_engine().why(db, query, budget=budget)

    def why_not(self, db: Database, query: Query, *, budget=None):
        """A :class:`~repro.obs.provenance.WhyNotReport` failure
        witness for an underivable query; see
        :meth:`~repro.engine.model.PerfectModelEngine.why_not`."""
        return self._provenance_engine().why_not(db, query, budget=budget)

    def assumptions(self, db: Database, query: Query, *, budget=None):
        """The hypothetical additions a derivation of the query used
        (``frozenset`` of atoms, empty when none), or ``None`` if not
        derivable; see
        :meth:`~repro.engine.model.PerfectModelEngine.assumptions`."""
        return self._provenance_engine().assumptions(db, query, budget=budget)


def ask(
    rulebase: Rulebase,
    db: Database,
    query: Query,
    engine: str = "auto",
    demand: str = "off",
) -> bool:
    """One-shot :meth:`Session.ask`."""
    return Session(rulebase, engine, demand=demand).ask(db, query)


def answers(
    rulebase: Rulebase,
    db: Database,
    pattern: Union[str, Atom],
    engine: str = "auto",
    demand: str = "off",
) -> set[tuple]:
    """One-shot :meth:`Session.answers`."""
    return Session(rulebase, engine, demand=demand).answers(db, pattern)
