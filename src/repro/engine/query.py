"""High-level query API.

Most users want to load a rulebase, pick a database, and ask queries
without choosing an engine.  :class:`Session` does exactly that: it
classifies the rulebase, selects the paper's
:class:`~repro.engine.prove.LinearStratifiedProver` when a linear
stratification exists, and falls back to the goal-directed
:class:`~repro.engine.topdown.TopDownEngine` (the general PSPACE
language) otherwise.  The bottom-up
:class:`~repro.engine.model.PerfectModelEngine` is available on request
(``engine="model"``) as the declarative reference.

Module-level :func:`ask` and :func:`answers` are one-shot conveniences;
build a :class:`Session` when issuing several queries so caches are
shared.
"""

from __future__ import annotations

from typing import Optional, Union

from ..analysis.classify import ComplexityReport, classify
from ..analysis.stratify import is_linearly_stratified
from ..core.ast import Premise, Rulebase
from ..core.database import Database
from ..core.errors import EvaluationError
from ..core.terms import Atom
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from .kernels import compile_mode
from .model import PerfectModelEngine
from .prove import LinearStratifiedProver
from .topdown import TopDownEngine

__all__ = ["Session", "ask", "answers"]

Query = Union[str, Atom, Premise]
Engine = Union[PerfectModelEngine, LinearStratifiedProver, TopDownEngine]


class Session:
    """A rulebase plus a chosen evaluation engine.

    ``engine`` may be:

    * ``"auto"`` (default) — ``"prove"`` when the rulebase is linearly
      stratified, ``"topdown"`` otherwise;
    * ``"prove"`` — the paper's Section 5.2 PROVE cascade (requires
      linear stratification);
    * ``"topdown"`` — tabled goal-directed search, full language;
    * ``"model"`` — the bottom-up reference evaluator (computes whole
      perfect models; may be infeasible on rulebases whose hypothetical
      recursion touches very many databases).

    ``demand`` (``"auto"``/``"on"``/``"off"``, default ``"off"``)
    enables the goal-directed magic-sets rewrite for the bottom-up
    engine's :meth:`ask`/:meth:`answers` (docs/DEMAND.md).  The
    top-down engines are inherently goal-directed, so the knob only
    affects ``engine="model"``; it is accepted (and ignored) for the
    others so callers can set it uniformly.

    ``compile`` (``"auto"``/``"on"``/``"off"``, default ``"auto"``)
    selects generated join kernels for the bottom-up engine
    (docs/PERFORMANCE.md); like ``demand`` it only affects
    ``engine="model"`` — the top-down engines have no closure loop to
    compile — but is accepted uniformly.

    ``provenance`` (default ``False``) makes a ``"model"`` engine
    record why-provenance edges from its first evaluation
    (docs/OBSERVABILITY.md).  The explanation surfaces :meth:`why` /
    :meth:`why_not` / :meth:`assumptions` work regardless of the flag
    and of the chosen engine: when the session's primary engine does
    not record, they are served by a lazily created recording
    :class:`~repro.engine.model.PerfectModelEngine` that shares this
    session's metrics, budget, and demand mode.
    """

    def __init__(
        self,
        rulebase: Rulebase,
        engine: str = "auto",
        *,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        budget=None,
        demand: str = "off",
        provenance: bool = False,
        compile: bool | str | None = "auto",
    ) -> None:
        self._rulebase = rulebase
        if demand not in ("auto", "on", "off"):
            raise EvaluationError(
                f"unknown demand mode {demand!r}; "
                f"expected 'auto', 'on', or 'off'"
            )
        self._tracer = tracer
        self._budget = budget
        self._demand = demand
        self._compile = compile_mode(compile)
        self._prov_engine: Optional[PerfectModelEngine] = None
        if engine == "auto":
            engine = "prove" if is_linearly_stratified(rulebase) else "topdown"
        if engine == "prove":
            self._engine: Engine = LinearStratifiedProver(
                rulebase, metrics=metrics, tracer=tracer, budget=budget
            )
        elif engine == "topdown":
            self._engine = TopDownEngine(
                rulebase, metrics=metrics, tracer=tracer, budget=budget
            )
        elif engine == "model":
            self._engine = PerfectModelEngine(
                rulebase,
                metrics=metrics,
                tracer=tracer,
                budget=budget,
                demand=demand,
                provenance=provenance,
                compile=self._compile,
            )
        else:
            raise EvaluationError(
                f"unknown engine {engine!r}; use 'auto', 'prove', "
                f"'topdown', or 'model'"
            )
        self._engine_name = engine

    @property
    def rulebase(self) -> Rulebase:
        return self._rulebase

    @property
    def engine(self) -> Engine:
        return self._engine

    @property
    def engine_name(self) -> str:
        return self._engine_name

    @property
    def metrics(self) -> MetricsRegistry:
        """The engine's metrics registry (``repro.obs``)."""
        return self._engine.metrics

    def ask(self, db: Database, query: Query, *, budget=None) -> bool:
        """Decide a query: ``R, DB |- query``?

        Accepts an atom, a premise object, or premise text such as
        ``"grad(tony)[add: take(tony, cs452)]"``.  Variables are read
        existentially.  ``budget`` (a
        :class:`~repro.engine.budget.Budget`) bounds this call; on
        exhaustion :class:`~repro.core.errors.ResourceExhausted` is
        raised with partial results attached (docs/ROBUSTNESS.md).
        """
        return self._engine.ask(db, query, budget=budget)

    def answers(
        self, db: Database, pattern: Union[str, Atom], *, budget=None
    ) -> set[tuple]:
        """All payload tuples satisfying an atom pattern.

        ``session.answers(db, "grad(S)")`` returns ``{("tony",), ...}``.
        ``budget`` bounds the call as in :meth:`ask`.
        """
        return self._engine.answers(db, pattern, budget=budget)

    def classify(self) -> ComplexityReport:
        """Theorem 1 classification of this session's rulebase."""
        return classify(self._rulebase)

    def explain(self, db: Database, query: Query, *, budget=None):
        """A :class:`~repro.engine.proofs.Proof` for a provable query,
        or ``None``.  Backed by a lazily created Explainer (shared
        across calls so its caches persist); ``budget`` bounds the
        proof search (docs/ROBUSTNESS.md)."""
        if not hasattr(self, "_explainer"):
            from .proofs import Explainer

            self._explainer = Explainer(self._rulebase, budget=self._budget)
        return self._explainer.explain(db, query, budget=budget)

    # -- provenance explanations (docs/OBSERVABILITY.md) ----------------

    def _provenance_engine(self) -> PerfectModelEngine:
        """The engine serving why/why-not/assumptions: the session's
        own, when it records, else a lazily created recording twin."""
        engine = self._engine
        if isinstance(engine, PerfectModelEngine) and engine.provenance.enabled:
            return engine
        if self._prov_engine is None:
            self._prov_engine = PerfectModelEngine(
                self._rulebase,
                metrics=self._engine.metrics,
                tracer=self._tracer,
                budget=self._budget,
                demand=self._demand,
                provenance=True,
                compile=self._compile,
            )
        return self._prov_engine

    def why(self, db: Database, query: Query, *, budget=None):
        """A :class:`~repro.engine.proofs.Proof` replayed from recorded
        provenance edges, or ``None`` if the query is not derivable.
        Evaluates on demand (recording) if the query has not been
        evaluated yet; see
        :meth:`~repro.engine.model.PerfectModelEngine.why`."""
        return self._provenance_engine().why(db, query, budget=budget)

    def why_not(self, db: Database, query: Query, *, budget=None):
        """A :class:`~repro.obs.provenance.WhyNotReport` failure
        witness for an underivable query; see
        :meth:`~repro.engine.model.PerfectModelEngine.why_not`."""
        return self._provenance_engine().why_not(db, query, budget=budget)

    def assumptions(self, db: Database, query: Query, *, budget=None):
        """The hypothetical additions a derivation of the query used
        (``frozenset`` of atoms, empty when none), or ``None`` if not
        derivable; see
        :meth:`~repro.engine.model.PerfectModelEngine.assumptions`."""
        return self._provenance_engine().assumptions(db, query, budget=budget)


def ask(
    rulebase: Rulebase,
    db: Database,
    query: Query,
    engine: str = "auto",
    demand: str = "off",
) -> bool:
    """One-shot :meth:`Session.ask`."""
    return Session(rulebase, engine, demand=demand).ask(db, query)


def answers(
    rulebase: Rulebase,
    db: Database,
    pattern: Union[str, Atom],
    engine: str = "auto",
    demand: str = "off",
) -> set[tuple]:
    """One-shot :meth:`Session.answers`."""
    return Session(rulebase, engine, demand=demand).answers(db, pattern)
