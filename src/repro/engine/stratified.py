"""Stratified Datalog-with-negation substrate (no hypotheticals).

This is the "familiar bottom-up procedure of stratified Horn-logic"
that the paper's ``PROVE_Delta`` procedures build on (reference [1],
Apt-Blair-Walker; the perfect model of Przymusinski [20]).  Strata are
the mutual-recursion classes in dependency order; each stratum is
closed under its rules by fixpoint iteration, with negated premises
decided against the already-completed lower strata.

Each stratum is closed by the shared differential machinery of
:mod:`repro.engine.delta`: because negated predicates always live in
strictly lower strata, negation composes with the semi-naive
discipline for free (negated premises are stable for the whole
closure).  ``strategy="naive"`` restores the exhaustive baseline.

Hypothetical premises are rejected here — they belong to
:mod:`repro.engine.model` (reference evaluation) and
:mod:`repro.engine.prove` (the paper's proof procedures).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.ast import Hypothetical, Rulebase
from ..core.database import Database
from ..core.errors import EvaluationError, ResourceExhausted
from ..core.terms import Atom, Constant
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_SPAN, NULL_TRACER, Tracer
from .body import cost_aware_positive_order, join_mode
from .budget import NULL_BUDGET, cancelled_error, depth_error
from .delta import LayerInstruments, close_layer
from .interpretation import Interpretation
from .kernels import KernelProgram, compile_mode

__all__ = ["perfect_model", "stratified_holds"]


def _domain_of(rulebase: Rulebase, db: Database) -> list[Constant]:
    constants = set(rulebase.constants()) | set(db.constants())
    return sorted(constants, key=lambda c: (str(type(c.value)), str(c.value)))


def _demand_rewrite(rulebase, domain, query, metrics, tracer):
    """Attempt the magic-sets rewrite for ``query``; fall back silently.

    Returns ``(rulebase, demand_predicates)`` — the rewritten program
    plus the auxiliary predicates to strip from the model, or the
    original program with an empty set when the rewrite rejects or the
    query's constants lie outside ``dom(R, DB)`` (a seed constant would
    enlarge the domain and change Definition 3's groundings).  Each
    fallback bumps ``engine.demand_fallbacks``.
    """
    from ..analysis.demand import coerce_query
    from ..analysis.magic import magic_rewrite

    none: frozenset[str] = frozenset()
    premise = coerce_query(query)

    def fallen_back(reason):
        if metrics is not None:
            metrics.counter("engine.demand_fallbacks").value += 1
        if tracer.enabled:
            tracer.event(
                "demand",
                "fallback",
                args={"query": str(premise), "reason": reason},
            )
        return rulebase, none

    if not set(premise.goal.constants()) <= set(domain):
        return fallen_back("foreign-constants")
    result = magic_rewrite(rulebase, premise)
    if not result.ok:
        return fallen_back(result.reason)
    program = result.program
    if metrics is not None:
        metrics.counter("demand.rules_rewritten").value += (
            program.guarded_rules
        )
    if tracer.enabled:
        tracer.event(
            "demand",
            "rewrite",
            args={
                "query": str(premise),
                "adornment": program.report.adornment,
                "restricted": sorted(program.report.restricted),
                "free": sorted(program.report.free),
            },
        )
    return program.rulebase, program.demand_predicates


def _strip_demand(interp, demand_predicates, metrics):
    """Remove (and count) the magic/supplementary atoms of a model."""
    kept = Interpretation()
    stripped = 0
    for atom in interp:
        if atom.predicate in demand_predicates:
            stripped += 1
        else:
            kept.add(atom)
    if metrics is not None and stripped:
        metrics.counter("demand.magic_facts").value += stripped
    return kept


def perfect_model(
    rulebase: Rulebase,
    db: Database,
    domain: Optional[Sequence[Constant]] = None,
    optimize_joins: bool | str = True,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Tracer = NULL_TRACER,
    strategy: str = "seminaive",
    budget=None,
    demand: str = "off",
    query=None,
    provenance=None,
    compile: bool | str | None = "auto",
) -> Interpretation:
    """Compute the perfect model of a stratified Datalog¬ program.

    Raises :class:`StratificationError` (via
    :func:`~repro.analysis.stratify.negation_strata`) if negation is
    recursive and :class:`EvaluationError` if a rule has a hypothetical
    premise.  ``metrics`` collects ``stratified.*`` counters; ``tracer``
    records per-stratum and per-round spans.  ``strategy`` selects the
    closure discipline (``"seminaive"`` default, ``"naive"`` baseline).
    ``budget`` (a :class:`~repro.engine.budget.Budget`) bounds the run;
    on exhaustion the raised :class:`ResourceExhausted` carries the
    atoms derived so far and the count of strata fully closed.

    ``demand`` (``"auto"``/``"on"``, with a ``query``) evaluates the
    magic-sets rewrite of the program instead (docs/DEMAND.md): the
    returned interpretation then contains exactly the atoms the query
    demands, with the auxiliary magic atoms stripped and counted into
    ``demand.magic_facts``.  When the rewrite rejects, the full model
    is computed and ``engine.demand_fallbacks`` is bumped — answers
    never change, only work and completeness of *undemanded* atoms.

    ``provenance`` (a
    :class:`~repro.obs.provenance.ProvenanceRecorder`) records one
    why-provenance edge per derivation, keyed by ``db``; under demand
    the rewrite's auxiliary atoms are stripped from the recorded edges
    so they explain the original program (docs/OBSERVABILITY.md).

    ``compile`` selects generated join kernels for rule bodies
    (docs/PERFORMANCE.md).  ``"auto"`` resolves to *off* here: this is
    a one-shot evaluation, and kernel compilation pays for itself only
    when the same rules close many times (the hypothesis lattice of
    :class:`~repro.engine.model.PerfectModelEngine`, where auto
    resolves to on).  ``"on"`` builds a per-call
    :class:`~repro.engine.kernels.KernelProgram`; answers and derived
    atoms are identical either way.
    """
    from ..analysis.stratify import negation_strata

    if demand not in ("auto", "on", "off"):
        raise EvaluationError(
            f"unknown demand mode {demand!r}; expected 'auto', 'on', or 'off'"
        )
    for item in rulebase:
        if any(isinstance(premise, Hypothetical) for premise in item.body):
            raise EvaluationError(
                f"stratified substrate cannot evaluate hypothetical rule: {item}"
            )

    if domain is None:
        domain = _domain_of(rulebase, db)
    demand_predicates: frozenset[str] = frozenset()
    if demand != "off" and query is not None:
        rulebase, demand_predicates = _demand_rewrite(
            rulebase, domain, query, metrics, tracer
        )
    record = (
        provenance.sink(db, aux=demand_predicates)
        if provenance is not None and provenance.enabled
        else None
    )
    layers = negation_strata(rulebase)
    interp = Interpretation(db)
    mode = join_mode(optimize_joins)
    program = KernelProgram(metrics) if compile_mode(compile) == "on" else None
    plan = None
    if mode == "cost":
        domain_size = len(domain)

        def plan(positives, bound):
            return cost_aware_positive_order(
                positives, bound, interp.count, domain_size
            )

    instruments = None
    if metrics is not None:
        metrics.counter("stratified.strata").value += len(layers)
        interp.probes = metrics.counter("interp.index_probes")
        instruments = LayerInstruments(
            rounds=metrics.counter("stratified.rule_rounds"),
            firings=metrics.counter("stratified.rule_firings"),
            derived=metrics.counter("stratified.atoms_derived"),
            delta_size=metrics.histogram("stratified.delta_size"),
        )
    budget = (budget if budget is not None else NULL_BUDGET).begin()
    governed = budget.enabled
    strata_completed = 0

    def snapshot() -> frozenset[Atom]:
        if not demand_predicates:
            return interp.to_frozenset()
        return frozenset(
            atom
            for atom in interp
            if atom.predicate not in demand_predicates
        )

    try:
        for index, layer in enumerate(layers):
            if governed:
                budget.poll("stratified.stratum")
            layer_rules = [
                item
                for predicate in layer
                for item in rulebase.definition(predicate)
            ]
            ctx = (
                tracer.span(
                    "stratum", str(index), args={"rules": len(layer_rules)}
                )
                if tracer.enabled
                else NULL_SPAN
            )
            kernels = (
                program.run(
                    interp=interp,
                    db=db,
                    domain=domain,
                    plan=plan,
                    optimize=mode == "greedy",
                    record=record,
                    probes=interp.probes,
                )
                if program is not None
                else None
            )
            with ctx:
                close_layer(
                    layer_rules,
                    interp,
                    domain,
                    strategy=strategy,
                    plan=plan,
                    optimize=mode == "greedy",
                    instruments=instruments,
                    tracer=tracer,
                    budget=budget,
                    record=record,
                    kernels=kernels,
                )
            strata_completed += 1
    except ResourceExhausted as error:
        error.partial.merge_missing(
            atoms=snapshot(), strata_completed=strata_completed
        )
        raise
    except KeyboardInterrupt:
        error = cancelled_error(budget)
        error.partial.merge_missing(
            atoms=snapshot(), strata_completed=strata_completed
        )
        raise error from None
    except RecursionError:
        error = depth_error(budget)
        error.partial.merge_missing(
            atoms=snapshot(), strata_completed=strata_completed
        )
        raise error from None
    if demand_predicates:
        return _strip_demand(interp, demand_predicates, metrics)
    return interp


def stratified_holds(
    rulebase: Rulebase,
    db: Database,
    goal: Atom,
    *,
    budget=None,
    demand: str = "off",
    provenance=None,
    compile: bool | str | None = "auto",
) -> bool:
    """Convenience wrapper: is a ground goal in the perfect model?

    For patterns with variables, any matching instance counts
    (existential reading).  ``demand`` enables the goal-directed
    rewrite with the goal itself as the query; ``provenance`` and
    ``compile`` are passed through to :func:`perfect_model`.
    """
    model = perfect_model(
        rulebase,
        db,
        budget=budget,
        demand=demand,
        query=goal,
        provenance=provenance,
        compile=compile,
    )
    if goal.is_ground:
        return goal in model
    return model.has_match(goal)
