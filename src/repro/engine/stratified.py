"""Stratified Datalog-with-negation substrate (no hypotheticals).

This is the "familiar bottom-up procedure of stratified Horn-logic"
that the paper's ``PROVE_Delta`` procedures build on (reference [1],
Apt-Blair-Walker; the perfect model of Przymusinski [20]).  Strata are
the mutual-recursion classes in dependency order; each stratum is
closed under its rules by fixpoint iteration, with negated premises
decided against the already-completed lower strata.

Hypothetical premises are rejected here — they belong to
:mod:`repro.engine.model` (reference evaluation) and
:mod:`repro.engine.prove` (the paper's proof procedures).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.ast import Hypothetical, Rule, Rulebase
from ..core.database import Database
from ..core.errors import EvaluationError
from ..core.terms import Atom, Constant
from ..core.unify import ground_instances
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_SPAN, NULL_TRACER, Tracer
from .body import (
    cost_aware_positive_order,
    join_mode,
    nonlocal_variables,
    satisfy_body,
)
from .interpretation import Interpretation

__all__ = ["perfect_model", "stratified_holds"]


def _domain_of(rulebase: Rulebase, db: Database) -> list[Constant]:
    constants = set(rulebase.constants()) | set(db.constants())
    return sorted(constants, key=lambda c: (str(type(c.value)), str(c.value)))


def perfect_model(
    rulebase: Rulebase,
    db: Database,
    domain: Optional[Sequence[Constant]] = None,
    optimize_joins: bool | str = True,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Tracer = NULL_TRACER,
) -> Interpretation:
    """Compute the perfect model of a stratified Datalog¬ program.

    Raises :class:`StratificationError` (via
    :func:`~repro.analysis.stratify.negation_strata`) if negation is
    recursive and :class:`EvaluationError` if a rule has a hypothetical
    premise.  ``metrics`` collects ``stratified.*`` counters; ``tracer``
    records per-stratum and per-round spans.
    """
    from ..analysis.stratify import negation_strata

    for item in rulebase:
        if any(isinstance(premise, Hypothetical) for premise in item.body):
            raise EvaluationError(
                f"stratified substrate cannot evaluate hypothetical rule: {item}"
            )

    if domain is None:
        domain = _domain_of(rulebase, db)
    layers = negation_strata(rulebase)
    interp = Interpretation(db)
    if metrics is not None:
        metrics.counter("stratified.strata").value += len(layers)
    for index, layer in enumerate(layers):
        layer_rules = [
            item for predicate in layer for item in rulebase.definition(predicate)
        ]
        ctx = (
            tracer.span("stratum", str(index), args={"rules": len(layer_rules)})
            if tracer.enabled
            else NULL_SPAN
        )
        with ctx:
            _close_layer(layer_rules, interp, domain, optimize_joins, metrics)
    return interp


def _close_layer(
    rules: Sequence[Rule],
    interp: Interpretation,
    domain: Sequence[Constant],
    optimize_joins: bool | str = True,
    metrics: Optional[MetricsRegistry] = None,
) -> None:
    """Fixpoint of one stratum's rules over a growing interpretation."""

    def reject_hypothetical(premise, binding):  # pragma: no cover - guarded above
        raise EvaluationError("hypothetical premise in stratified substrate")

    mode = join_mode(optimize_joins)
    plan = None
    if mode == "cost":
        domain_size = len(domain)

        def plan(positives, bound):
            return cost_aware_positive_order(
                positives, bound, interp.count, domain_size
            )

    n_rounds = n_derived = None
    if metrics is not None:
        n_rounds = metrics.counter("stratified.rule_rounds")
        n_derived = metrics.counter("stratified.atoms_derived")
    guards = {item: nonlocal_variables(item) for item in rules}
    changed = True
    while changed:
        changed = False
        if n_rounds is not None:
            n_rounds.value += 1
        pending: list[Atom] = []
        for item in rules:
            head_variables = set(item.head.variables())
            for binding in satisfy_body(
                item.body,
                positive=lambda pattern, current: interp.matches(pattern, current),
                hypothetical=reject_hypothetical,
                negated=lambda pattern, current: not interp.has_match(
                    pattern, current
                ),
                ground_first=guards[item],
                domain=domain,
                optimize=mode == "greedy",
                plan=plan,
            ):
                unbound = [var for var in head_variables if var not in binding]
                if unbound:
                    for grounded in ground_instances(unbound, domain, binding):
                        pending.append(item.head.substitute(grounded))
                else:
                    pending.append(item.head.substitute(binding))
        for head in pending:
            if interp.add(head):
                changed = True
                if n_derived is not None:
                    n_derived.value += 1


def stratified_holds(rulebase: Rulebase, db: Database, goal: Atom) -> bool:
    """Convenience wrapper: is a ground goal in the perfect model?

    For patterns with variables, any matching instance counts
    (existential reading).
    """
    model = perfect_model(rulebase, db)
    if goal.is_ground:
        return goal in model
    return model.has_match(goal)
