"""Stratified Datalog-with-negation substrate (no hypotheticals).

This is the "familiar bottom-up procedure of stratified Horn-logic"
that the paper's ``PROVE_Delta`` procedures build on (reference [1],
Apt-Blair-Walker; the perfect model of Przymusinski [20]).  Strata are
the mutual-recursion classes in dependency order; each stratum is
closed under its rules by fixpoint iteration, with negated premises
decided against the already-completed lower strata.

Each stratum is closed by the shared differential machinery of
:mod:`repro.engine.delta`: because negated predicates always live in
strictly lower strata, negation composes with the semi-naive
discipline for free (negated premises are stable for the whole
closure).  ``strategy="naive"`` restores the exhaustive baseline.

Hypothetical premises are rejected here — they belong to
:mod:`repro.engine.model` (reference evaluation) and
:mod:`repro.engine.prove` (the paper's proof procedures).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.ast import Hypothetical, Rulebase
from ..core.database import Database
from ..core.errors import EvaluationError, ResourceExhausted
from ..core.terms import Atom, Constant
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_SPAN, NULL_TRACER, Tracer
from .body import cost_aware_positive_order, join_mode
from .budget import NULL_BUDGET, cancelled_error, depth_error
from .delta import LayerInstruments, close_layer
from .interpretation import Interpretation

__all__ = ["perfect_model", "stratified_holds"]


def _domain_of(rulebase: Rulebase, db: Database) -> list[Constant]:
    constants = set(rulebase.constants()) | set(db.constants())
    return sorted(constants, key=lambda c: (str(type(c.value)), str(c.value)))


def perfect_model(
    rulebase: Rulebase,
    db: Database,
    domain: Optional[Sequence[Constant]] = None,
    optimize_joins: bool | str = True,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Tracer = NULL_TRACER,
    strategy: str = "seminaive",
    budget=None,
) -> Interpretation:
    """Compute the perfect model of a stratified Datalog¬ program.

    Raises :class:`StratificationError` (via
    :func:`~repro.analysis.stratify.negation_strata`) if negation is
    recursive and :class:`EvaluationError` if a rule has a hypothetical
    premise.  ``metrics`` collects ``stratified.*`` counters; ``tracer``
    records per-stratum and per-round spans.  ``strategy`` selects the
    closure discipline (``"seminaive"`` default, ``"naive"`` baseline).
    ``budget`` (a :class:`~repro.engine.budget.Budget`) bounds the run;
    on exhaustion the raised :class:`ResourceExhausted` carries the
    atoms derived so far and the count of strata fully closed.
    """
    from ..analysis.stratify import negation_strata

    for item in rulebase:
        if any(isinstance(premise, Hypothetical) for premise in item.body):
            raise EvaluationError(
                f"stratified substrate cannot evaluate hypothetical rule: {item}"
            )

    if domain is None:
        domain = _domain_of(rulebase, db)
    layers = negation_strata(rulebase)
    interp = Interpretation(db)
    mode = join_mode(optimize_joins)
    plan = None
    if mode == "cost":
        domain_size = len(domain)

        def plan(positives, bound):
            return cost_aware_positive_order(
                positives, bound, interp.count, domain_size
            )

    instruments = None
    if metrics is not None:
        metrics.counter("stratified.strata").value += len(layers)
        interp.probes = metrics.counter("interp.index_probes")
        instruments = LayerInstruments(
            rounds=metrics.counter("stratified.rule_rounds"),
            firings=metrics.counter("stratified.rule_firings"),
            derived=metrics.counter("stratified.atoms_derived"),
            delta_size=metrics.histogram("stratified.delta_size"),
        )
    budget = (budget if budget is not None else NULL_BUDGET).begin()
    governed = budget.enabled
    strata_completed = 0
    try:
        for index, layer in enumerate(layers):
            if governed:
                budget.poll("stratified.stratum")
            layer_rules = [
                item
                for predicate in layer
                for item in rulebase.definition(predicate)
            ]
            ctx = (
                tracer.span(
                    "stratum", str(index), args={"rules": len(layer_rules)}
                )
                if tracer.enabled
                else NULL_SPAN
            )
            with ctx:
                close_layer(
                    layer_rules,
                    interp,
                    domain,
                    strategy=strategy,
                    plan=plan,
                    optimize=mode == "greedy",
                    instruments=instruments,
                    tracer=tracer,
                    budget=budget,
                )
            strata_completed += 1
    except ResourceExhausted as error:
        error.partial.merge_missing(
            atoms=interp.to_frozenset(), strata_completed=strata_completed
        )
        raise
    except KeyboardInterrupt:
        error = cancelled_error(budget)
        error.partial.merge_missing(
            atoms=interp.to_frozenset(), strata_completed=strata_completed
        )
        raise error from None
    except RecursionError:
        error = depth_error(budget)
        error.partial.merge_missing(
            atoms=interp.to_frozenset(), strata_completed=strata_completed
        )
        raise error from None
    return interp


def stratified_holds(
    rulebase: Rulebase, db: Database, goal: Atom, *, budget=None
) -> bool:
    """Convenience wrapper: is a ground goal in the perfect model?

    For patterns with variables, any matching instance counts
    (existential reading).
    """
    model = perfect_model(rulebase, db, budget=budget)
    if goal.is_ground:
        return goal in model
    return model.has_match(goal)
