"""Positive Datalog substrate: naive and semi-naive bottom-up evaluation.

This is the classical least-fixpoint machinery of Bancilhon and
Ramakrishnan's survey (reference [2] of the paper), used as the
substrate under stratified negation and re-used by the benches as a
baseline (experiment E12 measures naive vs semi-naive on transitive
closure).

Both evaluators accept only rules whose premises are all positive; the
richer layers (stratified negation, hypothetical premises) live in
:mod:`repro.engine.stratified` and :mod:`repro.engine.model`.  The
closure loop itself is shared with those layers — see
:mod:`repro.engine.delta` — so the delta discipline is implemented
exactly once.

Safety is not required: a rule variable not bound by any body atom is
grounded over the supplied domain, matching Definition 3's quantification
over ``dom(R, DB)``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from ..core.ast import Positive, Rule, Rulebase
from ..core.database import Database
from ..core.errors import EvaluationError, ResourceExhausted
from ..core.terms import Atom, Constant
from ..obs.metrics import Counter, MetricsRegistry, StatsView
from ..obs.trace import NULL_TRACER, Tracer
from .budget import NULL_BUDGET, cancelled_error, depth_error
from .delta import LayerInstruments, close_layer
from .interpretation import Interpretation

__all__ = ["naive_least_fixpoint", "seminaive_least_fixpoint", "FixpointStats"]


class FixpointStats(StatsView):
    """Deprecated: counters for a fixpoint run, now a thin view over a
    :class:`~repro.obs.metrics.MetricsRegistry` (``fixpoint.*``)."""

    _counter_fields = {
        "rounds": "fixpoint.rounds",
        "firings": "fixpoint.firings",
        "derived": "fixpoint.derived",
    }


Stats = Union[FixpointStats, MetricsRegistry]


def _fixpoint_instruments(stats: Optional[Stats]) -> Optional[LayerInstruments]:
    """Resolve the fixpoint counters once, outside the hot loop."""
    if stats is None:
        return None
    registry = stats if isinstance(stats, MetricsRegistry) else stats.registry
    return LayerInstruments(
        rounds=registry.counter("fixpoint.rounds"),
        firings=registry.counter("fixpoint.firings"),
        derived=registry.counter("fixpoint.derived"),
    )


def _check_positive(rules: Sequence[Rule]) -> None:
    for item in rules:
        for premise in item.body:
            if not isinstance(premise, Positive):
                raise EvaluationError(
                    f"positive-Datalog evaluator given non-positive premise "
                    f"{premise} in rule {item}"
                )


def _domain_of(rules: Sequence[Rule], facts: Iterable[Atom]) -> list[Constant]:
    constants: set[Constant] = set()
    for item in rules:
        constants.update(item.constants())
    for item in facts:
        constants.update(item.constants())
    return sorted(constants, key=lambda c: (str(type(c.value)), str(c.value)))


def _least_fixpoint(
    rules: Iterable[Rule],
    facts: Iterable[Atom],
    domain: Optional[Sequence[Constant]],
    stats: Optional[Stats],
    tracer: Tracer,
    strategy: str,
    budget,
    demand: str = "off",
    query=None,
    provenance=None,
) -> Interpretation:
    if demand not in ("auto", "on", "off"):
        raise EvaluationError(
            f"unknown demand mode {demand!r}; expected 'auto', 'on', or 'off'"
        )
    rule_list = list(rules)
    _check_positive(rule_list)
    interp = Interpretation(facts)
    if domain is None:
        domain = _domain_of(rule_list, interp)
    demand_predicates: frozenset[str] = frozenset()
    if demand != "off" and query is not None:
        # The positive fragment reuses the stratified substrate's
        # rewrite glue (a positive program rewrites to a positive
        # program: seeds, magic, and guards are all positive).
        from .stratified import _demand_rewrite

        registry = None
        if stats is not None:
            registry = (
                stats if isinstance(stats, MetricsRegistry) else stats.registry
            )
        rewritten, demand_predicates = _demand_rewrite(
            Rulebase(rule_list), domain, query, registry, tracer
        )
        if demand_predicates:
            rule_list = list(rewritten.rules)

    def snapshot() -> frozenset[Atom]:
        if not demand_predicates:
            return interp.to_frozenset()
        return frozenset(
            atom
            for atom in interp
            if atom.predicate not in demand_predicates
        )

    record = None
    if provenance is not None and provenance.enabled:
        # Key recorded edges by the input facts as a database (edges
        # explain derivations *from this EDB*; ``interp`` holds exactly
        # the input facts here), auxiliary demand atoms stripped so
        # they explain the original program.
        base = (
            facts
            if isinstance(facts, Database)
            else Database(interp.to_frozenset())
        )
        record = provenance.sink(base, aux=demand_predicates)
    budget = (budget if budget is not None else NULL_BUDGET).begin()
    try:
        close_layer(
            rule_list,
            interp,
            domain,
            strategy=strategy,
            instruments=_fixpoint_instruments(stats),
            tracer=tracer,
            budget=budget,
            record=record,
        )
    except ResourceExhausted as error:
        error.partial.merge_missing(atoms=snapshot())
        raise
    except KeyboardInterrupt:
        error = cancelled_error(budget)
        error.partial.merge_missing(atoms=snapshot())
        raise error from None
    except RecursionError:
        error = depth_error(budget)
        error.partial.merge_missing(atoms=snapshot())
        raise error from None
    if demand_predicates:
        from .stratified import _strip_demand

        registry = None
        if stats is not None:
            registry = (
                stats if isinstance(stats, MetricsRegistry) else stats.registry
            )
        return _strip_demand(interp, demand_predicates, registry)
    return interp


def naive_least_fixpoint(
    rules: Iterable[Rule],
    facts: Iterable[Atom],
    domain: Optional[Sequence[Constant]] = None,
    stats: Optional[Stats] = None,
    tracer: Tracer = NULL_TRACER,
    budget=None,
    demand: str = "off",
    query=None,
    provenance=None,
) -> Interpretation:
    """Least fixpoint by naive iteration.

    Every round applies every rule against the full interpretation;
    stops when a round adds nothing.  Simple and obviously correct —
    the baseline for experiment E12.  ``stats`` may be a legacy
    :class:`FixpointStats` or a :class:`~repro.obs.metrics.MetricsRegistry`.
    ``budget`` (a :class:`~repro.engine.budget.Budget`) bounds the run;
    on exhaustion the raised :class:`ResourceExhausted` carries the
    atoms derived so far.  ``demand`` (with a ``query``) evaluates the
    magic-sets rewrite instead, returning only the demanded atoms
    (docs/DEMAND.md); a rejected rewrite falls back to the full
    fixpoint and bumps ``engine.demand_fallbacks``.  ``provenance`` (a
    :class:`~repro.obs.provenance.ProvenanceRecorder`) records one
    why-provenance edge per derivation.
    """
    return _least_fixpoint(
        rules,
        facts,
        domain,
        stats,
        tracer,
        "naive",
        budget,
        demand,
        query,
        provenance,
    )


def seminaive_least_fixpoint(
    rules: Iterable[Rule],
    facts: Iterable[Atom],
    domain: Optional[Sequence[Constant]] = None,
    stats: Optional[Stats] = None,
    tracer: Tracer = NULL_TRACER,
    budget=None,
    demand: str = "off",
    query=None,
    provenance=None,
) -> Interpretation:
    """Least fixpoint by semi-naive (differential) iteration.

    A full first round establishes the one-step consequences; every
    later round only considers rule instantiations in which at least
    one body atom matches a fact derived in the previous round (see
    :func:`repro.engine.delta.close_layer`).  ``budget`` bounds the run
    as in :func:`naive_least_fixpoint`; ``demand``/``query`` and
    ``provenance`` work as there.
    """
    return _least_fixpoint(
        rules,
        facts,
        domain,
        stats,
        tracer,
        "seminaive",
        budget,
        demand,
        query,
        provenance,
    )
