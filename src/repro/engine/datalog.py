"""Positive Datalog substrate: naive and semi-naive bottom-up evaluation.

This is the classical least-fixpoint machinery of Bancilhon and
Ramakrishnan's survey (reference [2] of the paper), used as the
substrate under stratified negation and re-used by the benches as a
baseline (experiment E12 measures naive vs semi-naive on transitive
closure).

Both evaluators accept only rules whose premises are all positive; the
richer layers (stratified negation, hypothetical premises) live in
:mod:`repro.engine.stratified` and :mod:`repro.engine.model`.

Safety is not required: a rule variable not bound by any body atom is
grounded over the supplied domain, matching Definition 3's quantification
over ``dom(R, DB)``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Union

from ..core.ast import Positive, Rule
from ..core.errors import EvaluationError
from ..core.terms import Atom, Constant
from ..core.unify import Substitution, ground_instances
from ..obs.metrics import Counter, MetricsRegistry, StatsView
from ..obs.trace import NULL_SPAN, NULL_TRACER, Tracer
from .interpretation import Interpretation

__all__ = ["naive_least_fixpoint", "seminaive_least_fixpoint", "FixpointStats"]


class FixpointStats(StatsView):
    """Deprecated: counters for a fixpoint run, now a thin view over a
    :class:`~repro.obs.metrics.MetricsRegistry` (``fixpoint.*``)."""

    _counter_fields = {
        "rounds": "fixpoint.rounds",
        "firings": "fixpoint.firings",
        "derived": "fixpoint.derived",
    }


Stats = Union[FixpointStats, MetricsRegistry]


def _fixpoint_counters(
    stats: Optional[Stats],
) -> Optional[tuple[Counter, Counter, Counter]]:
    """Resolve the three fixpoint counters once, outside the hot loop."""
    if stats is None:
        return None
    registry = stats if isinstance(stats, MetricsRegistry) else stats.registry
    return (
        registry.counter("fixpoint.rounds"),
        registry.counter("fixpoint.firings"),
        registry.counter("fixpoint.derived"),
    )


def _positive_atoms(item: Rule) -> list[Atom]:
    atoms: list[Atom] = []
    for premise in item.body:
        if not isinstance(premise, Positive):
            raise EvaluationError(
                f"positive-Datalog evaluator given non-positive premise "
                f"{premise} in rule {item}"
            )
        atoms.append(premise.atom)
    return atoms


def _derive_heads(
    item: Rule,
    body: Sequence[Atom],
    interp: Interpretation,
    domain: Sequence[Constant],
    required_delta: Optional[tuple[int, Interpretation]] = None,
) -> Iterator[Atom]:
    """Enumerate head instances of one rule against an interpretation.

    ``required_delta = (index, delta)`` restricts the join so that the
    body atom at ``index`` matches within ``delta`` — the semi-naive
    discipline (at least one premise uses a newly derived fact).
    """

    def extend(position: int, binding: Substitution) -> Iterator[Substitution]:
        if position == len(body):
            yield binding
            return
        source: Interpretation = interp
        if required_delta is not None and position == required_delta[0]:
            source = required_delta[1]
        for extended in source.matches(body[position], binding):
            yield from extend(position + 1, extended)

    head_variables = set(item.head.variables())
    for binding in extend(0, {}):
        unbound = [var for var in head_variables if var not in binding]
        if unbound:
            for grounded in ground_instances(unbound, domain, binding):
                yield item.head.substitute(grounded)
        else:
            yield item.head.substitute(binding)


def _domain_of(rules: Sequence[Rule], facts: Iterable[Atom]) -> list[Constant]:
    constants: set[Constant] = set()
    for item in rules:
        constants.update(item.constants())
    for item in facts:
        constants.update(item.constants())
    return sorted(constants, key=lambda c: (str(type(c.value)), str(c.value)))


def naive_least_fixpoint(
    rules: Iterable[Rule],
    facts: Iterable[Atom],
    domain: Optional[Sequence[Constant]] = None,
    stats: Optional[Stats] = None,
    tracer: Tracer = NULL_TRACER,
) -> Interpretation:
    """Least fixpoint by naive iteration.

    Every round applies every rule against the full interpretation;
    stops when a round adds nothing.  Simple and obviously correct —
    the baseline for experiment E12.  ``stats`` may be a legacy
    :class:`FixpointStats` or a :class:`~repro.obs.metrics.MetricsRegistry`.
    """
    rule_list = list(rules)
    interp = Interpretation(facts)
    if domain is None:
        domain = _domain_of(rule_list, interp)
    bodies = [_positive_atoms(item) for item in rule_list]
    counters = _fixpoint_counters(stats)
    changed = True
    round_index = 0
    while changed:
        changed = False
        round_index += 1
        if counters is not None:
            counters[0].value += 1
        ctx = (
            tracer.span("round", str(round_index), args={"strategy": "naive"})
            if tracer.enabled
            else NULL_SPAN
        )
        with ctx:
            pending: list[Atom] = []
            for item, body in zip(rule_list, bodies):
                for head in _derive_heads(item, body, interp, domain):
                    if counters is not None:
                        counters[1].value += 1
                    pending.append(head)
            for head in pending:
                if interp.add(head):
                    changed = True
                    if counters is not None:
                        counters[2].value += 1
    return interp


def seminaive_least_fixpoint(
    rules: Iterable[Rule],
    facts: Iterable[Atom],
    domain: Optional[Sequence[Constant]] = None,
    stats: Optional[Stats] = None,
    tracer: Tracer = NULL_TRACER,
) -> Interpretation:
    """Least fixpoint by semi-naive (differential) iteration.

    Each round only considers rule instantiations in which at least one
    body atom matches a fact derived in the previous round, which
    avoids re-deriving the whole relation every round.  First round
    seeds the delta with the base facts.
    """
    rule_list = list(rules)
    interp = Interpretation(facts)
    if domain is None:
        domain = _domain_of(rule_list, interp)
    bodies = [_positive_atoms(item) for item in rule_list]
    counters = _fixpoint_counters(stats)
    delta = interp.copy()
    first_round = True
    round_index = 0
    while len(delta) or first_round:
        round_index += 1
        if counters is not None:
            counters[0].value += 1
        ctx = (
            tracer.span(
                "round",
                str(round_index),
                args={"strategy": "seminaive", "delta": len(delta)},
            )
            if tracer.enabled
            else NULL_SPAN
        )
        with ctx:
            next_delta = Interpretation()
            for item, body in zip(rule_list, bodies):
                if not body:
                    # Bodiless rules fire once, on the first round.
                    if first_round:
                        for head in _derive_heads(item, body, interp, domain):
                            if counters is not None:
                                counters[1].value += 1
                            if head not in interp:
                                next_delta.add(head)
                    continue
                delta_positions = [
                    index
                    for index, pattern in enumerate(body)
                    if delta.count(pattern.predicate)
                ]
                for index in delta_positions:
                    for head in _derive_heads(
                        item, body, interp, domain, required_delta=(index, delta)
                    ):
                        if counters is not None:
                            counters[1].value += 1
                        if head not in interp:
                            next_delta.add(head)
            if counters is not None:
                counters[2].value += len(next_delta)
            interp.update(next_delta)
            delta = next_delta
            first_round = False
    return interp
