"""Proof objects: explicit derivations for ``R, DB |- A``.

The engines answer yes/no; for a consultation-style system (the legal
applications that motivated hypothetical rules in the first place) a
*yes* should come with a derivation.  This module provides

* :class:`Proof` — a tree of rule applications.  A node proves one
  ground atom at one database; its children prove the rule's premises.
  Hypothetical premises switch databases (the additions/deletions are
  recorded on the edge); negated premises carry no subproof — negation
  by failure has no finite constructive witness — but are recorded and
  re-checked by the verifier.
* :class:`Explainer` — reconstructs a proof for any provable goal by
  searching rule choices, using a :class:`TopDownEngine` to prune
  unprovable branches.
* :func:`verify_proof` — an *independent* checker: it validates every
  node against Definition 3 without consulting the explainer (negated
  premises are re-evaluated with a fresh engine).
* :func:`format_proof` — indentation-based rendering.

The round trip ``explain -> verify`` is itself a strong test of the
engines and is exercised in ``tests/test_proofs.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Union

from ..core.ast import Hypothetical, Negated, Positive, Premise, Rule, Rulebase
from ..core.database import Database
from ..core.errors import EvaluationError
from ..core.parser import parse_premise
from ..core.terms import Atom, Constant
from ..core.unify import Substitution, ground_instances, match
from .body import nonlocal_variables, ordered_premises
from .topdown import TopDownEngine

__all__ = ["Proof", "PremiseStep", "Explainer", "verify_proof", "format_proof"]


@dataclass(frozen=True)
class PremiseStep:
    """One premise of a rule application, with its evidence.

    * positive premise — ``proof`` is the subproof (same database);
    * hypothetical premise — ``proof`` is the subproof at the updated
      database (recorded in ``proof.db``);
    * negated premise — ``proof`` is ``None``; the verifier re-checks
      that no instance of the (partially grounded) atom is derivable.
    """

    premise: Premise  # grounded by the rule application's substitution
    proof: Optional["Proof"]


@dataclass(frozen=True)
class Proof:
    """A derivation of ``goal`` at ``db``.

    ``rule is None`` means the goal is a database fact (inference rule
    1); otherwise the node is an application of ``rule`` under
    ``binding`` (inference rule 3), with one :class:`PremiseStep` per
    body premise.  Inference rule 2 (hypotheticals) appears as the
    database change between a step's premise and its subproof.
    """

    goal: Atom
    db: Database
    rule: Optional[Rule] = None
    steps: tuple[PremiseStep, ...] = ()

    @property
    def is_fact(self) -> bool:
        return self.rule is None

    def size(self) -> int:
        """Number of nodes in the proof tree."""
        return 1 + sum(
            step.proof.size() for step in self.steps if step.proof is not None
        )

    def depth(self) -> int:
        """Height of the proof tree."""
        inner = [
            step.proof.depth() for step in self.steps if step.proof is not None
        ]
        return 1 + (max(inner) if inner else 0)


class Explainer:
    """Builds :class:`Proof` trees for provable goals.

    The search mirrors the top-down engine's, but keeps enough
    structure to emit the winning rule applications.  The engine's
    memo tables prune failing branches, so explanation cost stays close
    to decision cost.
    """

    def __init__(self, rulebase: Rulebase, *, budget=None) -> None:
        self._rulebase = rulebase
        self._engine = TopDownEngine(rulebase, budget=budget)
        self._budget = budget
        self._call_budget = budget

    @property
    def rulebase(self) -> Rulebase:
        return self._rulebase

    def explain(
        self, db: Database, query: Union[str, Atom, Premise], *, budget=None
    ) -> Optional[Proof]:
        """A proof of the query at ``db``, or ``None`` if unprovable.

        Accepts the same query forms as the engines.  For a
        hypothetical query the returned proof is rooted at the updated
        database; for a negated query there is nothing to return, and
        :class:`EvaluationError` is raised (negation has no witness).
        ``budget`` (a :class:`~repro.engine.budget.Budget`) bounds the
        underlying decision calls for this explanation; it is
        cumulative across them, so a runaway proof search trips it
        exactly as a runaway query would (docs/ROBUSTNESS.md).
        """
        self._call_budget = budget if budget is not None else self._budget
        premise = self._coerce(query)
        if isinstance(premise, Negated):
            raise EvaluationError(
                "negated queries have no constructive proof to explain"
            )
        domain = self._engine.domain(db)
        unbound = list(dict.fromkeys(premise.variables()))
        for binding in ground_instances(unbound, domain):
            grounded = premise.substitute(binding)
            if isinstance(grounded, Hypothetical):
                updated = db.without_facts(*grounded.deletions).with_facts(
                    *grounded.additions
                )
                proof = self._explain_atom(grounded.atom, updated, domain, set())
            else:
                proof = self._explain_atom(grounded.atom, db, domain, set())
            if proof is not None:
                return proof
        return None

    @staticmethod
    def _coerce(query: Union[str, Atom, Premise]) -> Premise:
        if isinstance(query, str):
            return parse_premise(query)
        if isinstance(query, Atom):
            return Positive(query)
        return query

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _explain_atom(
        self,
        goal: Atom,
        db: Database,
        domain: Sequence[Constant],
        path: set,
    ) -> Optional[Proof]:
        if goal in db:
            return Proof(goal, db)
        key = (goal, db)
        if key in path:
            return None  # minimal proofs never feed a goal to itself
        if not self._engine.ask(db, goal, budget=self._call_budget):
            return None
        path.add(key)
        try:
            for item in self._rulebase.definition(goal.predicate):
                head_binding = match(item.head, goal)
                if head_binding is None:
                    continue
                body = ordered_premises(item.body)
                guard = nonlocal_variables(item)
                for binding in self._satisfying_bindings(
                    body, 0, head_binding, db, domain, guard
                ):
                    steps = self._build_steps(item, body, binding, db, domain, path)
                    if steps is not None:
                        return Proof(goal, db, item, steps)
        finally:
            path.discard(key)
        return None

    def _satisfying_bindings(
        self,
        body: Sequence[Premise],
        position: int,
        binding: Substitution,
        db: Database,
        domain: Sequence[Constant],
        guard: Sequence = (),
    ) -> Iterator[Substitution]:
        """Ground substitutions under which every premise holds."""
        if position == len(body):
            yield dict(binding)
            return
        premise = body[position]
        if isinstance(premise, Negated):
            missing = [var for var in guard if var not in binding]
            if missing:
                for grounded in ground_instances(missing, domain, binding):
                    yield from self._satisfying_bindings(
                        body, position, grounded, db, domain, ()
                    )
                return
        if isinstance(premise, Positive):
            seen = set()
            pattern = premise.atom
            variables = list(dict.fromkeys(pattern.variables()))
            for extended in db.matches(pattern, binding):
                signature = tuple(extended.get(var) for var in variables)
                seen.add(signature)
                yield from self._satisfying_bindings(
                    body, position + 1, extended, db, domain, guard
                )
            if self._rulebase.definition(pattern.predicate):
                unbound = [var for var in variables if var not in binding]
                for extended in ground_instances(unbound, domain, binding):
                    signature = tuple(extended.get(var) for var in variables)
                    if signature in seen:
                        continue
                    if self._engine.ask(
                        db, pattern.substitute(extended), budget=self._call_budget
                    ):
                        yield from self._satisfying_bindings(
                            body, position + 1, extended, db, domain, guard
                        )
        elif isinstance(premise, Hypothetical):
            unbound = [
                var
                for var in dict.fromkeys(premise.variables())
                if var not in binding
            ]
            for extended in ground_instances(unbound, domain, binding):
                grounded = premise.substitute(extended)
                updated = db.without_facts(*grounded.deletions).with_facts(
                    *grounded.additions
                )
                if self._engine.ask(
                    updated, grounded.atom, budget=self._call_budget
                ):
                    yield from self._satisfying_bindings(
                        body, position + 1, extended, db, domain, guard
                    )
        else:  # Negated: remaining variables are local to the negation
            pattern = premise.atom.substitute(binding)
            unbound = list(dict.fromkeys(pattern.variables()))
            holds = not any(
                self._engine.ask(
                    db, pattern.substitute(grounding), budget=self._call_budget
                )
                for grounding in ground_instances(unbound, domain)
            )
            if holds:
                yield from self._satisfying_bindings(
                    body, position + 1, binding, db, domain, guard
                )

    def _build_steps(
        self,
        item: Rule,
        body: Sequence[Premise],
        binding: Substitution,
        db: Database,
        domain: Sequence[Constant],
        path: set,
    ) -> Optional[tuple[PremiseStep, ...]]:
        """Recursively prove the premises; None if any subproof fails
        (possible despite engine-provability when the only derivations
        run through the current path)."""
        steps: list[PremiseStep] = []
        for premise in body:
            grounded = premise.substitute(binding)
            if isinstance(grounded, Positive):
                subproof = self._explain_atom(grounded.atom, db, domain, path)
                if subproof is None:
                    return None
                steps.append(PremiseStep(grounded, subproof))
            elif isinstance(grounded, Hypothetical):
                updated = db.without_facts(*grounded.deletions).with_facts(
                    *grounded.additions
                )
                subproof = self._explain_atom(grounded.atom, updated, domain, path)
                if subproof is None:
                    return None
                steps.append(PremiseStep(grounded, subproof))
            else:
                steps.append(PremiseStep(grounded, None))
        return tuple(steps)


def verify_proof(rulebase: Rulebase, proof: Proof) -> bool:
    """Independently check a proof against Definition 3.

    Fact nodes must be database members.  Rule nodes must use a rule of
    the rulebase whose head matches the goal; each step's premise must
    be the corresponding body premise under one common substitution;
    positive subproofs stay at the same database, hypothetical
    subproofs move to the updated database, and negated premises are
    re-evaluated with a fresh engine (negation has no witness to
    check).
    """
    engine = TopDownEngine(rulebase)
    return _verify(rulebase, proof, engine)


def _verify(rulebase: Rulebase, proof: Proof, engine: TopDownEngine) -> bool:
    if proof.rule is None:
        return proof.goal in proof.db
    if proof.rule not in rulebase.rules:
        return False
    binding = match(proof.rule.head, proof.goal)
    if binding is None:
        return False
    expected = ordered_premises(proof.rule.body)
    if len(expected) != len(proof.steps):
        return False
    # One common substitution must connect the rule to every step.
    for template, step in zip(expected, proof.steps):
        extended = _match_premise(template, step.premise, binding)
        if extended is None:
            return False
        binding = extended
    for step in proof.steps:
        premise = step.premise
        if isinstance(premise, Positive):
            if step.proof is None or step.proof.goal != premise.atom:
                return False
            if step.proof.db != proof.db:
                return False
            if not _verify(rulebase, step.proof, engine):
                return False
        elif isinstance(premise, Hypothetical):
            if step.proof is None or step.proof.goal != premise.atom:
                return False
            updated = proof.db.without_facts(*premise.deletions).with_facts(
                *premise.additions
            )
            if step.proof.db != updated:
                return False
            if not _verify(rulebase, step.proof, engine):
                return False
        else:  # Negated: re-evaluate
            if step.proof is not None:
                return False
            if engine.ask(proof.db, Negated(premise.atom)) is False:
                return False
    return True


def _match_premise(
    template: Premise, grounded: Premise, binding: Substitution
) -> Optional[Substitution]:
    """Extend ``binding`` so that ``template`` becomes ``grounded``."""
    if type(template) is not type(grounded):
        return None
    current = match(template.goal.substitute(binding), grounded.goal, binding)
    if current is None:
        return None
    if isinstance(template, Hypothetical):
        assert isinstance(grounded, Hypothetical)
        if len(template.additions) != len(grounded.additions):
            return None
        if len(template.deletions) != len(grounded.deletions):
            return None
        for pattern, target in zip(
            template.additions + template.deletions,
            grounded.additions + grounded.deletions,
        ):
            current = match(pattern.substitute(current), target, current)
            if current is None:
                return None
    return current


def format_proof(proof: Proof, indent: int = 0) -> str:
    """Indented rendering of a proof tree.

    Fact leaves print as ``atom  [fact]``; rule nodes print the rule
    they apply; hypothetical steps show the database change.
    """
    pad = "  " * indent
    lines: list[str] = []
    if proof.is_fact:
        lines.append(f"{pad}{proof.goal}  [fact in DB]")
        return "\n".join(lines)
    lines.append(f"{pad}{proof.goal}  [by rule: {proof.rule}]")
    for step in proof.steps:
        premise = step.premise
        if isinstance(premise, Negated):
            lines.append(f"{pad}  {premise}  [by failure]")
        elif isinstance(premise, Hypothetical):
            changes = []
            if premise.additions:
                changes.append(
                    "+{" + ", ".join(str(a) for a in premise.additions) + "}"
                )
            if premise.deletions:
                changes.append(
                    "-{" + ", ".join(str(a) for a in premise.deletions) + "}"
                )
            lines.append(f"{pad}  [hypothetically {' '.join(changes)}]")
            lines.append(format_proof(step.proof, indent + 2))
        else:
            lines.append(format_proof(step.proof, indent + 1))
    return "\n".join(lines)
