"""Seeded synthetic workloads for the benchmark harness.

The paper has no datasets; every bench runs on generated inputs shaped
after the paper's own examples.  All generators take an explicit seed
so runs are reproducible.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.ast import Rulebase
from ..core.database import Database
from ..core.parser import parse_program

__all__ = [
    "random_graph",
    "path_graph",
    "cycle_graph",
    "transitive_closure_rules",
    "chain_edges_db",
    "random_database",
    "random_layered_rulebase",
]


def random_graph(
    n: int, edge_probability: float, seed: int
) -> tuple[list[str], list[tuple[str, str]]]:
    """A directed G(n, p) graph with nodes ``v0 .. v{n-1}``."""
    rng = random.Random(seed)
    nodes = [f"v{index}" for index in range(n)]
    edges = [
        (source, target)
        for source in nodes
        for target in nodes
        if source != target and rng.random() < edge_probability
    ]
    return nodes, edges


def path_graph(n: int) -> tuple[list[str], list[tuple[str, str]]]:
    """A directed path ``v0 -> v1 -> ... -> v{n-1}`` (Hamiltonian by
    construction — the easy positive instance)."""
    nodes = [f"v{index}" for index in range(n)]
    return nodes, list(zip(nodes, nodes[1:]))


def cycle_graph(n: int) -> tuple[list[str], list[tuple[str, str]]]:
    """A directed cycle on ``n`` nodes."""
    nodes = [f"v{index}" for index in range(n)]
    edges = list(zip(nodes, nodes[1:]))
    if n > 1:
        edges.append((nodes[-1], nodes[0]))
    return nodes, edges


def transitive_closure_rules() -> Rulebase:
    """The canonical linear-recursive Horn program (substrate bench E12)."""
    return parse_program(
        """
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
        """
    )


def chain_edges_db(n: int) -> Database:
    """``edge`` facts for a length-``n`` chain."""
    _, edges = path_graph(n)
    return Database.from_relations({"edge": edges})


def random_database(
    predicates: Sequence[tuple[str, int]],
    domain_size: int,
    facts_per_predicate: int,
    seed: int,
) -> Database:
    """Random facts over a fresh domain ``c0 .. c{n-1}``."""
    rng = random.Random(seed)
    domain = [f"c{index}" for index in range(domain_size)]
    relations: dict = {}
    for name, arity in predicates:
        rows = set()
        attempts = 0
        while len(rows) < facts_per_predicate and attempts < 20 * facts_per_predicate:
            rows.add(tuple(rng.choice(domain) for _ in range(arity)))
            attempts += 1
        relations[name] = sorted(rows)
    return Database.from_relations(relations)


def random_layered_rulebase(
    predicates: int, strata: int, seed: int, rules_per_predicate: int = 2
) -> Rulebase:
    """A random linearly stratified rulebase for the Lemma 1 bench (E7).

    Predicates are assigned to strata round-robin.  Each predicate gets
    ``rules_per_predicate`` rules mixing (i) a linear hypothetical
    self-recursion triggered by an EDB guard, (ii) positive references
    to earlier predicates of the same stratum, and (iii) a
    negation-by-failure step down to the stratum below — the Example 9
    shape, scaled up and randomized.  The result is linearly
    stratifiable by construction; its size (not its meaning) is what
    the bench measures.
    """
    if predicates < strata:
        raise ValueError("need at least one predicate per stratum")
    rng = random.Random(seed)
    names = [f"p{index}" for index in range(predicates)]
    stratum_of = {name: index % strata + 1 for index, name in enumerate(names)}
    lines: list[str] = []
    for index, name in enumerate(names):
        stratum = stratum_of[name]
        if stratum == index + 1:
            # The first predicate of each stratum anchors the layering:
            # a linear hypothetical rule pins it to the Sigma segment,
            # and (above stratum 1) a negation of the previous anchor
            # forces a genuinely new stratum.
            lines.append(f"{name} :- e{index}, {name}[add: h{index}].")
            if stratum > 1:
                lines.append(f"{name} :- d{index}, ~p{index - 1}.")
        lower_same = [
            other
            for other in names[:index]
            if stratum_of[other] == stratum
        ]
        below = [other for other in names if stratum_of[other] < stratum]
        for _ in range(rules_per_predicate):
            shape = rng.randrange(3)
            if shape == 0:
                lines.append(f"{name} :- e{index}, {name}[add: h{index}].")
            elif shape == 1 and lower_same:
                lines.append(f"{name} :- {rng.choice(lower_same)}, e{index}.")
            elif shape == 2 and below:
                lines.append(f"{name} :- d{index}, ~{rng.choice(below)}.")
            else:
                lines.append(f"{name} :- e{index}.")
    return parse_program("\n".join(lines))
