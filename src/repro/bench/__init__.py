"""Workload generators for the benchmark harness."""

from .workloads import (
    chain_edges_db,
    cycle_graph,
    path_graph,
    random_database,
    random_graph,
    random_layered_rulebase,
    transitive_closure_rules,
)

__all__ = [
    "random_graph",
    "path_graph",
    "cycle_graph",
    "transitive_closure_rules",
    "chain_edges_db",
    "random_database",
    "random_layered_rulebase",
]
