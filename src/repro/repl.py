"""Interactive console for hypothetical Datalog.

Start with ``hypodatalog repl`` (optionally ``RULES`` / ``-d DB``).
The loop accepts three kinds of input:

* ``?- <premise>.`` — a query.  A plain atom pattern with variables
  enumerates answers; anything else (ground atoms, hypothetical or
  negated premises) prints ``yes`` / ``no``.
* ``<rule>.`` — a rule is added to the rulebase; a ground fact is added
  to the database.
* ``:command`` — one of::

      :rules            print the current rulebase
      :facts            print the current database
      :retract FACT     remove a ground fact from the database
                        (private to your session when connected)
      :watch PATTERN    register a standing query: after every
                        assert/retract the +/- diff of its answer set
                        is printed (docs/INCREMENTAL.md); when
                        connected, subscribes server-side and renders
                        the pushed watch event frames
      :unwatch NAME     drop a standing query (names are w1, w2, ...)
      :classify         Theorem 1 classification
      :stratify         print the linear stratification
      :lint             hygiene findings (legacy codes)
      :check [FORMAT]   full diagnostics; FORMAT: text | json | sarif
      :engine NAME      auto | prove | topdown | model
      :limits [SPEC]    resource limits for queries; SPEC is
                        ``timeout=SEC steps=N atoms=N depth=N`` in any
                        combination, or ``off`` to clear; no argument
                        shows the current limits
      :explain QUERY    print a derivation
      :explain demand QUERY
                        print the query's adorned/demand-rewritten
                        program (docs/DEMAND.md)
      :why QUERY        proof replayed from recorded provenance
                        edges; evaluates on demand if needed
                        (docs/OBSERVABILITY.md)
      :whynot QUERY     failure witness for an underivable query
      :assumptions QUERY
                        the hypothetical [add: ...] facts a
                        derivation of QUERY actually used
      :profile QUERY    run one query traced; print spans + metrics
      :plan [PRED]      generated join-kernel source for the rules
                        defining PRED (all rules when omitted)
                        (docs/PERFORMANCE.md)
      :stats [reset]    cumulative engine metrics for this session,
                        including the ``kernel.*`` compiled-path
                        counters; warns when the engine has degraded
                        to the interpreted naive fallback
      :load FILE        add rules from a file
      :db FILE          add facts from a file
      :connect HOST:PORT
                        attach to a running `hypodatalog serve`
                        instance (docs/SERVER.md): queries and ground
                        fact asserts are forwarded to a private
                        server-side session; :limits become the
                        per-request budget (clamped by the server)
      :disconnect       detach from the server; local rules return
      :reset            drop all rules and facts
      :help             this text
      :quit             leave

The engine is rebuilt lazily after every change, so stratification is
re-analyzed as the rulebase evolves.  The class is I/O-free (feed a
line, get text back), which is how the tests drive it.

Robustness (docs/ROBUSTNESS.md): ``:limits`` applies a fresh
:class:`~repro.engine.budget.Budget` to every query; an exhausted or
Ctrl-C-cancelled query reports the partial answers established so far
and leaves the session usable.  At the prompt, Ctrl-C clears the line
and Ctrl-D leaves cleanly.
"""

from __future__ import annotations

import itertools
import sys
from typing import Optional

from .analysis.classify import classify
from .analysis.lint import lint
from .analysis.stratify import linear_stratification
from .core.ast import Rulebase
from .core.database import Database
from .core.errors import HypotheticalDatalogError, ResourceExhausted
from .core.parser import (
    parse_atom,
    parse_database,
    parse_premise,
    parse_program,
    parse_rule,
)
from .core.pretty import format_database, format_stratification
from .core.ast import Positive
from .engine.budget import Budget
from .engine.query import Session, StandingQuery

__all__ = ["Repl", "run"]

_HELP = __doc__.split(":command`` — one of::", 1)[1].split("The engine", 1)[0]


class _RemoteLink:
    """A blocking JSON-lines client for ``:connect`` (docs/SERVER.md).

    One socket, one request in flight at a time — exactly the REPL's
    cadence.  Transport failures raise ``OSError`` (the command layer
    converts them to an ``error:`` line and drops the link), protocol
    errors come back as normal error responses.
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        import socket

        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._counter = 0
        self.address = f"{host}:{port}"
        #: Unsolicited ``watch`` event frames read while waiting for a
        #: response (the server pushes them after assert/retract);
        #: drained and rendered by the command layer.
        self.events: list[dict] = []

    def call(self, op: str, **params) -> dict:
        """One request/response round trip; returns the response frame.

        Event frames (``"event"`` key, no ``"ok"``) encountered while
        waiting are stashed on :attr:`events`, never returned.
        """
        import json

        from .server.protocol import encode_frame

        self._counter += 1
        frame = {"v": 1, "id": self._counter, "op": op}
        frame.update(
            (key, value) for key, value in params.items() if value is not None
        )
        self._file.write(encode_frame(frame))
        self._file.flush()
        while True:
            line = self._file.readline()
            if not line:
                raise OSError("server closed the connection")
            response = json.loads(line)
            if (
                isinstance(response, dict)
                and "event" in response
                and "ok" not in response
            ):
                self.events.append(response)
                continue
            return response

    def drain_events(self) -> list[dict]:
        """Hand over (and clear) the stashed event frames."""
        events, self.events = self.events, []
        return events

    def close(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass


class Repl:
    """The evaluation loop, one line at a time."""

    def __init__(
        self,
        rulebase: Optional[Rulebase] = None,
        db: Optional[Database] = None,
        engine: str = "auto",
    ) -> None:
        from .obs.metrics import MetricsRegistry

        self._rulebase = rulebase if rulebase is not None else Rulebase()
        self._db = db if db is not None else Database()
        self._engine_choice = engine
        self._session: Optional[Session] = None
        # One registry for the whole sitting: sessions are rebuilt after
        # every rulebase change, but their counters land here, so
        # ``:stats`` reports cumulative work.
        self._metrics = MetricsRegistry()
        # ``:limits`` template; each query runs under a fresh copy so
        # limits never accumulate across queries.
        self._limits: Optional[Budget] = None
        # Recording bottom-up session behind :why/:whynot/:assumptions,
        # built lazily and dropped on every rulebase/database change so
        # its provenance edges never go stale.
        self._prov_session: Optional[Session] = None
        # ``:connect`` link; while set, queries/asserts go remote.
        self._remote: Optional[_RemoteLink] = None
        # ``:watch`` standing queries (docs/INCREMENTAL.md): local
        # watches by name, plus the ids subscribed on the remote side.
        self._watches: dict[str, StandingQuery] = {}
        self._watch_names = itertools.count(1)
        self._remote_watches: set[str] = set()
        self.done = False

    # -- state ----------------------------------------------------------

    @property
    def rulebase(self) -> Rulebase:
        return self._rulebase

    @property
    def db(self) -> Database:
        return self._db

    def _invalidate(self) -> None:
        self._session = None
        self._prov_session = None

    def _require_session(self) -> Session:
        if self._session is None:
            self._session = Session(
                self._rulebase, self._engine_choice, metrics=self._metrics
            )
            for query in self._watches.values():
                query.rebind(self._session)
        return self._session

    # -- the loop body ----------------------------------------------------

    def feed(self, line: str) -> str:
        """Process one input line; return the text to display."""
        text = line.strip()
        if not text or text.startswith("%") or text.startswith("#"):
            return ""
        try:
            if text.startswith(":"):
                return self._command(text)
            if text.startswith("?-"):
                return self._query(text[2:].strip())
            return self._assert(text)
        except HypotheticalDatalogError as error:
            return f"error: {error}"

    def _budget(self) -> Optional[Budget]:
        return self._limits.fresh() if self._limits is not None else None

    def _query(self, text: str) -> str:
        if text.endswith("."):
            text = text[:-1]
        premise = parse_premise(text)
        if self._remote is not None:
            return self._remote_query(text, premise)
        session = self._require_session()
        variables = list(dict.fromkeys(premise.variables()))
        try:
            if variables and isinstance(premise, Positive):
                rows = session.answers(
                    self._db, premise.atom, budget=self._budget()
                )
                if not rows:
                    return "no"
                names = [var.name for var in variables]
                lines = []
                for row in sorted(rows, key=str):
                    lines.append(
                        ", ".join(
                            f"{name} = {value}"
                            for name, value in zip(names, row)
                        )
                    )
                return "\n".join(lines)
            result = session.ask(self._db, premise, budget=self._budget())
            return "yes" if result else "no"
        except ResourceExhausted as error:
            return self._render_exhausted(error, variables)

    @staticmethod
    def _render_exhausted(error: ResourceExhausted, variables) -> str:
        lines = [f"error: {error}"]
        partial = error.partial
        if partial.answers:
            names = [var.name for var in variables]
            lines.append(
                f"partial answers ({len(partial.answers)} established "
                f"before the limit):"
            )
            for row in sorted(partial.answers, key=str):
                lines.append(
                    "  "
                    + ", ".join(
                        f"{name} = {value}"
                        for name, value in zip(names, row)
                    )
                )
        lines.append(
            f"(spent: steps={partial.steps}, atoms={partial.atoms_derived}, "
            f"elapsed={partial.elapsed:.3f}s)"
        )
        return "\n".join(lines)

    def _assert(self, text: str) -> str:
        if not text.endswith("."):
            text += "."
        rule = parse_rule(text)
        if self._remote is not None:
            if not (rule.is_fact and rule.head.is_ground):
                return (
                    "error: the connected server's rulebase is read-only; "
                    "only ground facts can be asserted remotely "
                    "(:disconnect for local rules)"
                )
            return self._remote_call("assert", facts=[str(rule.head)])
        if rule.is_fact and rule.head.is_ground:
            self._db = self._db.with_facts(rule.head)
            # Keep the engine session: its per-database caches make
            # the next query after a fact change incremental
            # (docs/INCREMENTAL.md).  Only the recorded provenance
            # goes stale.
            self._prov_session = None
            return self._with_watch_report(f"asserted fact {rule.head}")
        self._rulebase = self._rulebase + [rule]
        self._invalidate()
        return self._with_watch_report(f"added rule {rule}")

    def _retract(self, text: str) -> str:
        """``:retract FACT`` — remove a ground fact (docs/INCREMENTAL.md).

        Locally the engine session survives, so the next query (and
        every watch refresh) is answered by deletion propagation rather
        than a fresh fixpoint; connected, it forwards the server's
        ``retract`` op against the private session view.
        """
        text = text.rstrip(".")
        if self._remote is not None:
            return self._remote_call("retract", facts=[text])
        fact = parse_atom(text)
        if not fact.is_ground:
            return "error: only ground facts can be retracted"
        present = fact in self._db
        self._db = self._db.without_facts(fact)
        self._prov_session = None
        out = (
            f"retracted fact {fact}" if present
            else f"{fact} was not in the database"
        )
        return self._with_watch_report(out)

    # -- standing queries (docs/INCREMENTAL.md) --------------------------

    @staticmethod
    def _format_watch_diff(wid, pattern, added, removed) -> str:
        lines = [f"watch {wid} ({pattern}):"]
        for sign, rows in (("+", added), ("-", removed)):
            for row in sorted(rows, key=str):
                payload = (
                    ", ".join(str(value) for value in row) if row else "true"
                )
                lines.append(f"  {sign} {payload}")
        return "\n".join(lines)

    def _with_watch_report(self, out: str) -> str:
        """Append the +/- diff of every changed local watch to one
        command's output (unchanged watches stay silent)."""
        if not self._watches:
            return out
        # A rule change invalidates the session; rebuilding it here
        # rebinds every watch before the refreshes below.
        self._require_session()
        lines = [out]
        for wid, query in self._watches.items():
            try:
                diff = query.refresh(self._db, budget=self._budget())
            except ResourceExhausted as error:
                lines.append(f"watch {wid} ({query.text}): error: {error}")
                continue
            if diff:
                lines.append(
                    self._format_watch_diff(
                        wid, query.text, diff.added, diff.removed
                    )
                )
        return "\n".join(lines)

    def _watch_command(self, argument: str) -> str:
        if not argument:
            return "error: usage: :watch PATTERN"
        pattern = argument.rstrip(".")
        if self._remote is not None:
            try:
                response = self._remote.call(
                    "subscribe", pattern=pattern, budget=self._budget_spec()
                )
            except (OSError, ValueError) as error:
                address = self._drop_remote()
                return (
                    f"error: lost connection to {address} ({error}); "
                    f"disconnected"
                )
            if not response.get("ok"):
                return self._render_remote_error(response.get("error", {}))
            result = response["result"]
            wid = result.get("watch")
            self._remote_watches.add(wid)
            rows = result.get("rows", [])
            return f"watch {wid} ({pattern}): {len(rows)} answer(s)"
        session = self._require_session()
        query = session.watch(pattern)
        try:
            initial = query.refresh(self._db, budget=self._budget())
        except ResourceExhausted as error:
            return self._render_exhausted(error, [])
        wid = f"w{next(self._watch_names)}"
        self._watches[wid] = query
        return f"watch {wid} ({query.text}): {len(initial.added)} answer(s)"

    def _unwatch_command(self, argument: str) -> str:
        if not argument:
            return "error: usage: :unwatch NAME"
        if self._remote is not None:
            try:
                response = self._remote.call("unsubscribe", watch=argument)
            except (OSError, ValueError) as error:
                address = self._drop_remote()
                return (
                    f"error: lost connection to {address} ({error}); "
                    f"disconnected"
                )
            if not response.get("ok"):
                return self._render_remote_error(response.get("error", {}))
            self._remote_watches.discard(argument)
            return f"unwatched {argument}"
        if self._watches.pop(argument, None) is None:
            return f"error: no watch named {argument!r} (see :help)"
        return f"unwatched {argument}"

    def _pull_remote_events(self) -> list[str]:
        """Render the watch events a remote assert/retract triggered.

        The server pushes event frames right after the mutation's
        response and handles frames in order, so one ``ping`` acts as a
        barrier: by the time its pong arrives, every event is stashed.
        """
        if self._remote is None or not self._remote_watches:
            return []
        try:
            self._remote.call("ping")
        except (OSError, ValueError):
            return []
        lines = []
        for event in self._remote.drain_events():
            if event.get("event") != "watch":
                continue
            lines.append(
                self._format_watch_diff(
                    event.get("watch", "?"),
                    event.get("pattern", "?"),
                    [tuple(row) for row in event.get("added", [])],
                    [tuple(row) for row in event.get("removed", [])],
                )
            )
        return lines

    # -- the :connect link (docs/SERVER.md) ------------------------------

    def _budget_spec(self) -> Optional[dict]:
        """The ``:limits`` template as a wire budget object."""
        limits = self._limits
        if limits is None:
            return None
        spec = {
            "timeout": limits.timeout,
            "max_steps": limits.max_steps,
            "max_atoms": limits.max_atoms,
            "max_depth": limits.max_depth,
        }
        return {key: value for key, value in spec.items() if value is not None}

    def _drop_remote(self) -> str:
        address = self._remote.address if self._remote is not None else ""
        if self._remote is not None:
            self._remote.close()
            self._remote = None
        self._remote_watches.clear()
        return address

    def _remote_call(self, op: str, **params) -> str:
        """One remote round trip rendered as REPL output; transport
        failures drop the link (the local session is untouched)."""
        try:
            response = self._remote.call(op, budget=self._budget_spec(), **params)
        except (OSError, ValueError) as error:
            address = self._drop_remote()
            return f"error: lost connection to {address} ({error}); disconnected"
        if response.get("ok"):
            result = response["result"]
            if op == "assert":
                lines = [f"asserted remotely ({result.get('added', 0)} new)"]
            elif op == "retract":
                lines = [
                    f"retracted remotely ({result.get('removed', 0)} removed)"
                ]
            else:
                return str(result)
            lines.extend(self._pull_remote_events())
            return "\n".join(lines)
        return self._render_remote_error(response.get("error", {}))

    def _remote_query(self, text: str, premise) -> str:
        variables = list(dict.fromkeys(premise.variables()))
        if variables and isinstance(premise, Positive):
            op, params = "answers", {"pattern": text}
        else:
            op, params = "query", {"query": text}
        try:
            response = self._remote.call(
                op, budget=self._budget_spec(), **params
            )
        except (OSError, ValueError) as error:
            address = self._drop_remote()
            return f"error: lost connection to {address} ({error}); disconnected"
        if response.get("ok"):
            result = response["result"]
            if op == "query":
                return "yes" if result.get("answer") else "no"
            rows = result.get("rows", [])
            if not rows:
                return "no"
            names = [var.name for var in variables]
            return "\n".join(
                ", ".join(
                    f"{name} = {value}" for name, value in zip(names, row)
                )
                for row in rows
            )
        return self._render_remote_error(
            response.get("error", {}), variables
        )

    def _render_remote_error(self, error: dict, variables=()) -> str:
        code = error.get("code", "internal")
        if code == "exhausted":
            from .core.errors import ResourceExhausted

            return self._render_exhausted(
                ResourceExhausted.from_dict(error), list(variables)
            )
        return f"error: [{code}] {error.get('message', '')}"

    def _command(self, text: str) -> str:
        name, _, argument = text[1:].partition(" ")
        argument = argument.strip()
        if name in ("quit", "exit", "q"):
            self.done = True
            return "bye"
        if name == "help":
            return _HELP.strip("\n")
        if name == "rules":
            return str(self._rulebase) if len(self._rulebase) else "(no rules)"
        if name == "facts":
            return format_database(self._db) if len(self._db) else "(no facts)"
        if name == "retract":
            if not argument:
                return "error: usage: :retract FACT"
            return self._retract(argument)
        if name == "watch":
            return self._watch_command(argument)
        if name == "unwatch":
            return self._unwatch_command(argument)
        if name == "classify":
            return str(classify(self._rulebase))
        if name == "stratify":
            return format_stratification(linear_stratification(self._rulebase))
        if name == "lint":
            findings = lint(self._rulebase)
            return "\n".join(str(f) for f in findings) if findings else "no findings"
        if name == "check":
            from .analysis.diagnostics import (
                check,
                render_text,
                to_json,
                to_sarif,
            )

            fmt = argument or "text"
            if fmt not in ("text", "json", "sarif"):
                return "error: format must be text, json, or sarif"
            diags = check(self._rulebase)
            if fmt == "json":
                return to_json(diags)
            if fmt == "sarif":
                return to_sarif(diags)
            return render_text(diags, verbose=True)
        if name == "engine":
            if argument not in ("auto", "prove", "topdown", "model"):
                return "error: engine must be auto, prove, topdown, or model"
            self._engine_choice = argument
            self._invalidate()
            session = self._require_session()
            return f"engine: {session.engine_name}"
        if name == "limits":
            return self._limits_command(argument)
        if name == "explain":
            if argument.startswith("demand ") or argument == "demand":
                query = argument[len("demand"):].strip().rstrip(".")
                if not query:
                    return "error: usage: :explain demand QUERY"
                from .analysis.magic import format_rewrite, magic_rewrite

                return format_rewrite(magic_rewrite(self._rulebase, query))
            from .engine.proofs import Explainer, format_proof

            proof = Explainer(self._rulebase).explain(self._db, argument.rstrip("."))
            return format_proof(proof) if proof is not None else "not provable"
        if name in ("why", "whynot", "assumptions"):
            if not argument:
                return f"error: usage: :{name} QUERY"
            return self._provenance_command(name, argument.rstrip("."))
        if name == "profile":
            if not argument:
                return "error: usage: :profile QUERY"
            from .obs.profile import profile_query

            try:
                report = profile_query(
                    self._rulebase,
                    self._db,
                    argument.rstrip("."),
                    engine=self._engine_choice,
                    budget=self._budget(),
                )
            except ResourceExhausted as error:
                return self._render_exhausted(error, [])
            return report.render()
        if name == "plan":
            return self._plan_command(argument)
        if name == "stats":
            if argument == "reset":
                self._metrics.reset()
                return "metrics reset"
            if argument:
                return "error: usage: :stats [reset]"
            table = self._metrics.render_table()
            for session in (self._session, self._prov_session):
                engine = session.engine if session is not None else None
                if engine is not None and getattr(engine, "degraded", False):
                    table += (
                        "\nwarning: engine degraded — running the "
                        "interpreted naive fallback after a failed "
                        "self-check (engine.degraded_queries counts "
                        "affected queries)"
                    )
                    break
            return table
        if name == "load":
            with open(argument, encoding="utf-8") as handle:
                self._rulebase = self._rulebase + parse_program(handle.read()).rules
            self._invalidate()
            return f"loaded {argument} ({len(self._rulebase)} rules total)"
        if name == "db":
            with open(argument, encoding="utf-8") as handle:
                self._db = self._db.union(parse_database(handle.read()))
            self._invalidate()
            return f"loaded {argument} ({len(self._db)} facts total)"
        if name == "connect":
            return self._connect_command(argument)
        if name == "disconnect":
            if self._remote is None:
                return "not connected"
            address = self._drop_remote()
            return f"disconnected from {address}; local session restored"
        if name == "reset":
            self._rulebase = Rulebase()
            self._db = Database()
            self._watches.clear()
            self._invalidate()
            return "cleared"
        return f"error: unknown command :{name} (try :help)"

    def _connect_command(self, argument: str) -> str:
        host, _, port_text = argument.rpartition(":")
        if not host or not port_text.isdigit():
            return "error: usage: :connect HOST:PORT"
        if self._remote is not None:
            self._drop_remote()
        try:
            link = _RemoteLink(host, int(port_text))
            response = link.call("ping")
        except OSError as error:
            return f"error: cannot connect to {argument} ({error})"
        except ValueError as error:
            return f"error: {argument} did not speak the protocol ({error})"
        if not response.get("ok"):
            link.close()
            detail = response.get("error", {})
            return (
                f"error: server refused the handshake "
                f"[{detail.get('code', 'internal')}] {detail.get('message', '')}"
            )
        self._remote = link
        info = response.get("result", {})
        server = info.get("server", {})
        return (
            f"connected to {argument}: {server.get('rules', '?')} rules, "
            f"{server.get('facts', '?')} base facts, "
            f"engine {server.get('engine', '?')} "
            f"(queries and ground asserts now run remotely; :disconnect "
            f"to return)"
        )

    def _plan_command(self, argument: str) -> str:
        """``:plan [PRED]`` — generated kernel source per rule."""
        from .engine.kernels import KernelProgram

        predicate = argument.rstrip(".").strip()
        rules = (
            list(self._rulebase.definition(predicate))
            if predicate
            else list(self._rulebase)
        )
        if not rules:
            return (
                f"no rules define {predicate!r}" if predicate else "(no rules)"
            )
        program = KernelProgram()
        lines = []
        for item in rules:
            lines.append(f"-- {item}")
            source = program.preview(item)
            lines.append(
                source.rstrip("\n")
                if source is not None
                else "   (not compilable: interpreted fallback)"
            )
        return "\n".join(lines)

    def _provenance_session(self) -> Session:
        if self._prov_session is None:
            self._prov_session = Session(
                self._rulebase,
                "model",
                metrics=self._metrics,
                provenance=True,
            )
        return self._prov_session

    def _provenance_command(self, name: str, query: str) -> str:
        """``:why`` / ``:whynot`` / ``:assumptions`` — evaluates on
        demand (recording) when the atom was never queried; an
        exhausted or Ctrl-C-cancelled explanation reports partial
        spend and returns to the prompt."""
        session = self._provenance_session()
        try:
            if name == "why":
                from .engine.proofs import format_proof

                proof = session.why(self._db, query, budget=self._budget())
                return (
                    format_proof(proof) if proof is not None
                    else "not provable"
                )
            if name == "whynot":
                from .obs.provenance import format_why_not

                report = session.why_not(
                    self._db, query, budget=self._budget()
                )
                return format_why_not(report)
            from .obs.provenance import format_assumptions

            assumed = session.assumptions(
                self._db, query, budget=self._budget()
            )
            return format_assumptions(assumed)
        except ResourceExhausted as error:
            return self._render_exhausted(error, [])

    _LIMIT_KEYS = {
        "timeout": ("timeout", float),
        "steps": ("max_steps", int),
        "atoms": ("max_atoms", int),
        "depth": ("max_depth", int),
    }

    def _limits_command(self, argument: str) -> str:
        if not argument:
            current = (
                self._limits.describe() if self._limits is not None
                else "(no limits)"
            )
            return f"limits: {current}"
        if argument == "off":
            self._limits = None
            return "limits: (no limits)"
        settings = {}
        for part in argument.split():
            key, eq, raw = part.partition("=")
            if not eq or key not in self._LIMIT_KEYS:
                return (
                    "error: usage: :limits [timeout=SEC] [steps=N] "
                    "[atoms=N] [depth=N] | off"
                )
            field, convert = self._LIMIT_KEYS[key]
            try:
                settings[field] = convert(raw)
            except ValueError:
                return f"error: {key} needs a number, got {raw!r}"
        try:
            self._limits = Budget(**settings)
        except ValueError as error:
            return f"error: {error}"
        return f"limits: {self._limits.describe()}"


def run(
    rulebase: Optional[Rulebase] = None,
    db: Optional[Database] = None,
    stdin=None,
    stdout=None,
) -> int:
    """Run the interactive loop until EOF or ``:quit``."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    interactive = stdin is sys.stdin and stdin.isatty()
    repl = Repl(rulebase, db)
    print("hypothetical Datalog — :help for commands, :quit to leave", file=stdout)
    while not repl.done:
        if interactive:
            print("?> ", end="", file=stdout, flush=True)
        try:
            line = stdin.readline()
        except (KeyboardInterrupt, EOFError):
            # Ctrl-C at the prompt abandons the line, not the session;
            # Ctrl-D (EOF) leaves cleanly like ``:quit``.
            if interactive:
                print("^C  (:quit to leave)", file=stdout)
                continue
            break
        if not line:
            break
        try:
            output = repl.feed(line)
        except KeyboardInterrupt:
            # A Ctrl-C that raced past the engines' own conversion
            # (e.g. during parsing or printing): the query is lost but
            # the session survives.
            output = "cancelled"
        if output:
            print(output, file=stdout)
    return 0
