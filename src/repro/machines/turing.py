"""Nondeterministic Turing machines (the Section 5.1 substrate).

The paper's lower-bound construction encodes NP oracle machines as
hypothetical rules.  This module provides the machine model itself:
single-tape nondeterministic machines whose transitions optionally
also drive a write-only *oracle head* (the extra head of an oracle
machine, Section 5.1.2(iii)).  Machines at the bottom of a cascade
carry no oracle components.

Conventions (matching the rulebase encoding in
:mod:`repro.machines.encode`):

* A machine runs against a counter ``0 .. T-1``: ``T`` bounds both the
  number of steps and the tape length.  Head moves outside the counter
  kill the branch (there is no ``NEXT`` beyond the ends).
* A transition writes at the *scanned* cell and then moves.  (The
  paper's sample rule writes at the moved-to cell, which under a
  literal reading leaves the scanned cell with no symbol at the next
  instant; we use the standard convention and encode it consistently.
  See DESIGN.md.)
* A machine accepts iff some reachable configuration is in an
  accepting control state — the paper's recursive "accepting id".
* State and symbol names must be identifier-friendly (letters, digits),
  because the encoder splices them into predicate names.  The blank is
  written ``_`` and is encoded as ``blank``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.errors import MachineError

__all__ = ["Step", "Machine", "run_machine", "BLANK"]

BLANK = "_"


def _check_name(kind: str, name: str) -> None:
    if name == BLANK:
        return
    if not name or not name.isalnum():
        raise MachineError(
            f"{kind} name {name!r} must be alphanumeric "
            f"(it becomes part of a predicate name)"
        )


@dataclass(frozen=True, slots=True)
class Step:
    """One element of the transition relation.

    In control state ``state`` scanning work symbol ``read``: write
    ``write`` at the scanned cell, move the work head by ``move``
    (-1/0/+1), enter ``new_state``; if the machine has an oracle head,
    also write ``oracle_write`` at the oracle head and move it by
    ``oracle_move``.
    """

    state: str
    read: str
    new_state: str
    write: str
    move: int
    oracle_write: Optional[str] = None
    oracle_move: int = 0

    def __post_init__(self) -> None:
        if self.move not in (-1, 0, 1):
            raise MachineError(f"work-head move must be -1/0/+1, got {self.move}")
        if self.oracle_move not in (-1, 0, 1):
            raise MachineError(
                f"oracle-head move must be -1/0/+1, got {self.oracle_move}"
            )


@dataclass(frozen=True)
class Machine:
    """A nondeterministic Turing machine, optionally with an oracle head.

    ``query_state`` / ``yes_state`` / ``no_state`` are the oracle
    interface of Section 5.1.2(iii): entering ``query_state`` suspends
    the machine, runs the oracle on the current oracle-tape contents,
    and resumes in ``yes_state`` or ``no_state``.  A machine without an
    oracle leaves them ``None`` and must not set ``oracle_write`` on
    any step.
    """

    name: str
    steps: tuple[Step, ...]
    initial: str
    accepting: frozenset[str]
    query_state: Optional[str] = None
    yes_state: Optional[str] = None
    no_state: Optional[str] = None

    def __post_init__(self) -> None:
        oracle_fields = (self.query_state, self.yes_state, self.no_state)
        if any(oracle_fields) and not all(oracle_fields):
            raise MachineError(
                f"machine {self.name}: query/yes/no states must be set together"
            )
        for step in self.steps:
            if self.uses_oracle and step.oracle_write is None:
                raise MachineError(
                    f"machine {self.name}: oracle machines must set "
                    f"oracle_write on every step ({step})"
                )
            if not self.uses_oracle and step.oracle_write is not None:
                raise MachineError(
                    f"machine {self.name}: non-oracle machine has an "
                    f"oracle write ({step})"
                )
            if self.query_state is not None and step.state == self.query_state:
                raise MachineError(
                    f"machine {self.name}: the query state may not carry "
                    f"ordinary transitions ({step})"
                )
        for state in self.states:
            _check_name("state", state)
        for symbol in self.alphabet:
            _check_name("symbol", symbol)

    @property
    def uses_oracle(self) -> bool:
        return self.query_state is not None

    @property
    def states(self) -> frozenset[str]:
        found = {self.initial, *self.accepting}
        for step in self.steps:
            found.add(step.state)
            found.add(step.new_state)
        for state in (self.query_state, self.yes_state, self.no_state):
            if state is not None:
                found.add(state)
        return frozenset(found)

    @property
    def alphabet(self) -> frozenset[str]:
        """Work-tape symbols (always includes the blank)."""
        found = {BLANK}
        for step in self.steps:
            found.add(step.read)
            found.add(step.write)
        return frozenset(found)

    @property
    def oracle_alphabet(self) -> frozenset[str]:
        """Symbols this machine may write onto its oracle tape."""
        found = {BLANK}
        for step in self.steps:
            if step.oracle_write is not None:
                found.add(step.oracle_write)
        return frozenset(found)

    def transitions(self, state: str, symbol: str) -> tuple[Step, ...]:
        """The applicable steps in ``state`` scanning ``symbol``."""
        return tuple(
            step
            for step in self.steps
            if step.state == state and step.read == symbol
        )


def run_machine(
    machine: Machine, input_symbols: Sequence[str], time_bound: int
) -> bool:
    """Does a *plain* machine accept within the counter ``0 .. T-1``?

    Exhaustive search over the configuration graph; raises
    :class:`MachineError` for oracle machines (use
    :class:`repro.machines.oracle.Cascade` for those).
    """
    if machine.uses_oracle:
        raise MachineError(
            f"machine {machine.name} queries an oracle; simulate it in a Cascade"
        )
    if time_bound < 1:
        raise MachineError("time_bound must be at least 1")
    if len(input_symbols) > time_bound:
        raise MachineError(
            f"input of length {len(input_symbols)} does not fit a "
            f"{time_bound}-cell tape"
        )
    tape = tuple(input_symbols) + (BLANK,) * (time_bound - len(input_symbols))
    start = (machine.initial, 0, 0, tape)
    seen = {start}
    frontier = [start]
    while frontier:
        state, head, time, cells = frontier.pop()
        if state in machine.accepting:
            return True
        if time + 1 >= time_bound:
            continue
        for step in machine.transitions(state, cells[head]):
            new_head = head + step.move
            if not 0 <= new_head < time_bound:
                continue
            new_cells = cells[:head] + (step.write,) + cells[head + 1 :]
            successor = (step.new_state, new_head, time + 1, new_cells)
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return False
