"""Turing machines, oracle cascades, and their rulebase encodings (Section 5.1)."""

from .encode import (
    cascade_database,
    cascade_rulebase,
    cell_predicate,
    control_predicate,
    counter_facts,
    encode_and_ask,
    symbol_name,
)
from .library import (
    contains_one,
    contains_one_cascade,
    copy_and_query,
    even_ones,
    first_or_second_a,
    no_ones_cascade,
    suggested_time_bound,
    three_level_cascade,
)
from .oracle import Cascade
from .turing import BLANK, Machine, Step, run_machine

__all__ = [
    "BLANK",
    "Step",
    "Machine",
    "run_machine",
    "Cascade",
    "counter_facts",
    "cascade_database",
    "cascade_rulebase",
    "encode_and_ask",
    "symbol_name",
    "cell_predicate",
    "control_predicate",
    "contains_one",
    "even_ones",
    "first_or_second_a",
    "copy_and_query",
    "contains_one_cascade",
    "no_ones_cascade",
    "three_level_cascade",
    "suggested_time_bound",
]
