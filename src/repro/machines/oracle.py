"""Oracle-machine cascades ``M_k, ..., M_1`` (Section 5.1).

A cascade is a stack of machines in which ``M_i`` uses ``M_{i-1}`` as
its oracle; ``M_i``'s oracle tape *is* ``M_{i-1}``'s work tape.  The
direct simulator here is the ground truth for the rulebase encoding in
:mod:`repro.machines.encode` — the two are checked against each other
in experiment E8 (formula (3): ``R(L), DB(s) |- ACCEPT iff s in L``).

Simulation semantics, mirroring the encoding exactly:

* All machines share one clock ``0 .. T-1``.  A machine invoked as an
  oracle at time ``t`` starts computing *at* time ``t`` (the encoding
  inserts ``CONTROL^{q0}(0, 0, t)``) and may run until the counter ends.
  The invoker resumes at ``t + 1``.
* The oracle reads the invoker's oracle tape as its own work tape; its
  *writes during the call are discarded* when the call returns (they
  were hypothetical insertions), while the invoker's oracle-tape
  contents persist across calls.
* Each oracle invocation starts with the oracle's *own* oracle tape
  blank — lower machines never retain state between calls (their
  computations were hypothetical too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.errors import MachineError
from .turing import BLANK, Machine

__all__ = ["Cascade"]


@dataclass(frozen=True)
class Cascade:
    """A stack of oracle machines, **top first**: ``machines[0]`` is
    ``M_k`` (reads the input), ``machines[-1]`` is ``M_1`` (no oracle).
    """

    machines: tuple[Machine, ...]

    def __post_init__(self) -> None:
        if not self.machines:
            raise MachineError("a cascade needs at least one machine")
        for machine in self.machines[:-1]:
            if not machine.uses_oracle:
                raise MachineError(
                    f"machine {machine.name} is above the bottom of the "
                    f"cascade but has no oracle interface"
                )
        if self.machines[-1].uses_oracle:
            raise MachineError(
                f"bottom machine {self.machines[-1].name} must not query "
                f"an oracle"
            )

    @property
    def k(self) -> int:
        """Number of strata the encoding of this cascade needs."""
        return len(self.machines)

    def machine_at_level(self, level: int) -> Machine:
        """Level ``k`` is the top (input) machine, level 1 the bottom."""
        if not 1 <= level <= self.k:
            raise MachineError(f"level {level} out of range 1..{self.k}")
        return self.machines[self.k - level]

    def accepts(self, input_symbols: Sequence[str], time_bound: int) -> bool:
        """Does the composite machine accept within the shared counter?"""
        if time_bound < 1:
            raise MachineError("time_bound must be at least 1")
        if len(input_symbols) > time_bound:
            raise MachineError(
                f"input of length {len(input_symbols)} does not fit a "
                f"{time_bound}-cell tape"
            )
        top_tape = tuple(input_symbols) + (BLANK,) * (
            time_bound - len(input_symbols)
        )
        memo: dict[tuple[int, tuple[str, ...], int], bool] = {}
        return self._accepting(self.k, top_tape, 0, time_bound, memo)

    def _accepting(
        self,
        level: int,
        work_tape: tuple[str, ...],
        start_time: int,
        time_bound: int,
        memo: dict,
    ) -> bool:
        """Is the initial id of the level-``level`` machine accepting?"""
        key = (level, work_tape, start_time)
        cached = memo.get(key)
        if cached is not None:
            return cached
        machine = self.machine_at_level(level)
        oracle_tape = (BLANK,) * time_bound
        start = (machine.initial, 0, 0, start_time, work_tape, oracle_tape)
        seen = {start}
        frontier = [start]
        accepted = False
        while frontier and not accepted:
            state, work_head, oracle_head, time, work, oracle = frontier.pop()
            if state in machine.accepting:
                accepted = True
                break
            if time + 1 >= time_bound:
                continue
            if machine.query_state is not None and state == machine.query_state:
                answer = self._accepting(
                    level - 1, oracle, time, time_bound, memo
                )
                next_state = machine.yes_state if answer else machine.no_state
                successor = (
                    next_state,
                    work_head,
                    oracle_head,
                    time + 1,
                    work,
                    oracle,
                )
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
                continue
            for step in machine.transitions(state, work[work_head]):
                new_work_head = work_head + step.move
                if not 0 <= new_work_head < time_bound:
                    continue
                new_oracle_head = oracle_head + step.oracle_move
                if not 0 <= new_oracle_head < time_bound:
                    continue
                new_work = (
                    work[:work_head] + (step.write,) + work[work_head + 1 :]
                )
                if step.oracle_write is not None:
                    new_oracle = (
                        oracle[:oracle_head]
                        + (step.oracle_write,)
                        + oracle[oracle_head + 1 :]
                    )
                else:
                    new_oracle = oracle
                successor = (
                    step.new_state,
                    new_work_head,
                    new_oracle_head,
                    time + 1,
                    new_work,
                    new_oracle,
                )
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        memo[key] = accepted
        return accepted
