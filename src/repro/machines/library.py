"""Small machines and cascades used by tests and the E8 bench.

All machines work over the alphabet ``{0, 1, _}`` (with ``a``/``b`` for
the nondeterminism demo) and are sized so that encodings stay tractable
for the bottom-up and goal-directed engines: the Section 5.1 encoding
is the *hardness* construction, so its instances are intentionally tiny.
"""

from __future__ import annotations

from .oracle import Cascade
from .turing import BLANK, Machine, Step

__all__ = [
    "contains_one",
    "even_ones",
    "first_or_second_a",
    "copy_and_query",
    "contains_one_cascade",
    "no_ones_cascade",
    "three_level_cascade",
    "suggested_time_bound",
]


def contains_one() -> Machine:
    """Accepts iff the input contains the symbol ``1``.

    Deterministic left-to-right scan; runs in ``n + 1`` steps.
    """
    return Machine(
        name="containsone",
        steps=(
            Step("scan", "1", "acc", "1", 0),
            Step("scan", "0", "scan", "0", 1),
        ),
        initial="scan",
        accepting=frozenset({"acc"}),
    )


def even_ones() -> Machine:
    """Accepts iff the input holds an even number of ``1`` symbols.

    A two-state parity scan that accepts at the first blank.
    """
    return Machine(
        name="evenones",
        steps=(
            Step("ev", "0", "ev", "0", 1),
            Step("ev", "1", "od", "1", 1),
            Step("od", "0", "od", "0", 1),
            Step("od", "1", "ev", "1", 1),
            Step("ev", BLANK, "acc", BLANK, 0),
        ),
        initial="ev",
        accepting=frozenset({"acc"}),
    )


def first_or_second_a() -> Machine:
    """Accepts iff the first or the second input symbol is ``a``.

    Genuinely nondeterministic: from the start state scanning ``a`` the
    machine may either accept on the spot or gamble on the next cell.
    """
    return Machine(
        name="guessa",
        steps=(
            Step("s", "a", "acc", "a", 0),
            Step("s", "a", "r", "a", 1),
            Step("s", "b", "r", "b", 1),
            Step("r", "a", "acc", "a", 0),
        ),
        initial="s",
        accepting=frozenset({"acc"}),
    )


def copy_and_query(accept_on_yes: bool, name: str) -> Machine:
    """A level-2 machine: copy the input to the oracle tape, query.

    ``accept_on_yes=True`` accepts exactly when the oracle accepts the
    copied input; ``False`` accepts exactly when the oracle rejects —
    the complementation that only the negated oracle rule (``~ORACLE``)
    can express.
    """
    yes_target = "acc" if accept_on_yes else "rej"
    no_target = "rej" if accept_on_yes else "acc"
    return Machine(
        name=name,
        steps=(
            Step("c", "0", "c", "0", 1, oracle_write="0", oracle_move=1),
            Step("c", "1", "c", "1", 1, oracle_write="1", oracle_move=1),
            Step("c", BLANK, "ask", BLANK, 0, oracle_write=BLANK, oracle_move=0),
        ),
        initial="c",
        accepting=frozenset({"acc"}),
        query_state="ask",
        yes_state=yes_target,
        no_state=no_target,
    )


def contains_one_cascade() -> Cascade:
    """k = 2: top machine copies, bottom decides "contains a 1".

    The composite accepts exactly the inputs containing a ``1`` — the
    same language as :func:`contains_one`, but through an oracle hop,
    which makes it the smallest end-to-end exercise of the oracle
    rules.
    """
    return Cascade((copy_and_query(True, "relayyes"), contains_one()))


def no_ones_cascade() -> Cascade:
    """k = 2: the complement — accepts iff the input has *no* ``1``.

    Forces the ``~ORACLE`` rule to fire, i.e. a stratum boundary is
    genuinely crossed.
    """
    return Cascade((copy_and_query(False, "relayno"), contains_one()))


def three_level_cascade(accept_on_yes: bool = False) -> Cascade:
    """k = 3: input -> relay -> relay -> contains-a-1.

    ``M_3`` copies the input to ``M_2``; ``M_2`` relays it to ``M_1``
    (contains-a-1) and reports the answer upward; ``M_3`` accepts on
    "yes" or "no" per ``accept_on_yes``.  With the default complement
    at the top, both oracle boundaries are exercised and the encoding
    is a Sigma_3^P instance — three strata, per Theorem 1.
    """
    top = copy_and_query(accept_on_yes, "top3")
    middle = copy_and_query(True, "mid2")
    return Cascade((top, middle, contains_one()))


def suggested_time_bound(cascade_depth: int, input_length: int) -> int:
    """A counter length that comfortably fits the library machines.

    The copying machines take ``n + 2`` steps before querying and the
    oracle then runs for up to ``n + 2`` more; one extra slot per level
    covers the resume steps.
    """
    return (cascade_depth + 1) * (input_length + 2)
