"""Encoding oracle-machine cascades as hypothetical rulebases (Section 5.1).

Given a cascade ``M_k, ..., M_1`` this module builds

* ``cascade_database(cascade, s, T)`` — the database ``DB(s)``: a
  counter ``FIRST(0), NEXT(0,1), ..., LAST(T-1)`` plus the initial tape
  contents (the input on ``M_k``'s work tape, blanks on the lower
  tapes), Section 5.1.1;
* ``cascade_rulebase(cascade)`` — the rulebase ``R(L)``: per level the
  accept-state rules, one hypothetical rule per transition, the oracle
  invocation rules (where negation-by-failure encodes a "no" answer),
  and the frame axioms, Sections 5.1.2-5.1.4.

Formula (3) of the paper then holds computably::

    R(L), DB(s) |- ACCEPT        iff   the cascade accepts s

which experiment E8 checks against the direct simulator in
:mod:`repro.machines.oracle`.

Counters are abstracted by :class:`CounterScheme` so the same rule
generators serve two constructions:

* Section 5.1 stores an integer counter in the database
  (:func:`counter_facts`) — the default scheme of arity 1;
* Section 6.2.2 *derives* the counter from a hypothetically asserted
  linear order, indexing time and tape by ``l``-tuples — the
  expressibility compiler in :mod:`repro.queries.compile` passes a
  scheme of higher arity with derived FIRST/NEXT/LAST predicates.

Naming scheme (levels count from the bottom, ``M_1`` = level 1):

====================  ============================================
paper                 predicate
====================  ============================================
``CELL_i^c(j, t)``    ``cell{i}_{c}(J.., T..)`` (blank -> ``blank``)
``CONTROL_i^q``       ``control{i}_{q}(J1.., J2.., T..)``; level 1
                      has no oracle head: ``control1_{q}(J1.., T..)``
``ACTIVE_i(j, t)``    ``active{i}(J.., T..)``
``ACCEPT_i(t)``       ``accept{i}(T..)``
``ORACLE_i(t)``       ``oracle{i}(T..)``
``ACCEPT``            ``accept``
====================  ============================================

One documented deviation: the paper's sample transition rule inserts
the written symbol at the *moved-to* cell, which leaves the scanned
cell with no symbol at the next instant (the frame axiom deliberately
does not propagate it).  We write at the scanned cell — the standard
machine convention — and the simulator does the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.ast import Hypothetical, Negated, Positive, Premise, Rule, Rulebase
from ..core.database import Database
from ..core.errors import MachineError
from ..core.terms import Atom, Constant, Variable
from .oracle import Cascade
from .turing import BLANK, Machine

__all__ = [
    "CounterScheme",
    "symbol_name",
    "cell_predicate",
    "control_predicate",
    "counter_facts",
    "cascade_database",
    "cascade_rulebase",
    "encode_and_ask",
]


@dataclass(frozen=True)
class CounterScheme:
    """How time and tape positions are counted.

    ``arity`` is the tuple width of one counter value; ``first`` /
    ``next`` / ``last`` name the predicates providing the counter
    (``next`` relates two values, so its predicate has ``2 * arity``
    arguments).  Section 5.1 uses the default: arity 1 with the counter
    stored as database facts.
    """

    arity: int = 1
    first: str = "first"
    next: str = "next"
    last: str = "last"

    def variables(self, stem: str) -> tuple[Variable, ...]:
        """A tuple of distinct variables representing one counter value."""
        if self.arity == 1:
            return (Variable(stem),)
        return tuple(Variable(f"{stem}x{i}") for i in range(1, self.arity + 1))

    def first_premise(self, value: tuple[Variable, ...]) -> Premise:
        return Positive(Atom(self.first, value))

    def next_premise(
        self, old: tuple[Variable, ...], new: tuple[Variable, ...]
    ) -> Premise:
        return Positive(Atom(self.next, old + new))


def symbol_name(symbol: str) -> str:
    """Predicate-friendly name of a tape symbol (blank -> ``blank``)."""
    return "blank" if symbol == BLANK else symbol


def cell_predicate(level: int, symbol: str) -> str:
    """``CELL_i^c`` as a predicate name."""
    return f"cell{level}_{symbol_name(symbol)}"


def control_predicate(level: int, state: str) -> str:
    """``CONTROL_i^q`` as a predicate name."""
    return f"control{level}_{state}"


def _control_atom(level, state, work, oracle, time) -> Atom:
    """Control atom with the level-appropriate shape (no oracle head at
    level 1).  ``work``/``oracle``/``time`` are term tuples."""
    if level == 1:
        return Atom(control_predicate(level, state), tuple(work) + tuple(time))
    return Atom(
        control_predicate(level, state),
        tuple(work) + tuple(oracle) + tuple(time),
    )


def counter_facts(time_bound: int, scheme: CounterScheme = CounterScheme()) -> list[Atom]:
    """``FIRST(0), NEXT(0, 1), ..., LAST(T-1)`` with integer constants.

    Only meaningful for arity-1 schemes; higher-arity counters are
    derived by rules (:func:`repro.queries.order.counter_rules`).
    """
    if scheme.arity != 1:
        raise MachineError("stored counters require an arity-1 scheme")
    if time_bound < 1:
        raise MachineError("time_bound must be at least 1")
    facts = [
        Atom(scheme.first, (Constant(0),)),
        Atom(scheme.last, (Constant(time_bound - 1),)),
    ]
    for value in range(time_bound - 1):
        facts.append(Atom(scheme.next, (Constant(value), Constant(value + 1))))
    return facts


def tape_alphabet(cascade: Cascade, level: int) -> frozenset[str]:
    """Symbols that can ever appear on the level-``level`` tape.

    The tape belongs to machine ``level``; the machine above writes to
    it with its oracle head; blanks and (for the top tape) the input
    are the initial contents.
    """
    symbols = set(cascade.machine_at_level(level).alphabet)
    if level < cascade.k:
        symbols.update(cascade.machine_at_level(level + 1).oracle_alphabet)
    symbols.add(BLANK)
    return frozenset(symbols)


def cascade_database(
    cascade: Cascade, input_symbols: Sequence[str], time_bound: int
) -> Database:
    """Build ``DB(s)``: counter plus initial tape contents (5.1.1)."""
    top = cascade.machine_at_level(cascade.k)
    for symbol in input_symbols:
        if symbol not in top.alphabet:
            raise MachineError(
                f"input symbol {symbol!r} is not in machine "
                f"{top.name}'s alphabet"
            )
    if len(input_symbols) > time_bound:
        raise MachineError(
            f"input of length {len(input_symbols)} does not fit a "
            f"{time_bound}-cell tape"
        )
    facts = counter_facts(time_bound)
    zero = Constant(0)
    # Top machine: the input, then blanks.
    for position in range(time_bound):
        symbol = (
            input_symbols[position] if position < len(input_symbols) else BLANK
        )
        facts.append(
            Atom(cell_predicate(cascade.k, symbol), (Constant(position), zero))
        )
    # Lower machines: all blank.
    for level in range(1, cascade.k):
        for position in range(time_bound):
            facts.append(
                Atom(cell_predicate(level, BLANK), (Constant(position), zero))
            )
    return Database(facts)


def cascade_rulebase(
    cascade: Cascade,
    accept_predicate: str = "accept",
    scheme: CounterScheme = CounterScheme(),
    include_top_rule: bool = True,
) -> Rulebase:
    """Build ``R(L)`` (5.1.2-5.1.4): one stratum per machine.

    ``include_top_rule=False`` omits the 0-ary ``ACCEPT`` entry rule —
    the Section 6 compiler supplies its own entry point after asserting
    a linear order.
    """
    rules: list[Rule] = []
    for level in range(1, cascade.k + 1):
        machine = cascade.machine_at_level(level)
        rules.extend(_accept_state_rules(level, machine, scheme))
        rules.extend(_transition_rules(level, machine, scheme))
        if machine.uses_oracle:
            rules.extend(_oracle_rules(level, machine, cascade, scheme))
        rules.extend(_frame_rules(cascade, level, scheme))
    if include_top_rule:
        rules.append(top_entry_rule(cascade, accept_predicate, scheme))
    return Rulebase(rules)


def _accept_state_rules(
    level: int, machine: Machine, scheme: CounterScheme
) -> list[Rule]:
    """``ACCEPT_i(t) <- CONTROL_i^{qa}(j1, j2, t)`` per accepting state."""
    time = scheme.variables("T")
    work = scheme.variables("J1")
    oracle = scheme.variables("J2")
    head = Atom(f"accept{level}", time)
    return [
        Rule(head, (Positive(_control_atom(level, state, work, oracle, time)),))
        for state in sorted(machine.accepting)
    ]


def _moved(
    position: tuple[Variable, ...],
    moved: tuple[Variable, ...],
    move: int,
    scheme: CounterScheme,
) -> tuple[list[Premise], tuple[Variable, ...]]:
    """Premises binding the post-move head variables.

    A stay-put move reuses the original variables; otherwise a ``next``
    premise relates old and new positions (and fails at the counter
    ends, killing the branch, just as the simulator does).
    """
    if move == 0:
        return [], position
    if move == 1:
        return [scheme.next_premise(position, moved)], moved
    return [scheme.next_premise(moved, position)], moved


def _transition_rules(
    level: int, machine: Machine, scheme: CounterScheme
) -> list[Rule]:
    """One hypothetical rule per element of the transition relation."""
    rules: list[Rule] = []
    time = scheme.variables("T")
    time_next = scheme.variables("Tp")
    work = scheme.variables("J1")
    work_moved = scheme.variables("J1p")
    oracle = scheme.variables("J2")
    oracle_moved = scheme.variables("J2p")
    head = Atom(f"accept{level}", time)
    for step in machine.steps:
        premises: list[Premise] = [
            scheme.next_premise(time, time_next),
            Positive(_control_atom(level, step.state, work, oracle, time)),
            Positive(Atom(cell_predicate(level, step.read), work + time)),
        ]
        work_premises, work_new = _moved(work, work_moved, step.move, scheme)
        premises.extend(work_premises)
        additions: list[Atom] = []
        if machine.uses_oracle:
            oracle_premises, oracle_new = _moved(
                oracle, oracle_moved, step.oracle_move, scheme
            )
            premises.extend(oracle_premises)
            additions.append(
                _control_atom(level, step.new_state, work_new, oracle_new, time_next)
            )
            additions.append(
                Atom(cell_predicate(level, step.write), work + time_next)
            )
            additions.append(
                Atom(cell_predicate(level - 1, step.oracle_write), oracle + time_next)
            )
        else:
            additions.append(
                _control_atom(level, step.new_state, work_new, None, time_next)
            )
            additions.append(
                Atom(cell_predicate(level, step.write), work + time_next)
            )
        premises.append(
            Hypothetical(Atom(f"accept{level}", time_next), tuple(additions))
        )
        rules.append(Rule(head, tuple(premises)))
    return rules


def _oracle_rules(
    level: int, machine: Machine, cascade: Cascade, scheme: CounterScheme
) -> list[Rule]:
    """The oracle-invocation mechanism (5.1.2(iii)).

    The negative rule is the stratum boundary: it is the only place
    negation-by-failure appears above the frame axioms, and it is what
    lets a stratum observe its oracle answering "no".
    """
    time = scheme.variables("T")
    time_next = scheme.variables("Tp")
    work = scheme.variables("J1")
    oracle = scheme.variables("J2")
    start = scheme.variables("J")
    head = Atom(f"accept{level}", time)
    below = level - 1
    query = Positive(_control_atom(level, machine.query_state, work, oracle, time))
    step_next = scheme.next_premise(time, time_next)
    oracle_atom = Atom(f"oracle{below}", time)
    yes_rule = Rule(
        head,
        (
            step_next,
            query,
            Positive(oracle_atom),
            Hypothetical(
                Atom(f"accept{level}", time_next),
                (_control_atom(level, machine.yes_state, work, oracle, time_next),),
            ),
        ),
    )
    no_rule = Rule(
        head,
        (
            step_next,
            query,
            Negated(oracle_atom),
            Hypothetical(
                Atom(f"accept{level}", time_next),
                (_control_atom(level, machine.no_state, work, oracle, time_next),),
            ),
        ),
    )
    below_machine = cascade.machine_at_level(below)
    start_rule = Rule(
        Atom(f"oracle{below}", time),
        (
            scheme.first_premise(start),
            Hypothetical(
                Atom(f"accept{below}", time),
                (_control_atom(below, below_machine.initial, start, start, time),),
            ),
        ),
    )
    return [yes_rule, no_rule, start_rule]


def _frame_rules(
    cascade: Cascade, level: int, scheme: CounterScheme
) -> list[Rule]:
    """The frame axiom for the level-``level`` tape (5.1.4)."""
    rules: list[Rule] = []
    time = scheme.variables("T")
    time_next = scheme.variables("Tp")
    position = scheme.variables("J")
    other = scheme.variables("J2")
    active = Atom(f"active{level}", position + time)
    for symbol in sorted(tape_alphabet(cascade, level)):
        cell = cell_predicate(level, symbol)
        rules.append(
            Rule(
                Atom(cell, position + time_next),
                (
                    scheme.next_premise(time, time_next),
                    Positive(Atom(cell, position + time)),
                    Negated(active),
                ),
            )
        )
    machine = cascade.machine_at_level(level)
    for state in sorted(machine.states):
        if state == machine.query_state:
            continue  # a suspended machine's heads are inactive
        rules.append(
            Rule(
                active,
                (Positive(_control_atom(level, state, position, other, time)),),
            )
        )
    if level < cascade.k:
        above = cascade.machine_at_level(level + 1)
        for state in sorted(above.states):
            if state == above.query_state:
                continue
            rules.append(
                Rule(
                    active,
                    (
                        Positive(
                            _control_atom(level + 1, state, other, position, time)
                        ),
                    ),
                )
            )
    return rules


def top_entry_rule(
    cascade: Cascade,
    accept_predicate: str = "accept",
    scheme: CounterScheme = CounterScheme(),
) -> Rule:
    """``ACCEPT <- FIRST(x), ACCEPT_k(x)[add: CONTROL_k^{q0}(x, x, x)]``."""
    top = cascade.machine_at_level(cascade.k)
    start = scheme.variables("J")
    return Rule(
        Atom(accept_predicate, ()),
        (
            scheme.first_premise(start),
            Hypothetical(
                Atom(f"accept{cascade.k}", start),
                (_control_atom(cascade.k, top.initial, start, start, start),),
            ),
        ),
    )


def encode_and_ask(
    cascade: Cascade,
    input_symbols: Sequence[str],
    time_bound: int,
    engine: str = "prove",
) -> bool:
    """Build ``R(L)`` and ``DB(s)`` and decide ``ACCEPT`` — formula (3)."""
    from ..engine.query import Session

    rulebase = cascade_rulebase(cascade)
    db = cascade_database(cascade, input_symbols, time_bound)
    return Session(rulebase, engine).ask(db, "accept")
