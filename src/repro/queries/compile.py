"""The expressibility compiler (Section 6.2, Lemma 2 and Corollary 2).

Given a generic yes/no query decided by an oracle-machine cascade, this
module builds the **constant-free** rulebase ``R(psi)`` of Lemma 2:

1. the Section 6.2.1 rules hypothetically assert a linear order
   (``FIRST1``/``NEXT1``/``LAST1``) over the ``dom`` relation;
2. the Section 6.2.2 counter rules lift the order to ``L``-tuples,
   giving derived ``FIRST``/``NEXT``/``LAST`` predicates that index
   ``n^L`` time steps and tape cells;
3. bitmap ``INITIAL`` rules encode the database onto the top machine's
   tape — this is where negation-by-failure writes the ``0`` bits;
4. the Section 5.1 machine rules (shared with
   :mod:`repro.machines.encode`) simulate the cascade against the
   derived counter.

Tape convention
---------------
Let ``l`` be the largest relation arity and ``L = l + 1``.  Tape cells
are indexed by ``L``-tuples ``(x0, x1, ..., xl)`` in lexicographic
order.  Cells whose *page* component ``x0`` is the first domain element
form a contiguous prefix of ``n^l`` data cells; all other cells are
blank.  The data cell ``(first, x1, ..., xl)`` holds a composite symbol
``s<b1...bm>`` whose ``i``-th bit records whether relation ``i``
contains the (arity-``a_i``) prefix of ``(x1, ..., xl)``.  Machines are
written over these composite symbols; :func:`relation_nonempty_machine`
and :func:`relation_empty_machine` are ready-made scanners.

Because a bit can repeat across cells (a low-arity tuple appears in
every cell sharing its prefix), machines must treat "some cell with the
bit set" as membership — which the scanners do.

Limits: the construction needs a domain of size at least 2.  With
``n = 1`` the derived counter has a single value (``n^L = 1``), so the
machine cannot take even one step — the paper's ``n^l`` time bound
degenerates the same way.  End-of-data detection additionally needs a
blank cell after the data page, which ``n >= 2`` provides.  Documented
in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence, Union

from ..core.ast import Negated, Positive, Premise, Rule, Rulebase, Hypothetical
from ..core.database import Database
from ..core.errors import CompilationError
from ..core.terms import Atom, Variable
from ..machines.encode import (
    CounterScheme,
    cascade_rulebase,
    cell_predicate,
    top_entry_rule,
)
from ..machines.oracle import Cascade
from ..machines.turing import BLANK, Machine, Step
from .order import counter_rules, order_assertion_rules

__all__ = [
    "Signature",
    "bitvector_symbol",
    "initial_rules",
    "compile_yes_no_query",
    "compile_typed_query",
    "query_database",
    "relation_nonempty_machine",
    "relation_empty_machine",
    "translating_relay_machine",
    "time_bound_for",
]


@dataclass(frozen=True)
class Signature:
    """The database type ``(alpha_1, ..., alpha_m)`` of Definition 12.

    ``relations`` lists ``(name, arity)`` pairs; ``domain_predicate``
    names the unary relation holding the domain ``D``.
    """

    relations: tuple[tuple[str, int], ...]
    domain_predicate: str = "dom"

    def __post_init__(self) -> None:
        if not self.relations:
            raise CompilationError("a signature needs at least one relation")
        for name, arity in self.relations:
            if arity < 1:
                raise CompilationError(
                    f"relation {name!r} must have arity >= 1"
                )

    @property
    def data_arity(self) -> int:
        """``l``: the widest relation."""
        return max(arity for _, arity in self.relations)

    @property
    def tape_arity(self) -> int:
        """``L = l + 1``: one page component plus the data coordinates."""
        return self.data_arity + 1

    @property
    def bit_count(self) -> int:
        return len(self.relations)

    def symbols(self) -> list[str]:
        """All composite data symbols, most-significant relation first."""
        return [
            bitvector_symbol(bits)
            for bits in product((False, True), repeat=self.bit_count)
        ]


def bitvector_symbol(bits: Sequence[bool]) -> str:
    """``s101``-style composite symbol for a membership bit vector."""
    return "s" + "".join("1" if bit else "0" for bit in bits)


def time_bound_for(signature: Signature, domain_size: int) -> int:
    """``n^L``: the counter length the compiled rulebase derives."""
    return domain_size ** signature.tape_arity


def initial_rules(signature: Signature, pages: int = 1) -> list[Rule]:
    """The bitmap ``INITIAL^c(j)`` rules (Section 6.2.2).

    For every bit vector, one rule whose body tests each relation
    positively or negatively; plus the blank rules for cells off the
    data page.  Negation-by-failure writing the zero bits is, as the
    paper notes, "crucial".

    ``pages`` is the number of leading page components in a cell index
    (more than one when the counter was widened for deeper cascades —
    see :func:`compile_yes_no_query`'s ``extra_time_arity``).  Data
    cells have every page component at the order's first element; a
    cell is blank iff some page component has a predecessor.
    """
    if pages < 1:
        raise CompilationError("cell indices need at least one page component")
    l = signature.data_arity
    page_vars = [Variable(f"P{i}") for i in range(pages)]
    coords = [Variable(f"X{i}") for i in range(1, l + 1)]
    head_args = (*page_vars, *coords)
    rules: list[Rule] = []
    for bits in product((False, True), repeat=signature.bit_count):
        symbol = bitvector_symbol(bits)
        body: list[Premise] = [
            Positive(Atom("first1", (page,))) for page in page_vars
        ]
        body.extend(
            Positive(Atom(signature.domain_predicate, (coord,)))
            for coord in coords
        )
        for (name, arity), bit in zip(signature.relations, bits):
            member = Atom(name, tuple(coords[:arity]))
            body.append(Positive(member) if bit else Negated(member))
        rules.append(Rule(Atom(f"initial_{symbol}", head_args), tuple(body)))
    predecessor = Variable("W")
    for position in range(pages):
        blank_body: list[Premise] = [
            Positive(Atom("next1", (predecessor, page_vars[position])))
        ]
        blank_body.extend(
            Positive(Atom(signature.domain_predicate, (page,)))
            for index, page in enumerate(page_vars)
            if index != position
        )
        blank_body.extend(
            Positive(Atom(signature.domain_predicate, (coord,)))
            for coord in coords
        )
        rules.append(Rule(Atom("initial_blank", head_args), tuple(blank_body)))
    return rules


def _cell_initialization_rules(
    cascade: Cascade, signature: Signature, scheme: CounterScheme
) -> list[Rule]:
    """Load ``INITIAL`` onto the top tape; blanks on the lower tapes."""
    position = scheme.variables("J")
    time = scheme.variables("T")
    first_time = Positive(Atom(scheme.first, time))
    rules: list[Rule] = []
    for symbol in signature.symbols() + [BLANK]:
        rules.append(
            Rule(
                Atom(cell_predicate(cascade.k, symbol), position + time),
                (
                    Positive(Atom(f"initial_{_initial_name(symbol)}", position)),
                    first_time,
                ),
            )
        )
    for level in range(1, cascade.k):
        body: list[Premise] = [
            Positive(Atom(signature.domain_predicate, (coordinate,)))
            for coordinate in position
        ]
        body.append(first_time)
        rules.append(
            Rule(
                Atom(cell_predicate(level, BLANK), position + time),
                tuple(body),
            )
        )
    return rules


def _initial_name(symbol: str) -> str:
    return "blank" if symbol == BLANK else symbol


def compile_yes_no_query(
    cascade: Cascade,
    signature: Signature,
    *,
    yes_predicate: str = "yes",
    extra_time_arity: int = 0,
) -> Rulebase:
    """Lemma 2: the constant-free rulebase ``R(psi)``.

    ``R(psi), DB |- yes`` iff the cascade accepts the bitmap encoding
    of ``DB`` (under any — equivalently every — linear order of the
    domain).  The cascade must be written over the signature's
    composite symbols and must be insensitive to the order (i.e. decide
    a generic query); both scanner builders in this module qualify.

    ``extra_time_arity`` widens the counter by that many tuple
    positions (the paper's free choice of ``l``): a depth-k cascade
    needs roughly k scans' worth of time, which ``n^(l+1)`` may not
    provide for small ``n``.  Each extra position multiplies the
    counter length by ``n``.
    """
    scheme = CounterScheme(arity=signature.tape_arity + extra_time_arity)
    rules: list[Rule] = []
    rules.extend(
        order_assertion_rules(
            Atom("accept", ()),
            yes_predicate=yes_predicate,
            domain_predicate=signature.domain_predicate,
        )
    )
    rules.extend(counter_rules(scheme.arity))
    rules.extend(initial_rules(signature, pages=1 + extra_time_arity))
    rules.extend(_cell_initialization_rules(cascade, signature, scheme))
    machine_rules = cascade_rulebase(cascade, scheme=scheme, include_top_rule=False)
    rules.extend(machine_rules.rules)
    rules.append(top_entry_rule(cascade, "accept", scheme))
    rulebase = Rulebase(rules)
    if not rulebase.is_constant_free:
        raise CompilationError(
            "internal error: compiled rulebase mentions constants"
        )
    return rulebase


def compile_typed_query(
    cascade: Cascade,
    signature: Signature,
    output_arity: int,
    *,
    output_predicate: str = "out",
    marker_predicate: str = "p0",
    yes_predicate: str = "yes",
) -> Rulebase:
    """Corollary 2: lift a yes/no rulebase to a typed query.

    The signature must already include ``(marker_predicate,
    output_arity)`` — the fresh relation ``P_0`` that carries a
    candidate output tuple to the machine.  The added rule generates
    every candidate over the domain and asks the yes/no query with the
    candidate hypothetically inserted::

        OUT(x) <- D(x1), ..., D(xa), YES[add: P0(x)].
    """
    if (marker_predicate, output_arity) not in signature.relations:
        raise CompilationError(
            f"signature must include ({marker_predicate!r}, {output_arity}) "
            f"for the Corollary 2 construction"
        )
    base = compile_yes_no_query(
        cascade, signature, yes_predicate=yes_predicate
    )
    coords = tuple(Variable(f"O{i}") for i in range(1, output_arity + 1))
    body: list[Premise] = [
        Positive(Atom(signature.domain_predicate, (coord,))) for coord in coords
    ]
    body.append(
        Hypothetical(Atom(yes_predicate, ()), (Atom(marker_predicate, coords),))
    )
    out_rule = Rule(Atom(output_predicate, coords), tuple(body))
    return base + [out_rule]


def query_database(
    signature: Signature,
    domain: Sequence[Union[str, int]],
    relations: dict,
) -> Database:
    """A database of the signature's type: the domain plus relations.

    ``relations`` maps relation names to row collections (rows as
    payload tuples, bare payloads for unary relations); missing
    relations are empty.  All relation entries must stay within the
    domain — the compiled machinery indexes tape cells by domain
    elements.
    """
    contents = {signature.domain_predicate: list(domain)}
    known = {name for name, _ in signature.relations}
    domain_set = set(domain)
    for name, rows in relations.items():
        if name not in known:
            raise CompilationError(
                f"relation {name!r} is not in the signature"
            )
        normalized = []
        for row in rows:
            if isinstance(row, (str, int)):
                row = (row,)
            for value in row:
                if value not in domain_set:
                    raise CompilationError(
                        f"value {value!r} in {name!r} is outside the domain"
                    )
            normalized.append(tuple(row))
        contents[name] = normalized
    return Database.from_relations(contents)


def relation_nonempty_machine(
    signature: Signature, relation: str, name: str = "nonempty"
) -> Machine:
    """Accepts iff ``relation`` is nonempty.

    Scans the data page left to right and accepts at the first symbol
    whose bit for ``relation`` is set; rejects by running out of
    applicable transitions (blank or end of tape).  Works for any
    domain size >= 1.
    """
    bit = _relation_index(signature, relation)
    steps = []
    for position, symbol in enumerate(signature.symbols()):
        if symbol[1 + bit] == "1":
            steps.append(Step("scan", symbol, "acc", symbol, 0))
        else:
            steps.append(Step("scan", symbol, "scan", symbol, 1))
    return Machine(
        name=name,
        steps=tuple(steps),
        initial="scan",
        accepting=frozenset({"acc"}),
    )


def relation_empty_machine(
    signature: Signature, relation: str, name: str = "isempty"
) -> Machine:
    """Accepts iff ``relation`` is empty.

    Scans the data page; a set bit kills the run, the first blank
    (i.e. the end of the data page) accepts.  Needs a domain of size
    >= 2 so that a blank cell exists after the data page.
    """
    bit = _relation_index(signature, relation)
    steps = [Step("scan", BLANK, "acc", BLANK, 0)]
    for symbol in signature.symbols():
        if symbol[1 + bit] == "0":
            steps.append(Step("scan", symbol, "scan", symbol, 1))
    return Machine(
        name=name,
        steps=tuple(steps),
        initial="scan",
        accepting=frozenset({"acc"}),
    )


def translating_relay_machine(
    signature: Signature,
    relation: str,
    accept_on_yes: bool,
    name: str = "translate",
) -> Machine:
    """A level-2 machine for compiled cascades: translate and ask.

    Scans the data page, writing ``1`` to the oracle tape where the
    ``relation`` bit is set and ``0`` where it is not; at the first
    blank it queries the oracle and accepts per ``accept_on_yes``.
    Stacked above :func:`repro.machines.library.contains_one` (and
    compiled with ``extra_time_arity=1``) this expresses
    "``relation`` nonempty" or its complement through a genuine oracle
    boundary — Lemma 2 one level up the hierarchy.
    """
    bit = _relation_index(signature, relation)
    steps = [
        Step(
            "scan",
            symbol,
            "scan",
            symbol,
            1,
            oracle_write="1" if symbol[1 + bit] == "1" else "0",
            oracle_move=1,
        )
        for symbol in signature.symbols()
    ]
    steps.append(
        Step("scan", BLANK, "ask", BLANK, 0, oracle_write=BLANK, oracle_move=0)
    )
    return Machine(
        name=name,
        steps=tuple(steps),
        initial="scan",
        accepting=frozenset({"acc"}),
        query_state="ask",
        yes_state="acc" if accept_on_yes else "rej",
        no_state="rej" if accept_on_yes else "acc",
    )


def _relation_index(signature: Signature, relation: str) -> int:
    for index, (name, _) in enumerate(signature.relations):
        if name == relation:
            return index
    raise CompilationError(f"relation {relation!r} is not in the signature")
