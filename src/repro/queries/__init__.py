"""Generic queries, hypothetical orders, and the expressibility compiler (Section 6)."""

from .compile import (
    Signature,
    bitvector_symbol,
    compile_typed_query,
    compile_yes_no_query,
    initial_rules,
    query_database,
    relation_empty_machine,
    relation_nonempty_machine,
    time_bound_for,
    translating_relay_machine,
)
from .generic import (
    RulebaseQuery,
    check_genericity,
    domain_permutations,
    rename_answer,
)
from .order import counter_rules, domain_parity_rulebase, order_assertion_rules

__all__ = [
    "RulebaseQuery",
    "check_genericity",
    "domain_permutations",
    "rename_answer",
    "order_assertion_rules",
    "counter_rules",
    "domain_parity_rulebase",
    "Signature",
    "bitvector_symbol",
    "initial_rules",
    "compile_yes_no_query",
    "compile_typed_query",
    "query_database",
    "relation_nonempty_machine",
    "relation_empty_machine",
    "translating_relay_machine",
    "time_bound_for",
]
