"""Generic database queries (Section 6.1, after Chandra-Harel).

A query is *generic* iff renaming the database constants renames the
answer the same way (Definition 13's consistency criterion).  The
paper's expressibility result targets exactly the typed generic
queries, and genericity is what makes the hypothetical order-assertion
trick sound: re-ordering the domain is a renaming, so a generic query
answers the same under every asserted order (Section 6.2.3).

:class:`RulebaseQuery` packages a rulebase with an output predicate as
a typed query; :func:`check_genericity` empirically tests the
consistency criterion under sampled domain permutations (constant-free
rulebases are generic by construction — the check is for validating
that fact and for testing arbitrary query callables).
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Union

from ..core.ast import Rulebase
from ..core.database import Database
from ..core.errors import EvaluationError
from ..core.terms import Atom

__all__ = ["RulebaseQuery", "rename_answer", "check_genericity", "domain_permutations"]

Payload = Union[str, int]
QueryFunction = Callable[[Database], set[tuple]]


class RulebaseQuery:
    """A typed database query defined by a rulebase + output predicate.

    Calling the query evaluates the rulebase on a database and returns
    the set of payload tuples derived for the output predicate.  A
    0-ary output predicate makes it a yes/no query returning ``set()``
    or ``{()}``.
    """

    def __init__(
        self, rulebase: Rulebase, output: str, engine: str = "auto"
    ) -> None:
        from ..engine.query import Session

        self._rulebase = rulebase
        self._output = output
        self._session = Session(rulebase, engine)
        arity = rulebase.arity(output)
        if arity is None:
            raise EvaluationError(
                f"output predicate {output!r} does not occur in the rulebase"
            )
        self._arity = arity

    @property
    def rulebase(self) -> Rulebase:
        return self._rulebase

    @property
    def output(self) -> str:
        return self._output

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def is_constant_free(self) -> bool:
        """Constant-free rulebases define generic queries (Section 6.1)."""
        return self._rulebase.is_constant_free

    def __call__(self, db: Database) -> set[tuple]:
        if self._arity == 0:
            return {()} if self._session.ask(db, Atom(self._output, ())) else set()
        variables = ", ".join(f"X{i}" for i in range(1, self._arity + 1))
        return self._session.answers(db, f"{self._output}({variables})")

    def boolean(self, db: Database) -> bool:
        """Yes/no reading: is the output nonempty?"""
        return bool(self(db))


def rename_answer(
    answer: Iterable[tuple], mapping: dict[Payload, Payload]
) -> set[tuple]:
    """Apply a constant renaming to a set of answer tuples."""
    return {
        tuple(mapping.get(value, value) for value in row) for row in answer
    }


def domain_permutations(
    db: Database, trials: int, seed: int = 0
) -> list[dict[Payload, Payload]]:
    """Sample ``trials`` permutations of the database's constants.

    Permutations map payloads to payloads of the same domain (the
    identity is never included unless the domain has one element).
    """
    payloads = sorted(
        (constant.value for constant in db.constants()), key=lambda v: (str(type(v)), str(v))
    )
    rng = random.Random(seed)
    permutations = []
    for _ in range(trials):
        shuffled = payloads[:]
        rng.shuffle(shuffled)
        permutations.append(dict(zip(payloads, shuffled)))
    return permutations


def check_genericity(
    query: QueryFunction,
    db: Database,
    trials: int = 5,
    seed: int = 0,
) -> bool:
    """Empirically test the consistency criterion on one database.

    For each sampled permutation ``h``: ``query(h(DB))`` must equal
    ``h(query(DB))``.  Returns False at the first counterexample.
    """
    baseline = query(db)
    for mapping in domain_permutations(db, trials, seed):
        renamed_db = db.rename(mapping)
        if query(renamed_db) != rename_answer(baseline, mapping):
            return False
    return True
