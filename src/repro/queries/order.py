"""Hypothetical linear orders and tuple counters (Sections 6.2.1-6.2.2).

The expressibility construction needs a counter, and a counter needs a
linear order on the data domain.  The paper's move: if the domain is
unordered, *assert* an order hypothetically — every order, one after
another — and rely on genericity for the answers to agree.

:func:`order_assertion_rules` emits the Section 6.2.1 rules verbatim::

    YES      <- SELECT(x), ORDER(x)[add: FIRST1(x)].
    ORDER(x) <- SELECT(y), ORDER(y)[add: NEXT1(x, y)].
    ORDER(x) <- ~SELECT(y), <goal>[add: LAST1(x)].
    SELECT(y)   <- D(y), ~SELECTED(y).
    SELECTED(y) <- FIRST1(y).
    SELECTED(y) <- NEXT1(x, y).

where ``<goal>`` is whatever the caller wants evaluated once an order
is in place (``ACCEPT`` for the machine encodings).  The rules are
constant-free and linear, and sit in the top stratum of whatever they
are combined with.

:func:`counter_rules` emits the Section 6.2.2 Horn rules defining
``FIRST``/``NEXT``/``LAST`` on ``l``-tuples from the asserted unary
order — a lexicographic counter from ``0`` to ``n^l - 1``.

:func:`domain_parity_rulebase` is a self-contained demonstration used
by experiment E10: it decides whether ``|D|`` is even by walking the
asserted order, a query whose answer provably cannot depend on which
order was asserted.
"""

from __future__ import annotations

from ..core.ast import Hypothetical, Negated, Positive, Rule, Rulebase
from ..core.errors import CompilationError
from ..core.terms import Atom, Variable

__all__ = [
    "order_assertion_rules",
    "counter_rules",
    "domain_parity_rulebase",
]


def order_assertion_rules(
    goal: Atom,
    *,
    yes_predicate: str = "yes",
    domain_predicate: str = "dom",
    first1: str = "first1",
    next1: str = "next1",
    last1: str = "last1",
) -> list[Rule]:
    """The Section 6.2.1 rules, parameterized by the inner goal.

    The goal atom is proved after ``FIRST1``/``NEXT1``/``LAST1`` facts
    describing a complete linear order over the ``domain_predicate``
    relation have been hypothetically inserted.  Requires a non-empty
    domain (the first rule selects the order's first element).
    """
    x = Variable("X")
    y = Variable("Y")
    select = Atom("select", (y,))
    return [
        Rule(
            Atom(yes_predicate, ()),
            (
                Positive(Atom("select", (x,))),
                Hypothetical(Atom("order", (x,)), (Atom(first1, (x,)),)),
            ),
        ),
        Rule(
            Atom("order", (x,)),
            (
                Positive(select),
                Hypothetical(Atom("order", (y,)), (Atom(next1, (x, y)),)),
            ),
        ),
        Rule(
            Atom("order", (x,)),
            (
                Negated(select),
                Hypothetical(goal, (Atom(last1, (x,)),)),
            ),
        ),
        Rule(
            select,
            (
                Positive(Atom(domain_predicate, (y,))),
                Negated(Atom("selected", (y,))),
            ),
        ),
        Rule(Atom("selected", (y,)), (Positive(Atom(first1, (y,))),)),
        Rule(Atom("selected", (y,)), (Positive(Atom(next1, (x, y))),)),
    ]


def counter_rules(
    arity: int,
    *,
    first1: str = "first1",
    next1: str = "next1",
    last1: str = "last1",
    first: str = "first",
    next_name: str = "next",
    last: str = "last",
) -> list[Rule]:
    """A lexicographic counter on ``arity``-tuples (Section 6.2.2).

    Position 1 is the most significant.  ``NEXT`` increments the
    rightmost position that is not at the end of the base order,
    rolling every position to its right back to the start::

        FIRST(x1, ..., xl) <- FIRST1(x1), ..., FIRST1(xl).
        LAST(x1, ..., xl)  <- LAST1(x1), ..., LAST1(xl).
        # for each increment position p:
        NEXT(c1.., xp, t.., c1.., yp, s..) <-
            NEXT1(xp, yp), LAST1(t..each), FIRST1(s..each).
    """
    if arity < 1:
        raise CompilationError("counter arity must be at least 1")
    xs = [Variable(f"X{i}") for i in range(1, arity + 1)]
    rules = [
        Rule(
            Atom(first, tuple(xs)),
            tuple(Positive(Atom(first1, (x,))) for x in xs),
        ),
        Rule(
            Atom(last, tuple(xs)),
            tuple(Positive(Atom(last1, (x,))) for x in xs),
        ),
    ]
    for position in range(arity - 1, -1, -1):
        prefix = [Variable(f"C{i}") for i in range(position)]
        old_digit = Variable("Xp")
        new_digit = Variable("Yp")
        rolled_old = [Variable(f"T{i}") for i in range(position + 1, arity)]
        rolled_new = [Variable(f"S{i}") for i in range(position + 1, arity)]
        old_value = tuple(prefix) + (old_digit,) + tuple(rolled_old)
        new_value = tuple(prefix) + (new_digit,) + tuple(rolled_new)
        body = [Positive(Atom(next1, (old_digit, new_digit)))]
        body.extend(Positive(Atom(last1, (t,))) for t in rolled_old)
        body.extend(Positive(Atom(first1, (s,))) for s in rolled_new)
        rules.append(Rule(Atom(next_name, old_value + new_value), tuple(body)))
    return rules


def domain_parity_rulebase(
    *, yes_predicate: str = "domeven", domain_predicate: str = "dom"
) -> Rulebase:
    """Decide whether the domain relation has even cardinality.

    The inner rulebase walks the hypothetically asserted order: the
    suffix starting at the last element has odd length; each
    predecessor flips the parity; the domain is even iff the suffix at
    the first element is even.  All inner rules are Horn — the
    hypothetical work happens entirely in the order-assertion rules.

    Every one of the ``n!`` asserted orders walks the same number of
    elements, so the answer is order-independent — the Section 6.2.3
    argument, executable.  Used by experiment E10.
    """
    x = Variable("X")
    y = Variable("Y")
    inner = [
        Rule(
            Atom("evenwalk", ()),
            (Positive(Atom("first1", (x,))), Positive(Atom("evenfrom", (x,)))),
        ),
        Rule(Atom("oddfrom", (x,)), (Positive(Atom("last1", (x,))),)),
        Rule(
            Atom("oddfrom", (x,)),
            (Positive(Atom("next1", (x, y))), Positive(Atom("evenfrom", (y,)))),
        ),
        Rule(
            Atom("evenfrom", (x,)),
            (Positive(Atom("next1", (x, y))), Positive(Atom("oddfrom", (y,)))),
        ),
    ]
    outer = order_assertion_rules(
        Atom("evenwalk", ()),
        yes_predicate=yes_predicate,
        domain_predicate=domain_predicate,
    )
    return Rulebase(outer + inner)
