"""Kripke-style intuitionistic semantics for the negation-free fragment.

Section 3 of the paper notes (footnote 3) that the hypothetical
inference system "has an intuitionistic semantics" [3, 16, 19]:
databases are possible worlds ordered by inclusion, and the
hypothetical premise ``A[add: B]`` is the embedded intuitionistic
implication ``B => A``.

This module makes that claim *checkable* on small instances.  For a
rulebase ``R`` and base database ``DB`` it materializes the finite
Kripke structure whose worlds are all databases between ``DB`` and the
saturated set of ground atoms over ``dom(R, DB)``, with forcing
``w ||- A`` defined as ``R, w |- A``.  Two theorems of the
intuitionistic reading are then verified world by world:

* **persistence** (monotonicity): ``w ⊆ w'`` implies
  ``forced(w) ⊆ forced(w')`` — truth never disappears as knowledge
  grows;
* **the implication law**: ``w ||- A[add: B]`` iff *every* world
  ``w' ⊇ w`` containing ``B`` forces ``A`` — Kripke's clause for
  ``B => A``, which for atomic ``B`` is equivalent to evaluating at the
  minimal extension ``w + {B}`` precisely because of persistence.

Both properties hold exactly for the negation-free fragment;
negation-by-failure breaks persistence (that is its point — Section
3.1 introduces it to express non-monotonic queries), and
:func:`KripkeStructure.build` therefore rejects rulebases with
negation.  The property tests drive these checks over randomized
rulebases; a failure would mean one of the engines disagrees with the
intuitionistic semantics.

Worlds grow exponentially with the atom universe, so this is a
validation tool for small instances, not an evaluator.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Optional

from ..core.ast import Hypothetical, Rulebase
from ..core.database import Database
from ..core.errors import EvaluationError
from ..core.terms import Atom, Constant
from ..core.unify import ground_instances
from ..engine.topdown import TopDownEngine

__all__ = ["KripkeStructure", "atom_universe"]

_MAX_WORLDS = 1 << 14


def atom_universe(rulebase: Rulebase, db: Database) -> list[Atom]:
    """All ground atoms over ``dom(R, DB)`` and the joint vocabulary.

    This is the saturation bound of the inference system: no derivation
    or hypothetical insertion can leave it.
    """
    constants = sorted(
        set(rulebase.constants()) | set(db.constants()),
        key=lambda c: (str(type(c.value)), str(c.value)),
    )
    predicates: dict[str, int] = {}
    for predicate in rulebase.mentioned_predicates():
        arity = rulebase.arity(predicate)
        if arity is not None:
            predicates[predicate] = arity
    for fact in db:
        predicates.setdefault(fact.predicate, fact.arity)
    atoms: list[Atom] = []
    for predicate in sorted(predicates):
        arity = predicates[predicate]
        if arity == 0:
            atoms.append(Atom(predicate, ()))
            continue
        if not constants:
            continue
        from itertools import product

        for args in product(constants, repeat=arity):
            atoms.append(Atom(predicate, tuple(args)))
    return atoms


class KripkeStructure:
    """The finite Kripke structure of a rulebase above a base world."""

    def __init__(
        self,
        rulebase: Rulebase,
        base: Database,
        worlds: tuple[Database, ...],
        engine: TopDownEngine,
    ) -> None:
        self._rulebase = rulebase
        self._base = base
        self._worlds = worlds
        self._engine = engine
        self._forced: dict[Database, frozenset[Atom]] = {}

    @classmethod
    def build(cls, rulebase: Rulebase, base: Database) -> "KripkeStructure":
        """Materialize every world ``base ⊆ w ⊆ saturation``.

        Raises :class:`EvaluationError` for rulebases with negation
        (persistence fails by design there) and for universes too large
        to enumerate.
        """
        if rulebase.has_negation():
            raise EvaluationError(
                "the Kripke semantics covers the negation-free fragment; "
                "negation-by-failure is deliberately non-monotonic"
            )
        universe = atom_universe(rulebase, base)
        missing = [item for item in universe if item not in base]
        if 2 ** len(missing) > _MAX_WORLDS:
            raise EvaluationError(
                f"{len(missing)} addable atoms would give 2^{len(missing)} "
                f"worlds; the Kripke checker is for small instances"
            )
        worlds = []
        for size in range(len(missing) + 1):
            for extra in combinations(missing, size):
                worlds.append(base.with_facts(*extra))
        return cls(rulebase, base, tuple(worlds), TopDownEngine(rulebase))

    @property
    def worlds(self) -> tuple[Database, ...]:
        return self._worlds

    @property
    def base(self) -> Database:
        return self._base

    def forced(self, world: Database) -> frozenset[Atom]:
        """``{A : R, w |- A}`` — the forcing set of a world."""
        cached = self._forced.get(world)
        if cached is None:
            universe = atom_universe(self._rulebase, self._base)
            cached = frozenset(
                item for item in universe if self._engine.ask(world, item)
            )
            self._forced[world] = cached
        return cached

    # ------------------------------------------------------------------
    # The two intuitionistic laws
    # ------------------------------------------------------------------

    def check_persistence(self) -> Optional[tuple[Database, Database, Atom]]:
        """First failure of monotone forcing, or ``None`` if it holds.

        Checks ``w ⊆ w' -> forced(w) ⊆ forced(w')`` over the covering
        relation (adding one atom), which implies the full order.
        """
        by_size: dict[int, list[Database]] = {}
        for world in self._worlds:
            by_size.setdefault(len(world), []).append(world)
        for world in self._worlds:
            for successor in by_size.get(len(world) + 1, []):
                if not world <= successor:
                    continue
                lost = self.forced(world) - self.forced(successor)
                if lost:
                    return world, successor, next(iter(lost))
        return None

    def check_implication_law(self) -> Optional[tuple[Database, str]]:
        """First violation of the Kripke implication clause, or ``None``.

        For every world ``w`` and every ground instance of every
        hypothetical premise ``A[add: B1..Bm]`` occurring in the rules::

            R, w |- A[add: B..]
                iff  every w' >= w with {B..} ⊆ w' forces A

        (With several additions the premise is the curried implication
        ``B1 => ... => Bm => A``; the law quantifies over worlds
        containing all of them.)
        """
        domain = self._engine.domain(self._base)
        instances = list(self._hypothetical_instances(domain))
        for world in self._worlds:
            for premise in instances:
                direct = self._engine.ask(world, premise)
                quantified = all(
                    premise.atom in self.forced(successor)
                    for successor in self._worlds
                    if world <= successor
                    and all(add in successor for add in premise.additions)
                )
                if direct != quantified:
                    return world, (
                        f"{premise}: inference gives {direct}, Kripke "
                        f"quantification gives {quantified}"
                    )
        return None

    def _hypothetical_instances(self, domain: Iterable[Constant]) -> Iterator[Hypothetical]:
        seen: set[Hypothetical] = set()
        constants = list(domain)
        for item in self._rulebase:
            for premise in item.body:
                if not isinstance(premise, Hypothetical):
                    continue
                if premise.deletions:
                    raise EvaluationError(
                        "the Kripke reading covers additions only"
                    )
                variables = list(dict.fromkeys(premise.variables()))
                for binding in ground_instances(variables, constants):
                    grounded = premise.substitute(binding)
                    if grounded not in seen:
                        seen.add(grounded)
                        yield grounded
