"""Model-theoretic validation tools."""

from .kripke import KripkeStructure, atom_universe

__all__ = ["KripkeStructure", "atom_universe"]
