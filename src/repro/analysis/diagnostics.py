"""Unified diagnostics: stable codes, severities, source spans, emitters.

Every static finding this package can produce — the legacy linter's
hygiene checks, the binding-mode analyzer's blowup estimates, parse
and validation failures — flows through one :class:`Diagnostic` type
with

* a **stable code** (``unsafe-head``, ``cost-blowup``, ...) that
  configuration and golden tests key on;
* a **severity** (``error`` / ``warning`` / ``info``), overridable per
  code via :class:`DiagnosticConfig`;
* a **source span** (:class:`~repro.core.spans.Span`) resolving to
  ``file:line:col`` whenever the rule came from parsed text.

:func:`check` runs the full pipeline over a rulebase;
:func:`check_source` additionally captures parse/validation failures
as diagnostics instead of exceptions.  :func:`render_text`,
:func:`to_json`, and :func:`to_sarif` serialize findings for the CLI's
``--format`` flag; :func:`worst_severity` gates exit codes.

The catalogue of codes lives in :data:`CODES`; ``docs/DIAGNOSTICS.md``
documents each with a minimal triggering example.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..core.ast import Hypothetical, Rule, Rulebase
from ..core.errors import ParseError, StratificationError, ValidationError
from ..core.spans import Span
from ..core.terms import Atom
from .modes import ModeReport, analyze_modes
from .recursion import mutual_recursion_classes
from .stratify import linear_stratification, negation_strata

__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "DiagnosticConfig",
    "SEVERITIES",
    "check",
    "check_source",
    "render_text",
    "severity_rank",
    "to_json",
    "to_sarif",
    "worst_severity",
]

#: Recognized severities, mildest first.
SEVERITIES = ("info", "warning", "error")

_RANK = {"none": 0, "info": 1, "warning": 2, "error": 3}


def severity_rank(severity: str) -> int:
    """Numeric rank for gating: info=1 < warning=2 < error=3."""
    try:
        return _RANK[severity]
    except KeyError:
        raise ValueError(
            f"unknown severity {severity!r}; use one of {SEVERITIES}"
        ) from None


@dataclass(frozen=True)
class CodeInfo:
    """Catalogue entry for one diagnostic code."""

    code: str
    default_severity: str
    summary: str


def _catalogue(*entries: tuple[str, str, str]) -> dict[str, CodeInfo]:
    return {code: CodeInfo(code, sev, text) for code, sev, text in entries}


#: Every diagnostic code this package can emit, with default severity.
CODES: dict[str, CodeInfo] = _catalogue(
    ("parse-error", "error", "the source text could not be parsed"),
    ("invalid-program", "error", "parsed text violates a structural rule"),
    ("negation-cycle", "error", "negation is recursive; no stratification"),
    ("unsafe-head", "warning", "a head variable is bound by no premise"),
    (
        "floating-hypothesis",
        "warning",
        "a hypothetical premise shares no variable with a positive premise",
    ),
    (
        "cost-blowup",
        "warning",
        "a rule domain-grounds two or more variables (|dom|^n candidates)",
    ),
    (
        "domain-grounded-variable",
        "info",
        "a variable is enumerated over the domain rather than joined",
    ),
    (
        "free-recursive-call",
        "info",
        "a recursive call is reachable with every argument free",
    ),
    ("duplicate-rule", "info", "the same rule appears more than once"),
    ("unused-predicate", "info", "defined but never referenced"),
    (
        "undefined-reference",
        "info",
        "referenced but never defined or inserted",
    ),
    ("constant-symbols", "info", "rulebase mentions constants (genericity)"),
    (
        "not-linearly-stratified",
        "info",
        "outside the PROVE engine's linear fragment",
    ),
    (
        "hypothetical-deletion",
        "info",
        "a premise deletes facts hypothetically (EXPTIME fragment)",
    ),
    (
        "demand-unsafe-rule",
        "warning",
        "the magic-sets rewrite would destroy stratification; "
        "demand evaluation falls back to the untransformed program",
    ),
    (
        "demand-unbound-negation",
        "info",
        "negation forces the query's demand to the full extension; "
        "a magic guard would restrict nothing",
    ),
    (
        "demand-blocked-hypothesis",
        "info",
        "hypothetical deletions block demand propagation "
        "(add-only soundness condition)",
    ),
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding with a stable code, severity, and source span."""

    code: str
    message: str
    severity: str = "warning"
    span: Optional[Span] = None
    rule: Optional[Rule] = field(default=None, compare=False)
    suggestion: Optional[str] = None

    @property
    def location(self) -> str:
        """``file:line:col`` when known, ``<rulebase>`` otherwise."""
        if self.span is not None:
            return self.span.location
        return "<rulebase>"

    def __str__(self) -> str:
        return f"{self.location}: {self.severity}[{self.code}] {self.message}"


@dataclass(frozen=True)
class DiagnosticConfig:
    """Per-code severity overrides, disabled codes, and the CI gate.

    ``fail_on`` names the mildest severity that should fail a check
    run (``hypodatalog check`` exits nonzero iff some surviving
    diagnostic reaches it).  The default gates on errors only: the
    paper's own examples trip several deliberate warnings
    (Example 7's ``path(X) :- ~select(Y)`` is an unsafe head by
    design).
    """

    severities: Mapping[str, str] = field(default_factory=dict)
    disabled: frozenset[str] = frozenset()
    fail_on: str = "error"

    def __post_init__(self) -> None:
        for code, severity in self.severities.items():
            if code not in CODES:
                raise ValueError(f"unknown diagnostic code {code!r}")
            severity_rank(severity)
        for code in self.disabled:
            if code not in CODES:
                raise ValueError(f"unknown diagnostic code {code!r}")
        severity_rank(self.fail_on)

    def apply(self, diag: Diagnostic) -> Optional[Diagnostic]:
        """Re-severity or drop one diagnostic per this config."""
        if diag.code in self.disabled:
            return None
        override = self.severities.get(diag.code)
        if override is not None and override != diag.severity:
            return replace(diag, severity=override)
        return diag


def worst_severity(diags: Iterable[Diagnostic]) -> str:
    """The highest severity present (``"none"`` when empty)."""
    worst = "none"
    for diag in diags:
        if severity_rank(diag.severity) > _RANK[worst]:
            worst = diag.severity
    return worst


# ----------------------------------------------------------------------
# The check pipeline
# ----------------------------------------------------------------------


def _emit(
    out: list[Diagnostic],
    code: str,
    message: str,
    *,
    rule: Optional[Rule] = None,
    span: Optional[Span] = None,
    suggestion: Optional[str] = None,
) -> None:
    info = CODES[code]
    if span is None and rule is not None:
        span = rule.span
    out.append(
        Diagnostic(
            code=code,
            message=message,
            severity=info.default_severity,
            span=span,
            rule=rule,
            suggestion=suggestion,
        )
    )


def _structure_checks(rulebase: Rulebase, out: list[Diagnostic]) -> None:
    """Reference hygiene: unused / undefined predicates, duplicates."""
    defined = rulebase.defined_predicates()
    referenced: set[str] = set()
    insertable: set[str] = set()
    first_reference: dict[str, Rule] = {}
    for item in rulebase:
        for _, predicate in item.body_predicates():
            referenced.add(predicate)
            first_reference.setdefault(predicate, item)
        insertable.update(item.added_predicates())
        for premise in item.body:
            if isinstance(premise, Hypothetical):
                insertable.update(a.predicate for a in premise.deletions)

    for predicate in sorted(defined - referenced):
        if rulebase.arity(predicate) == 0:
            continue  # 0-ary heads are natural entry points
        definition = rulebase.definition(predicate)
        _emit(
            out,
            "unused-predicate",
            f"predicate {predicate!r} is defined but never referenced — "
            f"an output predicate, or dead code",
            rule=definition[0] if definition else None,
        )
    for predicate in sorted(referenced - defined - insertable):
        _emit(
            out,
            "undefined-reference",
            f"predicate {predicate!r} is referenced but never defined "
            f"or inserted; it can only be satisfied by database facts",
            rule=first_reference.get(predicate),
        )

    seen: dict[Rule, Rule] = {}
    for item in rulebase:
        if item in seen:
            first = seen[item]
            where = (
                f" (first at {first.span.location})"
                if first.span is not None
                else ""
            )
            _emit(
                out,
                "duplicate-rule",
                f"rule {item} appears more than once{where}",
                rule=item,
                suggestion="delete the repeated rule",
            )
        else:
            seen[item] = item

    if not rulebase.is_constant_free:
        constants = ", ".join(
            sorted(str(constant) for constant in rulebase.constants())[:6]
        )
        carrier = next(
            (item for item in rulebase if item.constants()), None
        )
        _emit(
            out,
            "constant-symbols",
            f"rulebase mentions constants ({constants}...); the query "
            f"it defines need not be generic (Section 6.1)",
            rule=carrier,
        )


def _deletion_checks(rulebase: Rulebase, out: list[Diagnostic]) -> None:
    """Which rules use the ``[del: ...]`` escape hatch.

    Deletions raise data-complexity to EXPTIME and put the rulebase
    outside the linear PROVE fragment; the top-down engine and the
    bottom-up engine (by deletion propagation, docs/INCREMENTAL.md)
    both evaluate them, so the finding is informational — it answers
    "why did the engine auto-selection change?" and "where does demand
    propagation stop?".
    """
    for item in rulebase:
        deleted = sorted(
            {
                str(fact)
                for premise in item.body
                if isinstance(premise, Hypothetical)
                for fact in premise.deletions
            }
        )
        if deleted:
            _emit(
                out,
                "hypothetical-deletion",
                f"rule hypothetically deletes {', '.join(deleted)}; "
                f"deletions are the EXPTIME fragment — the linear "
                f"PROVE engine refuses them and demand propagation "
                f"stops at the deleting premise",
                rule=item,
            )


def _stratification_checks(rulebase: Rulebase, out: list[Diagnostic]) -> None:
    try:
        negation_strata(rulebase)
    except StratificationError as error:
        _emit(out, "negation-cycle", str(error))
        return
    try:
        linear_stratification(rulebase)
    except StratificationError as error:
        _emit(
            out,
            "not-linearly-stratified",
            f"{error} — the PROVE engine will refuse this rulebase; "
            f"the top-down engine still evaluates it",
        )


def _mode_checks(
    rulebase: Rulebase,
    report: ModeReport,
    out: list[Diagnostic],
) -> None:
    """Findings derived from the binding-mode dataflow.

    ``unsafe-head`` and ``floating-hypothesis`` keep their legacy
    codes (and semantics) but are now *derived from* the dataflow, so
    their messages can say what actually happens at evaluation time;
    ``domain-grounded-variable`` and ``cost-blowup`` report the
    sharper quantity directly.
    """
    from .modes import rule_dataflow

    classes = mutual_recursion_classes(rulebase)
    free_calls: set[str] = set()

    for item in rulebase:
        # Per-rule findings come from the all-free dataflow — the most
        # pessimistic adornment, and the one the bottom-up engines (the
        # default) actually evaluate under.  Reachable bound adornments
        # only sharpen calls, never worsen them.
        flow = next(
            (
                candidate
                for candidate in report.for_rule(item)
                if set(candidate.adornment) <= {"f"}
            ),
            None,
        ) or rule_dataflow(item, rulebase=rulebase)

        head_vars = set(item.head.variables())
        grounded = flow.grounded_variables
        unsafe = sorted(
            {var.name for var in grounded} & {var.name for var in head_vars}
        )
        if unsafe:
            names = ", ".join(unsafe)
            _emit(
                out,
                "unsafe-head",
                f"head variable(s) {names} not bound by any premise; "
                f"the rule fires for every domain value",
                rule=item,
                suggestion="add a positive premise mentioning "
                + names,
            )
        for mode in flow.modes:
            if mode.kind == "hypothetical" and mode.grounded:
                premise_vars = {v.name for v in mode.premise.variables()}
                if premise_vars and premise_vars <= {
                    v.name for v in mode.grounded
                }:
                    _emit(
                        out,
                        "floating-hypothesis",
                        f"hypothetical premise {mode.premise} shares no "
                        f"variable with a positive premise; the full "
                        f"domain product will be enumerated",
                        rule=item,
                        span=mode.premise.span or item.span,
                    )
        non_head = sorted(
            var.name for var in grounded if var.name not in unsafe
        )
        if non_head:
            names = ", ".join(non_head)
            _emit(
                out,
                "domain-grounded-variable",
                f"variable(s) {names} are enumerated over dom(R, DB) "
                f"rather than bound by a join",
                rule=item,
            )
        if flow.blowup_exponent >= 2:
            _emit(
                out,
                "cost-blowup",
                f"rule grounds {flow.blowup_exponent} variables over the "
                f"domain: ~|dom|^{flow.blowup_exponent} candidate "
                f"bindings per evaluation",
                rule=item,
                suggestion="bind these variables through positive "
                "premises, or narrow them with a guard relation",
            )

    # Recursive calls reachable with every argument free: use the
    # adornment fixpoint's reachable dataflows, which know what the
    # engines would actually pass down.
    for flow in report.dataflows:
        item = flow.rule
        own_class = classes.get(item.head.predicate, frozenset())
        for mode in flow.modes:
            predicate = mode.premise.goal.predicate
            if (
                mode.kind == "positive"
                and predicate in own_class
                and mode.adornment
                and set(mode.adornment) == {"f"}
                and predicate not in free_calls
            ):
                free_calls.add(predicate)
                _emit(
                    out,
                    "free-recursive-call",
                    f"recursive call {predicate}^{mode.adornment} passes "
                    f"no bindings; top-down evaluation enumerates the "
                    f"full relation at every depth",
                    rule=item,
                    span=mode.premise.span or item.span,
                )


def _demand_checks(
    rulebase: Rulebase,
    queries: Sequence[Union[str, Atom]],
    out: list[Diagnostic],
) -> None:
    """Would the demand rewrite accept each query?  Emits the
    ``demand-*`` codes a ``demand="on"`` evaluation of the same query
    would record on fallback; silent rejections (e.g. a pure EDB
    query) add nothing, matching the engines."""
    from .magic import magic_rewrite

    seen: set[tuple[str, str]] = set()
    for query in queries:
        result = magic_rewrite(rulebase, query)
        for diag in result.diagnostics:
            key = (diag.code, diag.message)
            if key not in seen:
                seen.add(key)
                out.append(diag)


def check(
    rulebase: Rulebase,
    config: Optional[DiagnosticConfig] = None,
    queries: Sequence[Union[str, Atom]] = (),
) -> list[Diagnostic]:
    """All diagnostics for a rulebase, in stable order.

    Order: structural findings (rule order), hypothetical-deletion
    findings (rule order), stratification, then binding-mode findings
    (rule order), then — only when ``queries`` are given —
    demand-rewrite findings per query.  ``queries`` seed
    the adornment analysis with real entry points; without them every
    output predicate is assumed queried all-free.
    """
    raw: list[Diagnostic] = []
    _structure_checks(rulebase, raw)
    _deletion_checks(rulebase, raw)
    _stratification_checks(rulebase, raw)
    try:
        report = analyze_modes(rulebase, queries)
    except StratificationError:  # pragma: no cover - modes need no strata
        report = None
    if report is not None:
        _mode_checks(rulebase, report, raw)
    if queries and report is not None:
        _demand_checks(rulebase, queries, raw)

    config = config or DiagnosticConfig()
    out = []
    for diag in raw:
        kept = config.apply(diag)
        if kept is not None:
            out.append(kept)
    return out


def check_source(
    source: str,
    filename: Optional[str] = None,
    config: Optional[DiagnosticConfig] = None,
    queries: Sequence[Union[str, Atom]] = (),
) -> tuple[Optional[Rulebase], list[Diagnostic]]:
    """Parse and check program text, capturing failures as diagnostics.

    Returns ``(rulebase, diagnostics)``; the rulebase is ``None`` when
    the text failed to parse or validate (the failure is then the sole
    diagnostic, with the parser's position as its span).
    """
    from ..core.parser import parse_program

    config = config or DiagnosticConfig()
    try:
        rulebase = parse_program(source, filename)
    except ParseError as error:
        span = None
        if error.line is not None:
            span = Span(
                error.line, error.column or 1, source=filename
            )
        diag = Diagnostic(
            code="parse-error",
            message=str(error),
            severity=CODES["parse-error"].default_severity,
            span=span,
        )
        kept = config.apply(diag)
        return None, [kept] if kept else []
    except ValidationError as error:
        diag = Diagnostic(
            code="invalid-program",
            message=str(error),
            severity=CODES["invalid-program"].default_severity,
            span=Span(1, 1, source=filename) if filename else None,
        )
        kept = config.apply(diag)
        return None, [kept] if kept else []
    return rulebase, check(rulebase, config, queries)


# ----------------------------------------------------------------------
# Emitters
# ----------------------------------------------------------------------


def render_text(
    diags: Sequence[Diagnostic], verbose: bool = False
) -> str:
    """Human-readable report, one finding per line.

    ``verbose`` appends the offending rule's text and any fix
    suggestion on indented continuation lines.
    """
    lines: list[str] = []
    for diag in diags:
        lines.append(str(diag))
        if verbose:
            if diag.rule is not None:
                lines.append(f"    rule: {diag.rule}")
            if diag.suggestion:
                lines.append(f"    hint: {diag.suggestion}")
    if not diags:
        lines.append("no findings")
    return "\n".join(lines)


def _span_dict(span: Optional[Span]) -> Optional[dict]:
    if span is None:
        return None
    return {
        "line": span.line,
        "column": span.column,
        "end_line": span.end_line,
        "end_column": span.end_column,
        "source": span.source,
    }


def to_json(diags: Sequence[Diagnostic]) -> str:
    """Machine-readable JSON: a list of finding objects."""
    payload = [
        {
            "code": diag.code,
            "severity": diag.severity,
            "message": diag.message,
            "location": diag.location,
            "span": _span_dict(diag.span),
            "rule": str(diag.rule) if diag.rule is not None else None,
            "suggestion": diag.suggestion,
        }
        for diag in diags
    ]
    return json.dumps(payload, indent=2)


_SARIF_LEVEL = {"info": "note", "warning": "warning", "error": "error"}


def to_sarif(diags: Sequence[Diagnostic]) -> str:
    """SARIF 2.1.0 log for code-scanning integrations."""
    rules = [
        {
            "id": info.code,
            "shortDescription": {"text": info.summary},
            "defaultConfiguration": {
                "level": _SARIF_LEVEL[info.default_severity]
            },
        }
        for info in CODES.values()
    ]
    results = []
    for diag in diags:
        result: dict = {
            "ruleId": diag.code,
            "level": _SARIF_LEVEL.get(diag.severity, "warning"),
            "message": {"text": diag.message},
        }
        if diag.span is not None:
            region = {
                "startLine": diag.span.line,
                "startColumn": diag.span.column,
                "endLine": diag.span.end_line,
                "endColumn": diag.span.end_column,
            }
            location: dict = {"physicalLocation": {"region": region}}
            if diag.span.source:
                location["physicalLocation"]["artifactLocation"] = {
                    "uri": diag.span.source
                }
            result["locations"] = [location]
        results.append(result)
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "hypodatalog",
                        "informationUri": (
                            "https://github.com/hypodatalog/hypodatalog"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
