"""Static analysis: dependency graphs, linearity, stratification, classification."""

from .bounds import AppendixABound, proof_sequence_bound
from .classify import ComplexityReport, classify
from .diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticConfig,
    check,
    check_source,
    render_text,
    to_json,
    to_sarif,
    worst_severity,
)
from .demand import DemandReport, derive_demand
from .lint import LintFinding, lint
from .magic import MagicProgram, MagicResult, format_rewrite, magic_rewrite
from .modes import ModeReport, RuleDataflow, adorn, analyze_modes, rule_dataflow
from .monotone import is_add_monotone, monotone_layer_prefix
from .planner import (
    cost_aware_positive_order,
    estimate_matches,
    greedy_positive_order,
    join_mode,
)
from .slicing import Slice, dependency_cone, slice_rulebase
from .depgraph import DependencyGraph, Edge
from .recursion import (
    is_linear_rule,
    is_linear_ruleset,
    is_recursive_rule,
    mutual_recursion_classes,
    nonlinear_rules,
    recursive_premise_count,
)
from .stratify import (
    LinearStratification,
    demand_strata,
    h_stratification,
    h_stratification_violations,
    is_h_stratified,
    is_linearly_stratified,
    linear_stratification,
    negation_strata,
)

__all__ = [
    "DependencyGraph",
    "Edge",
    "mutual_recursion_classes",
    "recursive_premise_count",
    "is_recursive_rule",
    "is_linear_rule",
    "is_linear_ruleset",
    "nonlinear_rules",
    "negation_strata",
    "is_add_monotone",
    "monotone_layer_prefix",
    "LinearStratification",
    "linear_stratification",
    "h_stratification",
    "is_h_stratified",
    "h_stratification_violations",
    "is_linearly_stratified",
    "ComplexityReport",
    "classify",
    "AppendixABound",
    "proof_sequence_bound",
    "LintFinding",
    "lint",
    "CODES",
    "Diagnostic",
    "DiagnosticConfig",
    "check",
    "check_source",
    "render_text",
    "to_json",
    "to_sarif",
    "worst_severity",
    "ModeReport",
    "RuleDataflow",
    "adorn",
    "analyze_modes",
    "rule_dataflow",
    "cost_aware_positive_order",
    "estimate_matches",
    "greedy_positive_order",
    "join_mode",
    "Slice",
    "dependency_cone",
    "slice_rulebase",
    "DemandReport",
    "derive_demand",
    "MagicProgram",
    "MagicResult",
    "magic_rewrite",
    "format_rewrite",
    "demand_strata",
]
