"""Static analysis: dependency graphs, linearity, stratification, classification."""

from .bounds import AppendixABound, proof_sequence_bound
from .classify import ComplexityReport, classify
from .lint import LintFinding, lint
from .slicing import Slice, dependency_cone, slice_rulebase
from .depgraph import DependencyGraph, Edge
from .recursion import (
    is_linear_rule,
    is_linear_ruleset,
    is_recursive_rule,
    mutual_recursion_classes,
    nonlinear_rules,
    recursive_premise_count,
)
from .stratify import (
    LinearStratification,
    h_stratification,
    h_stratification_violations,
    is_h_stratified,
    is_linearly_stratified,
    linear_stratification,
    negation_strata,
)

__all__ = [
    "DependencyGraph",
    "Edge",
    "mutual_recursion_classes",
    "recursive_premise_count",
    "is_recursive_rule",
    "is_linear_rule",
    "is_linear_ruleset",
    "nonlinear_rules",
    "negation_strata",
    "LinearStratification",
    "linear_stratification",
    "h_stratification",
    "is_h_stratified",
    "h_stratification_violations",
    "is_linearly_stratified",
    "ComplexityReport",
    "classify",
    "AppendixABound",
    "proof_sequence_bound",
    "LintFinding",
    "lint",
    "Slice",
    "dependency_cone",
    "slice_rulebase",
]
