"""Program slicing: the sub-rulebase relevant to a set of goals.

A derivation of an atom only ever uses rules whose head predicate is
reachable from the goal through body-premise dependencies (positive,
negative, or hypothetical occurrences — Definition 4's edges).  Facts
inserted by ``add`` parts matter exactly when some premise *reads*
them, and reads are dependency edges, so the dependency cone is
sound for slicing: evaluating a goal against the slice gives the same
answer as against the full rulebase.

One subtlety keeps the slice exact rather than merely sound: the
evaluation domain ``dom(R, DB)`` shrinks when rules are dropped, and a
dropped rule's constants may be the only thing making some grounding
available.  :func:`slice_rulebase` therefore reports (via the returned
:class:`Slice`) whether any constants were lost; queries on
constant-complete slices are guaranteed unchanged, which the tests
check on the library rulebases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.ast import Rulebase
from .depgraph import DependencyGraph

__all__ = ["Slice", "dependency_cone", "slice_rulebase"]


@dataclass(frozen=True)
class Slice:
    """The result of slicing: the sub-rulebase plus bookkeeping."""

    rulebase: Rulebase
    goals: frozenset[str]
    cone: frozenset[str]
    dropped_rules: int
    constants_preserved: bool


def dependency_cone(rulebase: Rulebase, goals: Iterable[str]) -> frozenset[str]:
    """All predicates reachable from ``goals`` through rule bodies.

    The goals themselves are included (whether or not they are
    defined).
    """
    graph = DependencyGraph.from_rulebase(rulebase)
    cone: set[str] = set()
    frontier = [goal for goal in goals]
    while frontier:
        predicate = frontier.pop()
        if predicate in cone:
            continue
        cone.add(predicate)
        if predicate in graph.nodes:
            frontier.extend(graph.successors(predicate))
    return frozenset(cone)


def slice_rulebase(rulebase: Rulebase, goals: Iterable[str]) -> Slice:
    """Restrict a rulebase to the rules a set of goals can ever use.

    >>> from repro.core.parser import parse_program
    >>> rb = parse_program("a :- b. b :- c. unrelated :- d.")
    >>> len(slice_rulebase(rb, ["a"]).rulebase)
    2
    """
    goal_set = frozenset(goals)
    cone = dependency_cone(rulebase, goal_set)
    kept = [item for item in rulebase if item.head.predicate in cone]
    sliced = Rulebase(kept)
    constants_preserved = sliced.constants() == rulebase.constants()
    return Slice(
        rulebase=sliced,
        goals=goal_set,
        cone=cone,
        dropped_rules=len(rulebase) - len(kept),
        constants_preserved=constants_preserved,
    )
