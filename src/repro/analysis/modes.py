"""Binding-mode (adornment) abstract interpretation.

Under top-down evaluation a predicate is called with some argument
positions already bound to constants — the classic *adornment* of
magic-set literature: ``path^bf`` is "path called with the first
argument bound, the second free".  This module computes, per
predicate, the set of adornments reachable from a program's entry
points, plus a per-rule *dataflow*: the planned premise order, which
variables each premise binds, and — the crucial number — how many
variables the engines must ground over ``dom(R, DB)`` because nothing
binds them first.

That grounded-variable count is the rule's domain-blowup exponent: a
rule grounding ``n`` variables costs ``|dom|^n`` candidate bindings
before a single premise is checked.  The legacy linter's
``unsafe-head`` (a head variable nothing binds) and
``floating-hypothesis`` (a hypothetical premise sharing no variable
with a positive premise) are both shadows of this one quantity, and
:mod:`repro.analysis.diagnostics` reports all three from the same
dataflow.

The abstract interpretation mirrors exactly what the engines do
(:mod:`repro.engine.body` and friends):

* positive premises are evaluated in the cost-aware planner's order
  and bind all their variables on success;
* hypothetical premises ground their still-unbound variables over the
  domain (Definition 3), then behave as bound calls;
* negated premises ground the rule's remaining *non-local* variables
  first; variables local to the negation are quantified inside it.

Because the planner in :mod:`repro.analysis.planner` is the same code
the engines call at run time, the static order here matches the
dynamic order whenever relation sizes are not known (the analyzer uses
a size prior: EDB relations ~ domain, IDB relations ~ domain^arity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..core.ast import Hypothetical, Negated, Positive, Premise, Rule, Rulebase
from ..core.terms import Atom, Constant, Variable
from .planner import (
    cost_aware_positive_order,
    nonlocal_variables,
    ordered_premises,
)

__all__ = [
    "ALL_FREE",
    "ModeReport",
    "PremiseMode",
    "RuleDataflow",
    "adorn",
    "analyze_modes",
    "rule_dataflow",
]

#: Sentinel spelled like an adornment: every argument position free.
ALL_FREE = "f"

#: Size prior exponent cap — mirrors ``idb_aware_sizes`` in the planner.
_ARITY_CAP = 8

#: Symbolic domain size used for static cost ranking.  Only *ratios*
#: matter for the planner's argmin, so any value > 1 gives the same
#: premise order; 16 keeps the printed estimates readable.
_DOMAIN_PRIOR = 16


def adorn(atom: Atom, bound: Iterable[Variable]) -> str:
    """The adornment string of ``atom`` under a set of bound variables.

    One character per argument: ``b`` for a constant or an
    already-bound variable, ``f`` otherwise.  A variable repeated
    within the atom is bound at its second occurrence (the first
    occurrence binds it).

    >>> from repro.core.terms import atom as mk
    >>> adorn(mk("edge", "X", "Y"), [])
    'ff'
    >>> adorn(mk("edge", "X", "X"), [])
    'fb'
    """
    bound_vars = set(bound)
    letters = []
    for arg in atom.args:
        if isinstance(arg, Constant) or arg in bound_vars:
            letters.append("b")
        else:
            letters.append("f")
            bound_vars.add(arg)
    return "".join(letters)


def _head_bound(rule: Rule, adornment: str) -> set[Variable]:
    """Head variables bound by a call with the given adornment."""
    bound: set[Variable] = set()
    for letter, arg in zip(adornment, rule.head.args):
        if letter == "b" and isinstance(arg, Variable):
            bound.add(arg)
    return bound


def _expand_adornment(predicate_arity: int, adornment: str) -> str:
    """Normalize ``ALL_FREE`` / short adornments to the full arity."""
    if adornment == ALL_FREE or len(adornment) != predicate_arity:
        return "f" * predicate_arity
    return adornment


@dataclass(frozen=True)
class PremiseMode:
    """One body premise as the abstract interpretation saw it.

    ``adornment`` is the binding pattern of the premise's goal atom at
    the moment the engines reach it; ``grounded`` lists the variables
    the engines must enumerate over the domain *before* evaluating it
    (empty for well-bound premises).
    """

    premise: Premise
    adornment: str
    grounded: tuple[Variable, ...] = ()

    @property
    def kind(self) -> str:
        if isinstance(self.premise, Hypothetical):
            return "hypothetical"
        if isinstance(self.premise, Negated):
            return "negative"
        return "positive"

    def __str__(self) -> str:
        goal = self.premise.goal
        tail = ""
        if self.grounded:
            names = ",".join(sorted(v.name for v in self.grounded))
            tail = f" grounding {{{names}}}"
        return f"{goal.predicate}^{self.adornment}{tail}"


@dataclass(frozen=True)
class RuleDataflow:
    """Binding-mode dataflow of one rule under one head adornment.

    ``order`` is the premise order the engines will use; ``modes``
    annotates each premise with its call adornment and any variables
    grounded over the domain for it; ``head_grounded`` lists head
    variables no premise binds (the ``unsafe-head`` condition); the
    ``blowup_exponent`` is the total number of domain-grounded
    variables, so the rule's evaluation enumerates on the order of
    ``|dom|^blowup_exponent`` candidate bindings.
    """

    rule: Rule
    adornment: str
    order: tuple[Premise, ...]
    modes: tuple[PremiseMode, ...]
    head_grounded: tuple[Variable, ...]
    blowup_exponent: int

    @property
    def grounded_variables(self) -> tuple[Variable, ...]:
        """All domain-grounded variables, premise-grounded first."""
        seen: dict[Variable, None] = {}
        for mode in self.modes:
            for var in mode.grounded:
                seen.setdefault(var)
        for var in self.head_grounded:
            seen.setdefault(var)
        return tuple(seen)

    def cost_estimate(self, domain_size: int) -> float:
        """``|dom|^exponent`` — candidate bindings enumerated."""
        return float(max(domain_size, 1)) ** self.blowup_exponent


@dataclass(frozen=True)
class ModeReport:
    """Result of :func:`analyze_modes`.

    ``adornments`` maps each reachable IDB predicate to the set of
    adornment strings it is called with; ``dataflows`` holds one
    :class:`RuleDataflow` per reachable (rule, head adornment) pair;
    ``entry_points`` records the (predicate, adornment) seeds.
    """

    adornments: Mapping[str, frozenset[str]]
    dataflows: tuple[RuleDataflow, ...]
    entry_points: tuple[tuple[str, str], ...]

    def for_rule(self, rule: Rule) -> tuple[RuleDataflow, ...]:
        """Every dataflow computed for ``rule`` (one per adornment)."""
        return tuple(flow for flow in self.dataflows if flow.rule is rule)

    def worst_exponent(self, rule: Rule) -> int:
        """The largest blowup exponent of ``rule`` over its adornments."""
        flows = self.for_rule(rule)
        return max((flow.blowup_exponent for flow in flows), default=0)


def _static_sizes(rulebase: Rulebase):
    """Size prior for static planning: EDB ~ domain, IDB ~ domain^arity."""

    def size(predicate: str) -> float:
        if rulebase.definition(predicate):
            arity = rulebase.arity(predicate) or 0
            return float(_DOMAIN_PRIOR) ** min(max(arity, 1), _ARITY_CAP)
        return float(_DOMAIN_PRIOR)

    return size


def rule_dataflow(
    rule: Rule,
    adornment: str = ALL_FREE,
    *,
    rulebase: Optional[Rulebase] = None,
) -> RuleDataflow:
    """Abstractly interpret one rule body under a head adornment.

    Walks the body in the cost-aware planner's order (the order the
    engines will use absent better size information), tracking which
    variables are bound.  See the module docstring for the premise
    semantics.  ``rulebase`` sharpens the planner's size prior with
    the IDB/EDB split; without it every predicate is treated as EDB.
    """
    context = rulebase if rulebase is not None else Rulebase([rule])
    adornment = _expand_adornment(rule.head.arity, adornment)
    bound = _head_bound(rule, adornment)

    base = ordered_premises(rule.body)
    positives = [item for item in base if isinstance(item, Positive)]
    rest = [item for item in base if not isinstance(item, Positive)]
    planned = cost_aware_positive_order(
        positives, bound, _static_sizes(context), _DOMAIN_PRIOR
    )
    order = tuple(list(planned) + rest)

    modes: list[PremiseMode] = []
    negation_reached = False
    for premise in order:
        if isinstance(premise, Positive):
            call = adorn(premise.atom, bound)
            modes.append(PremiseMode(premise, call))
            bound.update(premise.atom.variables())
        elif isinstance(premise, Hypothetical):
            unbound = tuple(
                var
                for var in dict.fromkeys(premise.variables())
                if var not in bound
            )
            bound.update(unbound)
            # After grounding, the call is fully bound by construction.
            modes.append(
                PremiseMode(premise, adorn(premise.atom, bound), unbound)
            )
        else:
            # First negation grounds the rule's remaining non-local
            # variables (Definition 3); premise-local variables are
            # quantified inside the negation and cost nothing here.
            grounded: tuple[Variable, ...] = ()
            if not negation_reached:
                negation_reached = True
                grounded = tuple(
                    var for var in nonlocal_variables(rule) if var not in bound
                )
                bound.update(grounded)
            modes.append(
                PremiseMode(premise, adorn(premise.atom, bound), grounded)
            )

    head_grounded = tuple(
        var
        for var in dict.fromkeys(rule.head.variables())
        if var not in bound
    )
    exponent = len(head_grounded) + sum(
        len(mode.grounded) for mode in modes
    )
    return RuleDataflow(
        rule=rule,
        adornment=adornment,
        order=order,
        modes=tuple(modes),
        head_grounded=head_grounded,
        blowup_exponent=exponent,
    )


def _entry_points(
    rulebase: Rulebase,
    queries: Sequence[Union[str, Atom]],
) -> list[tuple[str, str]]:
    """Seed (predicate, adornment) pairs for the fixpoint.

    Explicit queries seed their own adornments (constants bound).
    Without queries, every defined predicate that is never referenced
    in a body — the rulebase's outputs — is seeded all-free; if
    everything is referenced somewhere (one big recursive knot), all
    defined predicates are seeded.
    """
    from ..core.parser import parse_premise

    seeds: list[tuple[str, str]] = []
    if queries:
        for query in queries:
            if isinstance(query, str):
                premise = parse_premise(query)
                goal = premise.goal
            else:
                goal = query
            seeds.append((goal.predicate, adorn(goal, ())))
        return seeds

    defined = rulebase.defined_predicates()
    referenced: set[str] = set()
    for item in rulebase:
        for _, predicate in item.body_predicates():
            referenced.add(predicate)
    outputs = sorted(defined - referenced) or sorted(defined)
    for predicate in outputs:
        arity = rulebase.arity(predicate) or 0
        seeds.append((predicate, "f" * arity))
    return seeds


def analyze_modes(
    rulebase: Rulebase,
    queries: Sequence[Union[str, Atom]] = (),
) -> ModeReport:
    """Worklist fixpoint over reachable (predicate, adornment) pairs.

    Starting from the entry points (see :func:`_entry_points`), each
    pair expands through every rule defining the predicate: the rule's
    dataflow is computed under that head adornment, and each body call
    to a defined predicate contributes the (predicate, adornment) pair
    the engines would actually issue.  Terminates because adornment
    strings per predicate are finite (≤ 2^arity).
    """
    seeds = _entry_points(rulebase, queries)
    reached: dict[str, set[str]] = {}
    dataflows: list[RuleDataflow] = []
    worklist: list[tuple[str, str]] = []

    def push(predicate: str, adornment: str) -> None:
        if not rulebase.definition(predicate):
            return
        adornment = _expand_adornment(rulebase.arity(predicate) or 0, adornment)
        seen = reached.setdefault(predicate, set())
        if adornment not in seen:
            seen.add(adornment)
            worklist.append((predicate, adornment))

    for predicate, adornment in seeds:
        push(predicate, adornment)

    def drain() -> None:
        while worklist:
            predicate, adornment = worklist.pop()
            for item in rulebase.definition(predicate):
                flow = rule_dataflow(item, adornment, rulebase=rulebase)
                dataflows.append(flow)
                for mode in flow.modes:
                    push(mode.premise.goal.predicate, mode.adornment)

    drain()
    # Defined predicates unreachable from the entry points (dead SCCs,
    # or inputs referenced only from each other) still deserve
    # dataflows: seed them all-free so every rule is analyzed.
    for predicate in sorted(rulebase.defined_predicates()):
        if predicate not in reached:
            arity = rulebase.arity(predicate) or 0
            seeds.append((predicate, "f" * arity))
            push(predicate, "f" * arity)
            drain()

    ordered_flows = tuple(
        sorted(
            dataflows,
            key=lambda flow: (
                rulebase.rules.index(flow.rule),
                flow.adornment,
            ),
        )
    )
    return ModeReport(
        adornments={
            predicate: frozenset(strings)
            for predicate, strings in reached.items()
        },
        dataflows=ordered_flows,
        entry_points=tuple(seeds),
    )
