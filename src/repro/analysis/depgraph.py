"""Predicate dependency graphs.

For stratification analysis we need the graph whose nodes are predicate
symbols and whose edges record that the head predicate of a rule
*depends on* a body predicate, labelled by the kind of occurrence
(Definition 4 of the paper): positive, negative, or hypothetical.
Predicates appearing only in the *addition* part of a hypothetical
premise do not create edges — insertions are updates, not dependencies.

The strongly connected components of this graph are the paper's
equivalence classes of mutually recursive predicates (used by
Definition 8, linearity, and by the Lemma 1 tests).  Tarjan's algorithm
is implemented iteratively so deep rulebases do not hit Python's
recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..core.ast import Rulebase

__all__ = ["Edge", "DependencyGraph"]


@dataclass(frozen=True, slots=True)
class Edge:
    """``source`` (a rule head) depends on ``target`` (a body predicate)."""

    source: str
    target: str
    kind: str  # "positive" | "negative" | "hypothetical"


class DependencyGraph:
    """Labelled predicate dependency graph of a rulebase."""

    __slots__ = ("_nodes", "_edges", "_successors", "_sccs", "_component_of")

    def __init__(self, nodes: Iterable[str], edges: Iterable[Edge]):
        self._nodes: frozenset[str] = frozenset(nodes)
        self._edges: tuple[Edge, ...] = tuple(edges)
        successors: dict[str, set[str]] = {node: set() for node in self._nodes}
        for edge in self._edges:
            successors.setdefault(edge.source, set()).add(edge.target)
            successors.setdefault(edge.target, set())
        self._successors = successors
        self._sccs: tuple[frozenset[str], ...] | None = None
        self._component_of: dict[str, frozenset[str]] | None = None

    @classmethod
    def from_rulebase(cls, rulebase: Rulebase) -> "DependencyGraph":
        """Build the dependency graph of a rulebase.

        Nodes are every predicate mentioned anywhere (including
        EDB predicates and predicates occurring only in additions, so
        the graph's node set matches the rulebase's vocabulary).
        """
        edges: list[Edge] = []
        for item in rulebase:
            head = item.head.predicate
            for kind, target in item.body_predicates():
                edges.append(Edge(head, target, kind))
        return cls(rulebase.mentioned_predicates(), edges)

    @property
    def nodes(self) -> frozenset[str]:
        return self._nodes

    @property
    def edges(self) -> tuple[Edge, ...]:
        return self._edges

    def successors(self, node: str) -> frozenset[str]:
        return frozenset(self._successors.get(node, ()))

    # ------------------------------------------------------------------
    # Strongly connected components
    # ------------------------------------------------------------------

    def sccs(self) -> tuple[frozenset[str], ...]:
        """The strongly connected components in reverse topological order.

        "Reverse topological" means dependencies first: if component A
        depends on component B, then B appears before A.  This is the
        natural evaluation order for stratified fixpoints.
        """
        if self._sccs is None:
            self._sccs = tuple(self._tarjan())
        return self._sccs

    def component_of(self, node: str) -> frozenset[str]:
        """The mutual-recursion class containing ``node``."""
        if self._component_of is None:
            self._component_of = {}
            for component in self.sccs():
                for member in component:
                    self._component_of[member] = component
        try:
            return self._component_of[node]
        except KeyError:
            raise KeyError(f"unknown predicate {node!r}") from None

    def _tarjan(self) -> Iterator[frozenset[str]]:
        """Iterative Tarjan SCC; yields components dependencies-first."""
        index_counter = 0
        indices: dict[str, int] = {}
        lowlinks: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[frozenset[str]] = []

        for root in sorted(self._nodes):
            if root in indices:
                continue
            # Each frame: (node, iterator over successors)
            work: list[tuple[str, Iterator[str]]] = []
            indices[root] = lowlinks[root] = index_counter
            index_counter += 1
            stack.append(root)
            on_stack.add(root)
            work.append((root, iter(sorted(self._successors.get(root, ())))))
            while work:
                node, successors = work[-1]
                advanced = False
                for successor in successors:
                    if successor not in indices:
                        indices[successor] = lowlinks[successor] = index_counter
                        index_counter += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append(
                            (successor, iter(sorted(self._successors.get(successor, ()))))
                        )
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlinks[node] = min(lowlinks[node], indices[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
                if lowlinks[node] == indices[node]:
                    component = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(frozenset(component))
        # Tarjan emits components dependencies-first already.
        return iter(components)

    # ------------------------------------------------------------------
    # Queries used by the stratification tests
    # ------------------------------------------------------------------

    def internal_edge_kinds(self, component: frozenset[str]) -> frozenset[str]:
        """The kinds of edges with both endpoints inside ``component``."""
        kinds = {
            edge.kind
            for edge in self._edges
            if edge.source in component and edge.target in component
        }
        return frozenset(kinds)

    def has_cycle_through(self, kind: str) -> bool:
        """True iff some mutual-recursion class contains a ``kind`` edge."""
        return any(kind in self.internal_edge_kinds(scc) for scc in self.sccs())

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_dot(self, name: str = "dependencies") -> str:
        """Graphviz DOT rendering of the dependency graph.

        Positive edges are solid, negative edges dashed and labelled
        ``~``, hypothetical edges dotted and labelled ``[add]``.
        Predicates in the same mutual-recursion class share a cluster.
        """
        lines = [f"digraph {name} {{", "  rankdir=BT;"]
        for index, component in enumerate(self.sccs()):
            if len(component) > 1:
                lines.append(f"  subgraph cluster_{index} {{")
                lines.append('    style=dashed; label="mutually recursive";')
                for node in sorted(component):
                    lines.append(f'    "{node}";')
                lines.append("  }")
            else:
                lines.append(f'  "{next(iter(component))}";')
        styles = {
            "positive": "",
            "negative": ' [style=dashed, label="~"]',
            "hypothetical": ' [style=dotted, label="[add]"]',
        }
        for edge in sorted(
            set(self._edges), key=lambda e: (e.source, e.target, e.kind)
        ):
            lines.append(
                f'  "{edge.source}" -> "{edge.target}"{styles[edge.kind]};'
            )
        lines.append("}")
        return "\n".join(lines)
