"""Legacy linting interface, now a thin wrapper over the diagnostics
pipeline (:mod:`repro.analysis.diagnostics`).

:func:`lint` keeps its historical contract — the seven hygiene codes
below, severities capped at ``warning`` — while the findings
themselves are produced by the binding-mode dataflow analysis, so
``unsafe-head`` and ``floating-hypothesis`` now report exactly what
the engines will do (a variable bound by an earlier hypothetical
premise no longer counts as floating, for instance).

Legacy codes:

* ``unsafe-head`` — a head variable no premise binds: the rule derives
  its head for *every* domain value of that variable.
* ``floating-hypothesis`` — a hypothetical premise none of whose
  variables is bound when it is evaluated: the engines enumerate the
  full domain product for it.
* ``unused-predicate`` / ``undefined-reference`` / ``constant-symbols``
  — reference hygiene and genericity (informational).
* ``negation-cycle`` / ``not-linearly-stratified`` — the structural
  conditions (the former is an *error* under ``check``; ``lint`` keeps
  its historical warning severity).

For the full catalogue — blowup estimates, adornment findings, parse
errors — use :func:`repro.analysis.diagnostics.check` or the
``hypodatalog check`` command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.ast import Rule, Rulebase
from ..core.spans import Span
from .diagnostics import Diagnostic, DiagnosticConfig, check

__all__ = ["LEGACY_CODES", "LintFinding", "lint"]

#: The codes ``lint()`` has always emitted, in report order.
LEGACY_CODES = (
    "unsafe-head",
    "floating-hypothesis",
    "unused-predicate",
    "undefined-reference",
    "constant-symbols",
    "negation-cycle",
    "not-linearly-stratified",
)

_RULE_LOCAL = ("unsafe-head", "floating-hypothesis")
_STRUCTURE = ("unused-predicate", "undefined-reference", "constant-symbols")
_STRATIFICATION = ("negation-cycle", "not-linearly-stratified")


@dataclass(frozen=True)
class LintFinding:
    """One finding: a stable code, severity, message, optional source.

    ``severity`` is ``"warning"`` (probably a mistake) or ``"info"``
    (worth knowing, often deliberate — e.g. EDB references).
    ``span`` locates the finding in the source text when the rulebase
    was parsed from text; :meth:`render` appends the rule itself only
    in verbose mode (``hypodatalog lint --verbose``).
    """

    code: str
    message: str
    rule: Optional[Rule] = None
    severity: str = "warning"
    span: Optional[Span] = None

    @property
    def location(self) -> Optional[str]:
        """``file:line:col`` when the source position is known."""
        if self.span is not None:
            return self.span.location
        return None

    def render(self, verbose: bool = False) -> str:
        where = f" at {self.location}" if self.location else ""
        text = f"[{self.severity}:{self.code}] {self.message}{where}"
        if verbose and self.rule is not None:
            text += f"\n    in: {self.rule}"
        return text

    def __str__(self) -> str:
        return self.render()


def _to_finding(diag: Diagnostic) -> LintFinding:
    severity = "warning" if diag.severity == "error" else diag.severity
    return LintFinding(
        code=diag.code,
        message=diag.message,
        rule=diag.rule,
        severity=severity,
        span=diag.span,
    )


def lint(rulebase: Rulebase) -> list[LintFinding]:
    """All legacy findings for a rulebase, stable order.

    Report order matches the historical linter: rule-local warnings
    first (rule order), then reference hygiene, then stratification.
    """
    config = DiagnosticConfig(severities={"negation-cycle": "warning"})
    diags = check(rulebase, config)
    groups = {code: [] for code in ("local", "structure", "strata")}
    for diag in diags:
        if diag.code in _RULE_LOCAL:
            groups["local"].append(diag)
        elif diag.code in _STRUCTURE:
            groups["structure"].append(diag)
        elif diag.code in _STRATIFICATION:
            groups["strata"].append(diag)
    ordered = groups["local"] + groups["structure"] + groups["strata"]
    return [_to_finding(diag) for diag in ordered]
