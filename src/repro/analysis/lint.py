"""Static hygiene checks for rulebases.

Definition 3's domain-grounding semantics makes several patterns legal
that are almost always mistakes in practice; this linter flags them
without changing any semantics:

* ``unsafe-head`` — a head variable not bound by any positive premise:
  the rule derives its head for *every* domain value of that variable.
  (Deliberate in a few paper rules — Example 7's ``path(X) :- ~select(Y)``
  — hence a warning, not an error.)
* ``floating-hypothesis`` — a hypothetical premise none of whose
  variables is bound by a positive premise: the engines will enumerate
  the full domain product for it.
* ``unused-predicate`` — defined but never referenced (and not an
  obvious entry point like a 0-ary predicate); informational, since
  unreferenced heads are usually the rulebase's outputs.
* ``undefined-reference`` — referenced but neither defined nor ever
  insertable (not mentioned in any ``add``), so it can only come from
  the database; listed so typos surface.
* ``constant-symbols`` — the rulebase mentions constants, so the query
  it defines is not guaranteed generic (Section 6.1).
* ``negation-cycle`` / ``not-linearly-stratified`` — the structural
  conditions, surfaced as lint findings with the analyzer's messages.

Each finding carries a code, a message, and the rule it points at
(when applicable).  ``hypodatalog lint`` prints them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.ast import Hypothetical, Positive, Rule, Rulebase
from ..core.errors import StratificationError
from .stratify import linear_stratification, negation_strata

__all__ = ["LintFinding", "lint"]


@dataclass(frozen=True)
class LintFinding:
    """One finding: a stable code, severity, message, optional rule.

    ``severity`` is ``"warning"`` (probably a mistake) or ``"info"``
    (worth knowing, often deliberate — e.g. EDB references).
    """

    code: str
    message: str
    rule: Optional[Rule] = None
    severity: str = "warning"

    def __str__(self) -> str:
        location = f"  in: {self.rule}" if self.rule is not None else ""
        return f"[{self.severity}:{self.code}] {self.message}{location}"


def _positive_variables(item: Rule) -> set:
    bound = set()
    for premise in item.body:
        if isinstance(premise, Positive):
            bound.update(premise.atom.variables())
    return bound


def lint(rulebase: Rulebase) -> list[LintFinding]:
    """All findings for a rulebase, stable order (rule order, then code)."""
    findings: list[LintFinding] = []

    for item in rulebase:
        bound = _positive_variables(item)
        unsafe = [var for var in set(item.head.variables()) if var not in bound]
        if unsafe:
            names = ", ".join(sorted(var.name for var in unsafe))
            findings.append(
                LintFinding(
                    "unsafe-head",
                    f"head variable(s) {names} not bound by a positive "
                    f"premise; the rule fires for every domain value",
                    item,
                )
            )
        for premise in item.body:
            if isinstance(premise, Hypothetical):
                premise_vars = set(premise.variables())
                if premise_vars and not premise_vars & bound:
                    findings.append(
                        LintFinding(
                            "floating-hypothesis",
                            f"hypothetical premise {premise} shares no "
                            f"variable with a positive premise; the full "
                            f"domain product will be enumerated",
                            item,
                        )
                    )

    defined = rulebase.defined_predicates()
    referenced: set[str] = set()
    insertable: set[str] = set()
    for item in rulebase:
        for _, predicate in item.body_predicates():
            referenced.add(predicate)
        insertable.update(item.added_predicates())
        for premise in item.body:
            if isinstance(premise, Hypothetical):
                insertable.update(a.predicate for a in premise.deletions)
    for predicate in sorted(defined - referenced):
        if rulebase.arity(predicate) == 0:
            continue  # 0-ary heads are natural entry points (yes, accept)
        findings.append(
            LintFinding(
                "unused-predicate",
                f"predicate {predicate!r} is defined but never referenced — "
                f"an output predicate, or dead code",
                severity="info",
            )
        )
    for predicate in sorted(referenced - defined - insertable):
        findings.append(
            LintFinding(
                "undefined-reference",
                f"predicate {predicate!r} is referenced but never defined "
                f"or inserted; it can only be satisfied by database facts",
                severity="info",
            )
        )

    if not rulebase.is_constant_free:
        constants = ", ".join(
            sorted(str(constant) for constant in rulebase.constants())[:6]
        )
        findings.append(
            LintFinding(
                "constant-symbols",
                f"rulebase mentions constants ({constants}...); the query "
                f"it defines need not be generic (Section 6.1)",
                severity="info",
            )
        )

    try:
        negation_strata(rulebase)
    except StratificationError as error:
        findings.append(LintFinding("negation-cycle", str(error)))
    else:
        try:
            linear_stratification(rulebase)
        except StratificationError as error:
            findings.append(
                LintFinding(
                    "not-linearly-stratified",
                    f"{error} — the PROVE engine will refuse this rulebase; "
                    f"the top-down engine still evaluates it",
                    severity="info",
                )
            )
    return findings
