"""Data-complexity classification of rulebases (Theorem 1).

Given a rulebase, :func:`classify` reports the complexity class of its
query graph as established by the paper and its companions:

* plain Horn rules, with or without stratified negation — ``P``
  (linearity does not matter in the Horn case; the paper notes this in
  the introduction);
* hypothetical rules with a linear stratification of ``k`` strata —
  ``Sigma_k^P`` (Theorem 1); ``k = 1`` is ``NP``;
* hypothetical rules without a linear stratification (but with
  stratified negation so inference is well defined) — ``PSPACE``
  (the bound from [4], Bonner ICDT'88);
* rulebases using the hypothetical-deletion extension — ``EXPTIME``
  (also from [4]; mentioned in the paper's introduction);
* recursion through negation — inference is not well defined; the
  report says so instead of naming a class.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.ast import Rulebase
from ..core.errors import StratificationError
from .stratify import linear_stratification, negation_strata

__all__ = ["ComplexityReport", "classify"]


@dataclass(frozen=True)
class ComplexityReport:
    """Outcome of :func:`classify`.

    ``class_name`` is the data-complexity class of the rulebase's query
    graph; ``strata`` is the number of linear strata when a linear
    stratification exists, else ``None``.
    """

    class_name: str
    strata: int | None
    well_defined: bool
    linearly_stratified: bool
    notes: tuple[str, ...] = ()

    def __str__(self) -> str:
        parts = [f"data-complexity: {self.class_name}"]
        if self.strata is not None:
            parts.append(f"strata: {self.strata}")
        if not self.well_defined:
            parts.append("inference not well defined")
        return "; ".join(parts)


def classify(rulebase: Rulebase) -> ComplexityReport:
    """Classify a rulebase per Theorem 1 and the surrounding discussion.

    >>> from repro.core.parser import parse_program
    >>> classify(parse_program("p(X) :- q(X).")).class_name
    'P'
    """
    try:
        negation_strata(rulebase)
    except StratificationError as error:
        return ComplexityReport(
            class_name="undefined",
            strata=None,
            well_defined=False,
            linearly_stratified=False,
            notes=(str(error),),
        )

    if rulebase.has_deletions():
        return ComplexityReport(
            class_name="EXPTIME",
            strata=None,
            well_defined=True,
            linearly_stratified=False,
            notes=(
                "hypothetical deletions present: data-complete for "
                "EXPTIME ([4], Bonner ICDT'88)",
            ),
        )

    if not rulebase.has_hypotheses():
        note = (
            "Horn rules with stratified negation"
            if rulebase.has_negation()
            else "Horn rules"
        )
        return ComplexityReport(
            class_name="P",
            strata=None,
            well_defined=True,
            linearly_stratified=True,
            notes=(note,),
        )

    try:
        stratification = linear_stratification(rulebase)
    except StratificationError as error:
        return ComplexityReport(
            class_name="PSPACE",
            strata=None,
            well_defined=True,
            linearly_stratified=False,
            notes=("no linear stratification: " + str(error),),
        )

    k = stratification.k
    name = "NP" if k == 1 else f"Sigma_{k}^P"
    return ComplexityReport(
        class_name=name,
        strata=k,
        well_defined=True,
        linearly_stratified=True,
        notes=(f"linear stratification with {k} strata",),
    )
