"""Stratification analysis (Section 4 of the paper, Lemma 1).

Three related notions live here:

* **Stratified negation** in the classic Apt-Blair-Walker sense
  (:func:`negation_strata`): no recursion through negation.  Used for
  the Horn-with-negation substrate, for the reference model engine
  (which treats hypothetical dependencies like positive ones), and for
  the internal layering of each Delta segment.
* **H-stratification** (Definition 6): a partition of the rulebase into
  segments ``R_1, ..., R_n`` such that positive occurrences refer to
  the same segment or below, negative occurrences in *even* segments
  refer strictly below, and hypothetical occurrences in *odd* segments
  refer strictly below.  (The paper's Definition 6 prints the positive
  bound with a strict ``<``; that reading would forbid all positive
  recursion, contradicting the Delta segments' stratified Horn rules
  and the PROVE_Delta procedure, so we use the non-strict bound.  See
  DESIGN.md section 2.)
* **Linear stratification** (Definition 9): an H-stratification in
  which every Sigma segment (even) is linear and every Delta segment
  (odd) has stratified negation.

:func:`linear_stratification` implements Lemma 1: the two
equivalence-class tests followed by the relaxation algorithm that
assigns each defined predicate a partition number ``part(P)``.  The
relaxation starts everything at 1 and bumps a predicate whenever its
constraints are violated; because valid assignments are upward-closed
pointwise, this converges to the *least* valid assignment whenever one
exists (and the pre-tests guarantee one does).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.ast import Rule, Rulebase
from ..core.errors import StratificationError
from .depgraph import DependencyGraph
from .recursion import (
    is_linear_rule,
    is_linear_ruleset,
    recursive_premise_count,
)

__all__ = [
    "negation_strata",
    "demand_strata",
    "LinearStratification",
    "linear_stratification",
    "is_linearly_stratified",
    "h_stratification",
    "is_h_stratified",
    "h_stratification_violations",
]


def negation_strata(rulebase: Rulebase) -> list[frozenset[str]]:
    """Classic negation stratification over predicates.

    Returns the mutual-recursion classes of the rulebase in evaluation
    order (dependencies first).  Hypothetical dependencies are treated
    like positive ones — recursion through them is fine; only recursion
    through negation is fatal.

    Raises :class:`StratificationError` if some class contains a
    negative edge (recursion through negation, as in
    ``A <- ~B. B <- ~A.``).
    """
    graph = DependencyGraph.from_rulebase(rulebase)
    layers: list[frozenset[str]] = []
    for component in graph.sccs():
        if "negative" in graph.internal_edge_kinds(component):
            offenders = ", ".join(sorted(component))
            raise StratificationError(
                f"recursion through negation among {{{offenders}}}"
            )
        layers.append(component)
    return layers


def demand_strata(
    rulebase: Rulebase,
    demand_predicates: frozenset[str] = frozenset(),
) -> list[frozenset[str]] | None:
    """Negation strata of a demand-rewritten program, or ``None``.

    The magic-sets rewrite (:mod:`repro.analysis.magic`) can close a
    cycle through an original negation — a guard makes a predicate
    depend on its own callers — in which case the rewritten program has
    no stratification and the engines must fall back to the
    untransformed rules; unlike :func:`negation_strata` this reports
    that as ``None`` rather than raising, since for a rewrite the
    failure is a counted degradation, not an error.

    Demand predicates are placed by the same dependencies-first SCC
    machinery as ordinary ones; the returned layering is additionally
    verified to put each demand predicate no later than every stratum
    that reads it as a guard (so magic facts exist before guarded rules
    consult them).
    """
    try:
        layers = negation_strata(rulebase)
    except StratificationError:
        return None
    if demand_predicates:
        level: dict[str, int] = {}
        for index, layer in enumerate(layers):
            for predicate in layer:
                level[predicate] = index
        for item in rulebase:
            head_level = level.get(item.head.predicate)
            if head_level is None:
                continue
            for _, called in item.body_predicates():
                if called in demand_predicates:
                    called_level = level.get(called)
                    if called_level is not None and called_level > head_level:
                        return None
    return layers


@dataclass(frozen=True)
class LinearStratification:
    """A linear stratification of a rulebase (Definitions 6, 7, 9).

    ``part`` assigns every *defined* predicate its segment number
    (1-based); EDB predicates implicitly sit at segment 0.  Stratum
    ``i`` consists of ``Delta_i`` (segment ``2i - 1``, Horn rules with
    stratified negation) and ``Sigma_i`` (segment ``2i``, linear
    hypothetical rules).
    """

    rulebase: Rulebase
    part: dict[str, int]

    @property
    def n_segments(self) -> int:
        """Highest occupied segment number."""
        return max(self.part.values(), default=0)

    @property
    def k(self) -> int:
        """Number of strata (Definition 7): segment ``s`` belongs to
        stratum ``ceil(s / 2)``."""
        return (self.n_segments + 1) // 2

    def segment_of(self, predicate: str) -> int:
        """Segment number of a predicate; 0 for EDB predicates."""
        return self.part.get(predicate, 0)

    def level_of(self, predicate: str) -> int:
        """Stratum number of a predicate; 0 for EDB predicates."""
        return (self.segment_of(predicate) + 1) // 2

    def in_sigma(self, predicate: str) -> bool:
        """True iff the predicate's definition sits in a Sigma segment."""
        segment = self.segment_of(predicate)
        return segment > 0 and segment % 2 == 0

    def segment_rules(self, segment: int) -> tuple[Rule, ...]:
        """All rules whose head predicate is assigned to ``segment``."""
        return tuple(
            item
            for item in self.rulebase
            if self.part.get(item.head.predicate) == segment
        )

    def sigma(self, stratum: int) -> tuple[Rule, ...]:
        """The hypothetical (upper) part of the stratum: segment 2i."""
        return self.segment_rules(2 * stratum)

    def delta(self, stratum: int) -> tuple[Rule, ...]:
        """The Horn-with-negation (lower) part: segment 2i - 1."""
        return self.segment_rules(2 * stratum - 1)

    def predicates_in_segment(self, segment: int) -> frozenset[str]:
        return frozenset(
            predicate for predicate, value in self.part.items() if value == segment
        )


def _constraint_violated(
    kind: str, head_segment: int, body_segment: int
) -> bool:
    """Definition 6 check for one body occurrence.

    ``head_segment`` is the segment of the rule (i.e. of its head's
    definition), ``body_segment`` the segment of the occurring
    predicate (0 for EDB).
    """
    if kind == "positive":
        return body_segment > head_segment
    if kind == "negative":
        if head_segment % 2 == 0:  # even segment: strictly below
            return body_segment >= head_segment
        return body_segment > head_segment
    if kind == "hypothetical":
        if head_segment % 2 == 1:  # odd segment: strictly below
            return body_segment >= head_segment
        return body_segment > head_segment
    raise ValueError(f"unknown occurrence kind {kind!r}")


def _predicate_satisfied(
    predicate: str, part: dict[str, int], rulebase: Rulebase
) -> bool:
    """Does ``part(predicate)`` satisfy Definition 6 for its definition?"""
    head_segment = part[predicate]
    for item in rulebase.definition(predicate):
        for kind, body_predicate in item.body_predicates():
            body_segment = part.get(body_predicate, 0)
            if _constraint_violated(kind, head_segment, body_segment):
                return False
    return True


def linear_stratification(rulebase: Rulebase) -> LinearStratification:
    """Compute a linear stratification, or raise :class:`StratificationError`.

    Implements Lemma 1 of the paper:

    1. Compute the equivalence classes of mutually recursive predicates.
    2. Fail if any class has recursion through negation.
    3. Fail if any class has both hypothetical recursion and non-linear
       recursion.
    4. Run the relaxation algorithm: start all partition numbers at 1;
       bump any predicate whose Definition 6 constraints are violated;
       repeat until stable.

    The result is the least H-stratification; its even segments are
    linear and its odd segments have stratified negation (validated
    before returning).
    """
    if rulebase.has_deletions():
        raise StratificationError(
            "linear stratification is defined for the paper's add-only "
            "language; this rulebase uses hypothetical deletions ([4] "
            "extension, EXPTIME)"
        )
    graph = DependencyGraph.from_rulebase(rulebase)
    classes = {node: graph.component_of(node) for node in graph.nodes}

    # -- Test 1: recursion through negation ---------------------------
    for component in graph.sccs():
        kinds = graph.internal_edge_kinds(component)
        if "negative" in kinds:
            offenders = ", ".join(sorted(component))
            raise StratificationError(
                f"not linearly stratifiable: recursion through negation "
                f"among {{{offenders}}}"
            )

    # -- Test 2: hypothetical recursion combined with non-linearity ---
    for component in graph.sccs():
        kinds = graph.internal_edge_kinds(component)
        if "hypothetical" not in kinds:
            continue
        for predicate in component:
            for item in rulebase.definition(predicate):
                if recursive_premise_count(item, classes) > 1:
                    raise StratificationError(
                        "not linearly stratifiable: class "
                        f"{{{', '.join(sorted(component))}}} has both "
                        f"hypothetical and non-linear recursion (rule: {item})"
                    )

    # -- Relaxation (Lemma 1) ------------------------------------------
    defined = sorted(rulebase.defined_predicates())
    part = {predicate: 1 for predicate in defined}
    ceiling = 2 * len(defined) + 2
    changed = True
    while changed:
        changed = False
        for predicate in defined:
            if not _predicate_satisfied(predicate, part, rulebase):
                part[predicate] += 1
                changed = True
                if part[predicate] > ceiling:
                    raise StratificationError(
                        "relaxation did not converge; rulebase is not "
                        "linearly stratifiable"
                    )

    stratification = LinearStratification(rulebase, part)
    _validate(stratification, classes)
    return stratification


def _validate(
    stratification: LinearStratification, classes: dict[str, frozenset[str]]
) -> None:
    """Check Definition 9 on the computed partition.

    The pre-tests guarantee this never fires; it guards against bugs in
    the relaxation rather than against bad input.
    """
    for stratum in range(1, stratification.k + 1):
        sigma = stratification.sigma(stratum)
        if not is_linear_ruleset(sigma, classes):
            bad = [item for item in sigma if not is_linear_rule(item, classes)]
            raise StratificationError(
                f"internal error: Sigma_{stratum} is not linear ({bad[0]})"
            )
        delta = stratification.delta(stratum)
        if delta:
            # Raises if negation is recursive inside the segment.
            negation_strata(Rulebase(delta))


def is_linearly_stratified(rulebase: Rulebase) -> bool:
    """Decision form of :func:`linear_stratification`."""
    try:
        linear_stratification(rulebase)
    except StratificationError:
        return False
    return True


def h_stratification_violations(
    part: dict[str, int], rulebase: Rulebase
) -> list[str]:
    """Definition 6 violations of a candidate partition, as messages.

    Empty list means ``part`` is an H-stratification.  Useful both for
    validating hand-written partitions and in property tests.
    """
    violations: list[str] = []
    for item in rulebase:
        head_segment = part.get(item.head.predicate, 0)
        for kind, body_predicate in item.body_predicates():
            body_segment = part.get(body_predicate, 0)
            if _constraint_violated(kind, head_segment, body_segment):
                violations.append(
                    f"{kind} occurrence of {body_predicate} (segment "
                    f"{body_segment}) in rule of segment {head_segment}: {item}"
                )
    return violations


def h_stratification(rulebase: Rulebase) -> dict[str, int]:
    """Compute an H-stratification (Definition 6 only), or raise.

    This is the relaxation algorithm *without* the linearity and
    Delta-negation requirements of Definition 9.  Notably —
    as the paper stresses with Example 10 — H-stratification excludes
    neither recursion through negation nor rule-(2) shapes, so strictly
    more rulebases pass here than pass :func:`linear_stratification`.
    """
    defined = sorted(rulebase.defined_predicates())
    part = {predicate: 1 for predicate in defined}
    ceiling = 2 * len(defined) + 2
    changed = True
    while changed:
        changed = False
        for predicate in defined:
            if not _predicate_satisfied(predicate, part, rulebase):
                part[predicate] += 1
                changed = True
                if part[predicate] > ceiling:
                    raise StratificationError(
                        "rulebase is not H-stratifiable (Definition 6 has "
                        "no solution)"
                    )
    return part


def is_h_stratified(rulebase: Rulebase) -> bool:
    """Decision form of :func:`h_stratification`."""
    try:
        h_stratification(rulebase)
    except StratificationError:
        return False
    return True
