"""Monotonicity analysis for lattice model reuse.

Definition 3's inference rules are *monotone in the database* for the
add-only, negation-free fragment: if ``DB ⊆ DB'`` then every atom
derivable at ``DB`` is derivable at ``DB'`` (adding facts can only
enable more rule instances, and hypothetical premises ``A[add: B...]``
quantify over supersets either way).  Negation-by-failure breaks this —
Example 6's ``select(X) :- a(X), ~b(X)`` *shrinks* when ``b`` grows —
and hypothetical deletions break it trivially.

The model engine exploits monotonicity to seed a child fixpoint
``model(DB + {B...})`` with atoms already derived at the parent: that
is sound exactly for the strata whose rules (and hence, by the
topological order of :func:`~repro.analysis.stratify.negation_strata`,
everything they can read) are negation-free.  Because the strata are
listed bottom-up, the negation-free strata form a *prefix* of the
list; :func:`monotone_layer_prefix` measures it.
"""

from __future__ import annotations

from typing import Sequence

from ..core.ast import Negated, Rule, Rulebase

__all__ = ["is_add_monotone", "monotone_layer_prefix"]


def is_add_monotone(rulebase: Rulebase) -> bool:
    """True iff derivability under this rulebase is provably monotone
    in the database: no negation, no hypothetical deletions."""
    return not rulebase.has_negation() and not rulebase.has_deletions()


def monotone_layer_prefix(layer_rules: Sequence[Sequence[Rule]]) -> int:
    """How many leading strata are provably monotone in the database.

    ``layer_rules`` is the per-stratum rule partition in the bottom-up
    order produced by :func:`~repro.analysis.stratify.negation_strata`.
    A stratum is in the prefix iff no rule of it (or of any stratum
    below it) has a negated premise; atoms of prefix strata derived at
    ``DB`` therefore remain derivable at every ``DB' ⊇ DB``.  Deletions
    are the caller's concern (the model engine rejects them outright).
    """
    prefix = 0
    for rules in layer_rules:
        if any(
            isinstance(premise, Negated)
            for item in rules
            for premise in item.body
        ):
            break
        prefix += 1
    return prefix
