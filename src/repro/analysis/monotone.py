"""Monotonicity analysis for lattice model reuse.

Definition 3's inference rules are *monotone in the database* for the
add-only, negation-free fragment: if ``DB ⊆ DB'`` then every atom
derivable at ``DB`` is derivable at ``DB'`` (adding facts can only
enable more rule instances, and hypothetical premises ``A[add: B...]``
quantify over supersets either way).  Negation-by-failure breaks this —
Example 6's ``select(X) :- a(X), ~b(X)`` *shrinks* when ``b`` grows.

Hypothetical deletions ``A[del: C...]`` are classified *anti-monotone*
here as well, although for a subtler reason.  The database map
``DB ↦ DB − {C}`` is itself monotone, so derivability stays monotone
in a purely model-theoretic sense; what breaks is the *stability of
the premise's case split* that seeding relies on: an instance that
collapses at the parent (``C ∉ DB``, so the premise is its goal atom
inside the same fixpoint) becomes a genuine recursion into a *smaller*
database at a child ``DB' ⊇ DB ∋ C`` — and a smaller database is
exactly what a parent-state seed cannot speak for.  Deletion-carrying
strata therefore go through the deletion-propagation path
(:mod:`repro.engine.dred`) instead of the monotone seed.

The model engine exploits monotonicity to seed a child fixpoint
``model(DB + {B...})`` with atoms already derived at the parent: that
is sound exactly for the strata whose rules (and hence, by the
topological order of :func:`~repro.analysis.stratify.negation_strata`,
everything they can read) are negation-free and deletion-free.
Because the strata are listed bottom-up, those strata form a *prefix*
of the list; :func:`monotone_layer_prefix` measures it.
"""

from __future__ import annotations

from typing import Sequence

from ..core.ast import Hypothetical, Negated, Rule, Rulebase

__all__ = ["is_add_monotone", "monotone_layer_prefix"]


def is_add_monotone(rulebase: Rulebase) -> bool:
    """True iff derivability under this rulebase is provably monotone
    in the database: no negation, no hypothetical deletions."""
    return not rulebase.has_negation() and not rulebase.has_deletions()


def _anti_monotone(rules: Sequence[Rule]) -> bool:
    """Does any rule carry a premise the parent-seed argument cannot
    cover: a negation, or a hypothetical premise with deletions?"""
    for item in rules:
        for premise in item.body:
            if isinstance(premise, Negated):
                return True
            if isinstance(premise, Hypothetical) and premise.deletions:
                return True
    return False


def monotone_layer_prefix(layer_rules: Sequence[Sequence[Rule]]) -> int:
    """How many leading strata are provably monotone in the database.

    ``layer_rules`` is the per-stratum rule partition in the bottom-up
    order produced by :func:`~repro.analysis.stratify.negation_strata`.
    A stratum is in the prefix iff no rule of it (or of any stratum
    below it) has a negated premise or a deletion-carrying hypothetical
    premise (see the module docstring for why deletions are classified
    anti-monotone); atoms of prefix strata derived at ``DB`` therefore
    remain derivable at every ``DB' ⊇ DB``.
    """
    prefix = 0
    for rules in layer_rules:
        if _anti_monotone(rules):
            break
        prefix += 1
    return prefix
