"""Demand-pattern derivation for goal-directed (magic-sets) evaluation.

Bottom-up evaluation computes whole perfect models even when the query
touches a sliver of the ground atoms.  The demand transformation
(:mod:`repro.analysis.magic`) restricts evaluation to the atoms a
specific query can actually depend on; this module computes the static
information that rewrite needs and decides whether it is *safe*:

* the query's entry adornment (via :func:`repro.analysis.modes.adorn`)
  and the cone of IDB predicates reachable from the query through body
  occurrences — positive, negated, and hypothetical goals alike
  (predicates mentioned only inside ``[add: ...]`` parts are updates,
  not dependencies, and do not extend the cone);
* the *free set*: predicates that negation forces to full evaluation.
  A negated premise ``~q(...)`` is decided against the complete
  extension of ``q``, so ``q`` may not be demand-restricted, and
  neither may anything ``q``'s definition reads — the closure of the
  negated goals under body occurrences.  This is the conservative core
  of the extended-magic treatment of stratified negation (Tekle & Liu,
  arXiv:1909.08246): restricting only predicates *outside* the free
  set keeps every negation test exact, so guarded evaluation can only
  omit atoms nothing demanded;
* the safety side-conditions under which the engines must fall back to
  the untransformed program rather than risk wrong answers:

  - ``demand-blocked-hypothesis`` — the rulebase uses hypothetical
    *deletions* (``[del: ...]``); demand propagation into a shrinking
    database is not monotone, so the rewrite refuses the whole program
    (Sáenz-Pérez's restricted predicates, arXiv:1512.06945, scope
    assumptions the same way: additions only);
  - ``demand-unbound-negation`` — the query itself is negated, or the
    free-set closure swallows the query predicate, so a guard would
    restrict nothing (every demanded atom must be fully evaluated
    anyway);
  - ``demand-unsafe-rule`` — emitted by :mod:`repro.analysis.magic`
    when the guarded program no longer stratifies (a magic guard can
    close a cycle through an original negation).

Every rejection carries a stable diagnostic code from
:data:`repro.analysis.diagnostics.CODES` and a machine-readable
``reason``; the engines count each degraded query in
``engine.demand_fallbacks`` and answer from the untransformed program,
so rejection is never observable in answers, only in counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

from ..core.ast import (
    Hypothetical,
    Negated,
    Positive,
    Premise,
    Rulebase,
)
from ..core.terms import Atom
from .modes import ModeReport, adorn, analyze_modes

__all__ = ["DemandReport", "coerce_query", "derive_demand"]

Query = Union[str, Atom, Premise]


def coerce_query(query: Query) -> Premise:
    """Normalize a query (text, atom, or premise) to a premise."""
    if isinstance(query, str):
        from ..core.parser import parse_premise

        return parse_premise(query.strip().rstrip("."))
    if isinstance(query, Atom):
        return Positive(query)
    return query


@dataclass(frozen=True)
class DemandReport:
    """What one query demands of a rulebase, and whether restricting
    evaluation to that demand is safe.

    ``cone`` is the set of IDB predicates reachable from the query;
    ``free`` the subset negation forces to full evaluation;
    ``restricted`` the predicates that receive magic guards.
    ``patterns`` maps each restricted predicate to the adornments it is
    reachably called with (the guards the rewrite must emit).  A
    ``reason`` of ``None`` means the rewrite may proceed; otherwise it
    names the rejection (``"negated-query"``, ``"deletions"``,
    ``"edb-query"``, ``"negation-free-set"``) and ``diagnostics``
    carries the corresponding stable-coded findings.
    """

    premise: Premise
    goal: Atom
    adornment: str
    cone: frozenset[str]
    free: frozenset[str]
    restricted: frozenset[str]
    patterns: Mapping[str, frozenset[str]]
    modes: Optional[ModeReport]
    diagnostics: tuple
    reason: Optional[str]

    @property
    def ok(self) -> bool:
        """True iff the rewrite may proceed."""
        return self.reason is None


def _diagnostic(code: str, message: str, rule=None, span=None):
    from .diagnostics import CODES, Diagnostic

    info = CODES[code]
    if span is None and rule is not None:
        span = rule.span
    return Diagnostic(
        code=code,
        message=message,
        severity=info.default_severity,
        span=span,
        rule=rule,
    )


def _reachable_cone(rulebase: Rulebase, root: str) -> frozenset[str]:
    """IDB predicates reachable from ``root`` through body occurrences."""
    cone: set[str] = {root}
    worklist = [root]
    while worklist:
        predicate = worklist.pop()
        for item in rulebase.definition(predicate):
            for _, called in item.body_predicates():
                if called not in cone and rulebase.definition(called):
                    cone.add(called)
                    worklist.append(called)
    return frozenset(cone)


def _free_closure(rulebase: Rulebase, cone: frozenset[str]) -> frozenset[str]:
    """Cone predicates negation forces to full evaluation.

    Roots are the IDB goals of negated premises in cone rules; the set
    is closed under body occurrences of the roots' definitions, since a
    fully-evaluated predicate needs fully-evaluated inputs.
    """
    roots: set[str] = set()
    for predicate in cone:
        for item in rulebase.definition(predicate):
            for premise in item.body:
                if isinstance(premise, Negated) and rulebase.definition(
                    premise.atom.predicate
                ):
                    roots.add(premise.atom.predicate)
    free = set(roots)
    worklist = list(roots)
    while worklist:
        predicate = worklist.pop()
        for item in rulebase.definition(predicate):
            for _, called in item.body_predicates():
                if called not in free and rulebase.definition(called):
                    free.add(called)
                    worklist.append(called)
    return frozenset(free)


def derive_demand(rulebase: Rulebase, query: Query) -> DemandReport:
    """Derive the demand pattern of one query against a rulebase.

    Returns a :class:`DemandReport`; check ``report.ok`` before
    rewriting.  Rejections are reported, never raised — the engines'
    contract is graceful fallback, not failure.
    """
    premise = coerce_query(query)
    goal = premise.goal
    adornment = adorn(goal, ())
    empty: frozenset[str] = frozenset()

    def rejected(reason: str, diagnostics=()) -> DemandReport:
        return DemandReport(
            premise=premise,
            goal=goal,
            adornment=adornment,
            cone=empty,
            free=empty,
            restricted=empty,
            patterns={},
            modes=None,
            diagnostics=tuple(diagnostics),
            reason=reason,
        )

    if isinstance(premise, Negated):
        return rejected(
            "negated-query",
            [
                _diagnostic(
                    "demand-unbound-negation",
                    f"query {premise} is negated: it needs the complete "
                    f"extension of {goal.predicate!r}, so demand "
                    f"restriction cannot prune anything",
                )
            ],
        )
    if rulebase.has_deletions():
        offender = next(
            (
                (item, body_premise)
                for item in rulebase
                for body_premise in item.body
                if isinstance(body_premise, Hypothetical)
                and body_premise.deletions
            ),
            None,
        )
        item, body_premise = offender if offender else (None, None)
        return rejected(
            "deletions",
            [
                _diagnostic(
                    "demand-blocked-hypothesis",
                    "rulebase uses hypothetical deletions; demand "
                    "propagation is only sound for the add-only "
                    "language, so the query runs untransformed",
                    rule=item,
                    span=body_premise.span if body_premise else None,
                )
            ],
        )
    if not rulebase.definition(goal.predicate):
        # A pure EDB query is answered from the database; there is
        # nothing to guard (silent fallback, counted by the engines).
        return rejected("edb-query")

    cone = _reachable_cone(rulebase, goal.predicate)
    free = _free_closure(rulebase, cone)
    restricted = cone - free
    if goal.predicate in free or not restricted:
        carrier = rulebase.definition(goal.predicate)[0]
        return rejected(
            "negation-free-set",
            [
                _diagnostic(
                    "demand-unbound-negation",
                    f"negation forces {goal.predicate!r} (and every "
                    f"predicate it demands) to full evaluation; a magic "
                    f"guard would restrict nothing",
                    rule=carrier,
                )
            ],
        )

    # Adornment fixpoint over the cone sub-rulebase only: its reachable
    # (predicate, adornment) pairs are exactly the calls guarded
    # evaluation will issue, with no pollution from dead-code seeding.
    sub = Rulebase(
        item for item in rulebase if item.head.predicate in cone
    )
    modes = analyze_modes(sub, [goal])
    patterns = {
        predicate: modes.adornments.get(predicate, frozenset())
        for predicate in restricted
    }
    return DemandReport(
        premise=premise,
        goal=goal,
        adornment=adornment,
        cone=cone,
        free=free,
        restricted=restricted,
        patterns=patterns,
        modes=modes,
        diagnostics=(),
        reason=None,
    )
