"""The demand (extended magic-sets) program rewrite.

Given a rulebase and a query, :func:`magic_rewrite` produces a program
whose bottom-up evaluation derives exactly the atoms the query demands
— same answers, fewer rule firings — or a counted rejection when the
safety analysis of :mod:`repro.analysis.demand` says restriction could
change answers.

The rewrite, per restricted predicate ``p`` and reachable adornment
``a`` (from the :mod:`repro.analysis.modes` fixpoint):

* a **magic predicate** ``magic__p__a`` over the bound-position
  arguments, seeded by one bodiless rule from the query's own bound
  arguments (a fact schema when the query leaves them open, matching
  Definition 3's domain grounding);
* a **guarded variant** of every rule defining ``p``: the original
  body prefixed with the magic guard over the head's bound positions,
  so the rule fires only for demanded head instances;
* **magic propagation rules** deriving the demand each restricted body
  call creates, from the guard plus the positive premises evaluated
  before that call in the planner's order.  When one rule variant
  demands several calls, the shared prefix is materialized once as a
  **supplementary predicate** (``sup__i__j``) in the classic
  supplementary-magic style;
* **free rules** (see the free-set closure in ``demand.py``) pass
  through unguarded — negation tests stay exact — and rules outside
  the query's cone are dropped.  Dropping rules can shrink
  ``dom(R, DB)``, so callers must evaluate the rewritten program under
  the *original* program's domain (the engines thread this through).

All seed/magic/sup rules are **positive**, which has two load-bearing
consequences: the rewritten program re-stratifies mechanically
(checked via :func:`repro.analysis.stratify.demand_strata`; failure —
a guard closing a cycle through an original negation — is the
``demand-unsafe-rule`` rejection), and magic derivation is monotone in
the database, so a child model of ``db + {B...}`` derives at least the
parent's demand.  Static propagation alone is still not enough for
hypothetical recursion: a child database can fail to re-derive the
parent's magic facts when the demanding rule's prefix is non-monotone
(Example 7's ``select`` flips off in the child).  ``bound_seeds``
therefore maps each hypothetically-called restricted predicate to its
all-bound magic predicate, and the model engine injects the ground
magic fact for the goal into every child database it recurses into —
demand propagation into ``[add: ...]`` bodies happens at run time,
where the binding is known.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional

from ..core.ast import Negated, Positive, Rule, Rulebase
from ..core.terms import Atom
from .demand import DemandReport, Query, coerce_query, derive_demand

__all__ = ["MagicProgram", "MagicResult", "magic_rewrite", "format_rewrite"]


class _Namer:
    """Fresh, parseable predicate names that cannot collide with the
    source program (double underscores are conventional, not reserved,
    so taken names get a disambiguating suffix)."""

    def __init__(self, taken) -> None:
        self._taken = set(taken)

    def _claim(self, base: str) -> str:
        name = base
        while name in self._taken:
            name += "_x"
        self._taken.add(name)
        return name

    def magic(self, predicate: str, adornment: str) -> str:
        if adornment:
            return self._claim(f"magic__{predicate}__{adornment}")
        return self._claim(f"magic__{predicate}")

    def sup(self, variant: int, position: int) -> str:
        return self._claim(f"sup__{variant}__{position}")


@dataclass(frozen=True)
class MagicProgram:
    """A demand-rewritten program plus the metadata its evaluation needs.

    ``magic_names`` maps ``(predicate, adornment)`` to the magic
    predicate guarding it; ``bound_seeds`` maps each restricted
    predicate that appears as a hypothetical goal to its all-bound
    magic predicate (the engines seed child databases with it);
    ``demand_predicates`` names every auxiliary predicate, so callers
    can strip them from returned models and count them into
    ``demand.magic_facts``.
    """

    rulebase: Rulebase
    report: DemandReport
    seed: Rule
    magic_names: Mapping[tuple[str, str], str]
    bound_seeds: Mapping[str, str]
    demand_predicates: frozenset[str]
    strata: tuple[frozenset[str], ...]
    guarded_rules: int
    magic_rules: int
    sup_rules: int


@dataclass(frozen=True)
class MagicResult:
    """Outcome of :func:`magic_rewrite`: a program, or a reasoned
    rejection (``program is None``) the engines degrade through."""

    source: Rulebase
    report: DemandReport
    program: Optional[MagicProgram]
    diagnostics: tuple

    @property
    def ok(self) -> bool:
        return self.program is not None

    @property
    def reason(self) -> Optional[str]:
        return self.report.reason


def _rejected(source: Rulebase, report: DemandReport, extra=()) -> MagicResult:
    return MagicResult(
        source=source,
        report=report,
        program=None,
        diagnostics=tuple(report.diagnostics) + tuple(extra),
    )


def magic_rewrite(rulebase: Rulebase, query: Query) -> MagicResult:
    """Rewrite ``rulebase`` for goal-directed evaluation of ``query``.

    Never raises on safety grounds: an unsafe input yields a rejected
    :class:`MagicResult` whose diagnostics say why.
    """
    report = derive_demand(rulebase, query)
    if not report.ok:
        return _rejected(rulebase, report)
    assert report.modes is not None

    restricted = report.restricted
    namer = _Namer(rulebase.mentioned_predicates())
    magic_names: dict[tuple[str, str], str] = {}
    for predicate in sorted(restricted):
        for adornment in sorted(report.patterns[predicate]):
            magic_names[(predicate, adornment)] = namer.magic(
                predicate, adornment
            )

    goal = report.goal
    seed_name = magic_names[(goal.predicate, report.adornment)]
    seed_args = tuple(
        arg
        for arg, letter in zip(goal.args, report.adornment)
        if letter == "b"
    )
    seed = Rule(Atom(seed_name, seed_args), ())

    magic_rules: list[Rule] = []
    guarded: list[Rule] = []
    sup_count = 0
    for variant, flow in enumerate(report.modes.dataflows):
        item = flow.rule
        if item.head.predicate not in restricted:
            continue
        adornment = flow.adornment
        guard = Atom(
            magic_names[(item.head.predicate, adornment)],
            tuple(
                arg
                for arg, letter in zip(item.head.args, adornment)
                if letter == "b"
            ),
        )
        # Variables each suffix of the planned order still needs: the
        # supplementary predicates project down to exactly these.
        order = flow.order
        suffix: list[set] = [set() for _ in range(len(order) + 1)]
        for i in range(len(order) - 1, -1, -1):
            suffix[i] = suffix[i + 1] | set(order[i].variables())

        chain = guard
        since: list[Atom] = []
        emitted = 0
        for position, mode in enumerate(flow.modes):
            premise = mode.premise
            called = premise.goal.predicate
            if called in restricted and not isinstance(premise, Negated):
                if emitted:
                    carried = set(chain.variables())
                    for prefix_atom in since:
                        carried |= set(prefix_atom.variables())
                    needed = sorted(
                        carried & suffix[position], key=lambda v: v.name
                    )
                    sup_atom = Atom(
                        namer.sup(variant, position), tuple(needed)
                    )
                    magic_rules.append(
                        Rule(
                            sup_atom,
                            (Positive(chain),)
                            + tuple(Positive(a) for a in since),
                        )
                    )
                    sup_count += 1
                    chain, since = sup_atom, []
                bound_args = tuple(
                    arg
                    for arg, letter in zip(
                        premise.goal.args, mode.adornment
                    )
                    if letter == "b"
                )
                magic_rules.append(
                    Rule(
                        Atom(magic_names[(called, mode.adornment)], bound_args),
                        (Positive(chain),)
                        + tuple(Positive(a) for a in since),
                        span=item.span,
                    )
                )
                emitted += 1
            if isinstance(premise, Positive):
                since.append(premise.atom)
        guarded.append(
            Rule(item.head, (Positive(guard),) + item.body, span=item.span)
        )

    free_rules = [
        item for item in rulebase if item.head.predicate in report.free
    ]
    rewritten = Rulebase(
        [seed] + magic_rules + guarded + free_rules
    )
    n_sup = sup_count
    n_magic = len(magic_rules) - n_sup

    demand_predicates = frozenset(
        item.head.predicate for item in [seed] + magic_rules
    )
    from .stratify import demand_strata

    strata = demand_strata(rewritten, demand_predicates)
    if strata is None:
        offender = next(
            (
                item
                for item in rulebase
                if item.head.predicate in restricted
                and any(isinstance(p, Negated) for p in item.body)
            ),
            None,
        )
        return _rejected(
            rulebase,
            replace(report, reason="unstratifiable-rewrite"),
            [_unsafe_diagnostic(offender, goal)],
        )

    arity = rulebase.arity
    bound_seeds = {}
    for predicate in restricted:
        all_bound = "b" * (arity(predicate) or 0)
        name = magic_names.get((predicate, all_bound))
        if name is not None:
            bound_seeds[predicate] = name

    program = MagicProgram(
        rulebase=rewritten,
        report=report,
        seed=seed,
        magic_names=magic_names,
        bound_seeds=bound_seeds,
        demand_predicates=demand_predicates,
        strata=tuple(strata),
        guarded_rules=len(guarded),
        magic_rules=n_magic,
        sup_rules=n_sup,
    )
    return MagicResult(
        source=rulebase, report=report, program=program, diagnostics=()
    )


def _unsafe_diagnostic(rule, goal: Atom):
    from .diagnostics import CODES, Diagnostic

    info = CODES["demand-unsafe-rule"]
    return Diagnostic(
        code="demand-unsafe-rule",
        message=(
            f"the magic guards for query goal {goal} close a cycle "
            f"through negation: the rewritten program has no "
            f"stratification, so the query runs untransformed"
        ),
        severity=info.default_severity,
        span=rule.span if rule is not None else None,
        rule=rule,
    )


def format_rewrite(result: MagicResult) -> str:
    """Pretty-print an adorned/rewritten program for ``explain``.

    Shows the query's adornment, the restricted/free partition, and
    the rewritten rule groups — or the rejection diagnostics when the
    rewrite refused.
    """
    report = result.report
    lines = [f"query: {report.premise}", f"adornment: {report.goal.predicate}^{report.adornment or 'ε'}"]
    if not result.ok:
        lines.append(f"demand rewrite: rejected ({report.reason})")
        for diag in result.diagnostics:
            lines.append(f"  {diag}")
        lines.append("the query evaluates against the untransformed program")
        return "\n".join(lines)
    program = result.program
    assert program is not None

    def adorned(predicate: str) -> str:
        patterns = ",".join(sorted(report.patterns[predicate]))
        return f"{predicate}^{{{patterns or 'ε'}}}"

    lines.append(
        "restricted: "
        + (", ".join(adorned(p) for p in sorted(report.restricted)) or "(none)")
    )
    lines.append("free: " + (", ".join(sorted(report.free)) or "(none)"))
    dropped = sorted(result.source.defined_predicates() - report.cone)
    if dropped:
        lines.append("dropped (outside the query cone): " + ", ".join(dropped))
    lines.append("")
    lines.append("% seed")
    lines.append(str(program.seed))
    n_magic = program.magic_rules + program.sup_rules
    if n_magic:
        lines.append("")
        lines.append("% magic / supplementary rules")
        for item in program.rulebase.rules[1 : 1 + n_magic]:
            lines.append(str(item))
    lines.append("")
    lines.append("% guarded rules")
    start = 1 + n_magic
    for item in program.rulebase.rules[start : start + program.guarded_rules]:
        lines.append(str(item))
    free_rules = program.rulebase.rules[start + program.guarded_rules :]
    if free_rules:
        lines.append("")
        lines.append("% free rules (fully evaluated)")
        for item in free_rules:
            lines.append(str(item))
    return "\n".join(lines)
