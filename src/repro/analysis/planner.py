"""Join planning: premise ordering shared by engines and analyzer.

Evaluating a rule body is a join: each positive premise is matched
against the facts derived so far, and the order in which premises are
tried changes the work by orders of magnitude without changing the
result.  This module holds the ordering policies:

* :func:`ordered_premises` — the semantic baseline: positives, then
  hypotheticals, then negations (textual order within a category).
  Negations must come last (they test the finished binding);
  everything else is pure optimization.
* :func:`greedy_positive_order` — classic most-bound-first: repeatedly
  pick the positive premise with the fewest unbound variables.
* :func:`cost_aware_positive_order` — selectivity-based: repeatedly
  pick the premise with the smallest *estimated number of matching
  tuples*, where the estimate combines the relation's size with how
  many argument positions are already bound
  (:func:`estimate_matches`).  This is what binding-mode (adornment)
  analysis buys the engines: a bound position divides the expected
  matches by the domain size, so a small relation or a well-adorned
  call is tried first even when a most-bound count would tie.

The same primitives drive the static analyzer
(:mod:`repro.analysis.modes`): the planner fixes the evaluation order
the engines will use, and the abstract interpretation walks that order
to compute bound/free variable sets and domain-blowup estimates.

This module depends only on :mod:`repro.core`; the engines import it
through :mod:`repro.engine.body`, which re-exports the ordering
functions for backward compatibility.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence, Union

from ..core.ast import Hypothetical, Negated, Positive, Premise, Rule
from ..core.terms import Constant, Variable

__all__ = [
    "ordered_premises",
    "nonlocal_variables",
    "greedy_positive_order",
    "cost_aware_positive_order",
    "annotate_plan",
    "estimate_matches",
    "idb_aware_sizes",
    "join_mode",
    "JOIN_MODES",
]

SizeOracle = Union[Callable[[str], float], Mapping[str, float]]

JOIN_MODES = ("textual", "greedy", "cost")


def join_mode(value: Union[bool, str, None]) -> str:
    """Normalize an ``optimize_joins`` argument to a planner mode.

    ``True`` (the historical "on" value) now selects the cost-aware
    planner; ``"greedy"`` keeps the legacy most-bound-first policy;
    ``False``/``"textual"`` disables reordering of positives.
    """
    if value is True or value in ("cost", "auto"):
        return "cost"
    if value is False or value is None or value in ("textual", "off"):
        return "textual"
    if value == "greedy":
        return "greedy"
    raise ValueError(
        f"unknown join-planning mode {value!r}; use one of {JOIN_MODES}"
    )


def ordered_premises(body: Sequence[Premise]) -> list[Premise]:
    """Reorder a body: positives, then hypotheticals, then negations."""
    positives = [item for item in body if isinstance(item, Positive)]
    hypotheticals = [item for item in body if isinstance(item, Hypothetical)]
    negations = [item for item in body if isinstance(item, Negated)]
    return positives + hypotheticals + negations


def nonlocal_variables(item: Rule) -> tuple[Variable, ...]:
    """The rule variables Definition 3 must ground before negations.

    Everything except variables occurring in exactly one negated
    premise and nowhere else — those (and only those) are quantified
    inside their negation.
    """
    head_vars = set(item.head.variables())
    occurrence_count: dict[Variable, int] = {}
    negated_only: dict[Variable, bool] = {}
    for premise in item.body:
        for var in set(premise.variables()):
            occurrence_count[var] = occurrence_count.get(var, 0) + 1
            negated_only[var] = (
                negated_only.get(var, True) and isinstance(premise, Negated)
            )
    result = []
    for var in dict.fromkeys(
        list(item.head.variables())
        + [v for premise in item.body for v in premise.variables()]
    ):
        local = (
            var not in head_vars
            and occurrence_count.get(var, 0) == 1
            and negated_only.get(var, False)
        )
        if not local:
            result.append(var)
    return tuple(result)


def greedy_positive_order(
    positives: Sequence[Positive], bound: Iterable[Variable]
) -> list[Positive]:
    """Most-bound-first join order for positive premises.

    Repeatedly picks the premise with the fewest variables not yet
    bound (ties broken by textual order), then treats its variables as
    bound.  Classic greedy join planning: it never changes the set of
    satisfying substitutions, only how fast the search narrows.
    """
    bound_vars = set(bound)
    remaining = list(positives)
    ordered: list[Positive] = []
    while remaining:
        best_index = min(
            range(len(remaining)),
            key=lambda position: len(
                set(remaining[position].atom.variables()) - bound_vars
            ),
        )
        best = remaining.pop(best_index)
        ordered.append(best)
        bound_vars.update(best.atom.variables())
    return ordered


def _size_lookup(sizes: SizeOracle) -> Callable[[str], float]:
    if callable(sizes):
        return sizes
    return lambda predicate: sizes.get(predicate, 0)


def estimate_matches(
    premise: Positive,
    bound: Iterable[Variable],
    sizes: SizeOracle,
    domain_size: int,
) -> float:
    """Expected number of stored tuples matching a positive premise.

    Uniformity estimate: each bound argument position (a constant, an
    already-bound variable, or a repeat of a variable bound earlier in
    the same atom) divides the relation's size by the domain size.
    The result is the branching factor the join incurs when this
    premise is evaluated next — the quantity the cost-aware planner
    minimizes greedily.
    """
    atom = premise.atom
    size = float(_size_lookup(sizes)(atom.predicate))
    divisor = float(max(domain_size, 1))
    bound_vars = set(bound)
    estimate = size
    for arg in atom.args:
        if isinstance(arg, Constant) or arg in bound_vars:
            estimate /= divisor
        else:
            bound_vars.add(arg)  # a repeat later in this atom filters too
    return estimate


def idb_aware_sizes(rulebase, count: Callable[[str], int], domain_size: int):
    """A size oracle for goal-directed engines.

    ``count`` reports *stored* rows (the database); predicates with
    rules additionally pay a derived-instance estimate of
    ``domain_size ** arity``, since a goal-directed engine may have to
    enumerate and decide candidate instances rather than scan a
    materialized relation.  This pushes IDB premises behind cheap EDB
    guards, which is exactly the adornment-analysis intuition: bind
    first through stored facts, then call derived predicates with as
    many bound positions as possible.
    """

    def size(predicate: str) -> float:
        stored = float(count(predicate))
        if rulebase.definition(predicate):
            arity = rulebase.arity(predicate) or 0
            stored += float(max(domain_size, 1)) ** min(arity, 8)
        return stored

    return size


def annotate_plan(
    order: Sequence[Positive],
    bound: Iterable[Variable],
    sizes: SizeOracle,
    domain_size: int,
) -> list[dict[str, object]]:
    """Per-premise cost annotations for an already-chosen join order.

    Replays the planner's binding propagation over ``order`` and
    records, for each premise, the :func:`estimate_matches` value it
    had *at choice time*.  This is what trace plan-choice events carry,
    so a bad E16/E17 plan is diagnosable from the trace alone.
    """
    bound_vars = set(bound)
    annotated: list[dict[str, object]] = []
    for premise in order:
        estimate = estimate_matches(premise, bound_vars, sizes, domain_size)
        annotated.append(
            {"predicate": premise.atom.predicate, "est_cost": round(estimate, 2)}
        )
        bound_vars.update(premise.atom.variables())
    return annotated


def cost_aware_positive_order(
    positives: Sequence[Positive],
    bound: Iterable[Variable],
    sizes: SizeOracle,
    domain_size: int,
) -> list[Positive]:
    """Cheapest-first join order using binding-selectivity estimates.

    Repeatedly picks the premise with the smallest
    :func:`estimate_matches` under the variables bound so far (ties
    broken most-bound-first, then textual order), then treats its
    variables as bound.  Like the greedy planner this is
    semantics-neutral; unlike it, a 2-row guard relation beats a
    10000-row one even when both would bind one new variable.
    """
    lookup = _size_lookup(sizes)
    bound_vars = set(bound)
    remaining = list(positives)
    ordered: list[Positive] = []
    while remaining:

        def priority(position: int) -> tuple[float, int, int]:
            premise = remaining[position]
            unbound = len(set(premise.atom.variables()) - bound_vars)
            return (
                estimate_matches(premise, bound_vars, lookup, domain_size),
                unbound,
                position,
            )

        best_index = min(range(len(remaining)), key=priority)
        best = remaining.pop(best_index)
        ordered.append(best)
        bound_vars.update(best.atom.variables())
    return ordered
