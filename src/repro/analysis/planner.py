"""Join planning: premise ordering shared by engines and analyzer.

Evaluating a rule body is a join: each positive premise is matched
against the facts derived so far, and the order in which premises are
tried changes the work by orders of magnitude without changing the
result.  This module holds the ordering policies:

* :func:`ordered_premises` — the semantic baseline: positives, then
  hypotheticals, then negations (textual order within a category).
  Negations must come last (they test the finished binding);
  everything else is pure optimization.
* :func:`greedy_positive_order` — classic most-bound-first: repeatedly
  pick the positive premise with the fewest unbound variables.
* :func:`cost_aware_positive_order` — selectivity-based: repeatedly
  pick the premise with the smallest *estimated number of matching
  tuples*, where the estimate combines the relation's size with how
  many argument positions are already bound
  (:func:`estimate_matches`).  This is what binding-mode (adornment)
  analysis buys the engines: a bound position divides the expected
  matches by the domain size, so a small relation or a well-adorned
  call is tried first even when a most-bound count would tie.

The same primitives drive the static analyzer
(:mod:`repro.analysis.modes`): the planner fixes the evaluation order
the engines will use, and the abstract interpretation walks that order
to compute bound/free variable sets and domain-blowup estimates.

This module depends only on :mod:`repro.core`; the engines import it
through :mod:`repro.engine.body`, which re-exports the ordering
functions for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

from ..core.ast import Hypothetical, Negated, Positive, Premise, Rule
from ..core.terms import Atom, Constant, Variable

__all__ = [
    "ordered_premises",
    "nonlocal_variables",
    "greedy_positive_order",
    "cost_aware_positive_order",
    "annotate_plan",
    "estimate_matches",
    "idb_aware_sizes",
    "join_mode",
    "JOIN_MODES",
    "AtomAccess",
    "KernelStep",
    "KernelPlan",
    "KernelUnsupported",
    "kernel_plan",
]

SizeOracle = Union[Callable[[str], float], Mapping[str, float]]

JOIN_MODES = ("textual", "greedy", "cost")


def join_mode(value: Union[bool, str, None]) -> str:
    """Normalize an ``optimize_joins`` argument to a planner mode.

    ``True`` (the historical "on" value) now selects the cost-aware
    planner; ``"greedy"`` keeps the legacy most-bound-first policy;
    ``False``/``"textual"`` disables reordering of positives.
    """
    if value is True or value in ("cost", "auto"):
        return "cost"
    if value is False or value is None or value in ("textual", "off"):
        return "textual"
    if value == "greedy":
        return "greedy"
    raise ValueError(
        f"unknown join-planning mode {value!r}; use one of {JOIN_MODES}"
    )


def ordered_premises(body: Sequence[Premise]) -> list[Premise]:
    """Reorder a body: positives, then hypotheticals, then negations."""
    positives = [item for item in body if isinstance(item, Positive)]
    hypotheticals = [item for item in body if isinstance(item, Hypothetical)]
    negations = [item for item in body if isinstance(item, Negated)]
    return positives + hypotheticals + negations


def nonlocal_variables(item: Rule) -> tuple[Variable, ...]:
    """The rule variables Definition 3 must ground before negations.

    Everything except variables occurring in exactly one negated
    premise and nowhere else — those (and only those) are quantified
    inside their negation.
    """
    head_vars = set(item.head.variables())
    occurrence_count: dict[Variable, int] = {}
    negated_only: dict[Variable, bool] = {}
    for premise in item.body:
        for var in set(premise.variables()):
            occurrence_count[var] = occurrence_count.get(var, 0) + 1
            negated_only[var] = (
                negated_only.get(var, True) and isinstance(premise, Negated)
            )
    result = []
    for var in dict.fromkeys(
        list(item.head.variables())
        + [v for premise in item.body for v in premise.variables()]
    ):
        local = (
            var not in head_vars
            and occurrence_count.get(var, 0) == 1
            and negated_only.get(var, False)
        )
        if not local:
            result.append(var)
    return tuple(result)


def greedy_positive_order(
    positives: Sequence[Positive], bound: Iterable[Variable]
) -> list[Positive]:
    """Most-bound-first join order for positive premises.

    Repeatedly picks the premise with the fewest variables not yet
    bound (ties broken by textual order), then treats its variables as
    bound.  Classic greedy join planning: it never changes the set of
    satisfying substitutions, only how fast the search narrows.
    """
    bound_vars = set(bound)
    remaining = list(positives)
    ordered: list[Positive] = []
    while remaining:
        best_index = min(
            range(len(remaining)),
            key=lambda position: len(
                set(remaining[position].atom.variables()) - bound_vars
            ),
        )
        best = remaining.pop(best_index)
        ordered.append(best)
        bound_vars.update(best.atom.variables())
    return ordered


def _size_lookup(sizes: SizeOracle) -> Callable[[str], float]:
    if callable(sizes):
        return sizes
    return lambda predicate: sizes.get(predicate, 0)


def estimate_matches(
    premise: Positive,
    bound: Iterable[Variable],
    sizes: SizeOracle,
    domain_size: int,
) -> float:
    """Expected number of stored tuples matching a positive premise.

    Uniformity estimate: each bound argument position (a constant, an
    already-bound variable, or a repeat of a variable bound earlier in
    the same atom) divides the relation's size by the domain size.
    The result is the branching factor the join incurs when this
    premise is evaluated next — the quantity the cost-aware planner
    minimizes greedily.
    """
    atom = premise.atom
    size = float(_size_lookup(sizes)(atom.predicate))
    divisor = float(max(domain_size, 1))
    bound_vars = set(bound)
    estimate = size
    for arg in atom.args:
        if isinstance(arg, Constant) or arg in bound_vars:
            estimate /= divisor
        else:
            bound_vars.add(arg)  # a repeat later in this atom filters too
    return estimate


def idb_aware_sizes(rulebase, count: Callable[[str], int], domain_size: int):
    """A size oracle for goal-directed engines.

    ``count`` reports *stored* rows (the database); predicates with
    rules additionally pay a derived-instance estimate of
    ``domain_size ** arity``, since a goal-directed engine may have to
    enumerate and decide candidate instances rather than scan a
    materialized relation.  This pushes IDB premises behind cheap EDB
    guards, which is exactly the adornment-analysis intuition: bind
    first through stored facts, then call derived predicates with as
    many bound positions as possible.
    """

    def size(predicate: str) -> float:
        stored = float(count(predicate))
        if rulebase.definition(predicate):
            arity = rulebase.arity(predicate) or 0
            stored += float(max(domain_size, 1)) ** min(arity, 8)
        return stored

    return size


def annotate_plan(
    order: Sequence[Positive],
    bound: Iterable[Variable],
    sizes: SizeOracle,
    domain_size: int,
) -> list[dict[str, object]]:
    """Per-premise cost annotations for an already-chosen join order.

    Replays the planner's binding propagation over ``order`` and
    records, for each premise, the :func:`estimate_matches` value it
    had *at choice time*.  This is what trace plan-choice events carry,
    so a bad E16/E17 plan is diagnosable from the trace alone.
    """
    bound_vars = set(bound)
    annotated: list[dict[str, object]] = []
    for premise in order:
        estimate = estimate_matches(premise, bound_vars, sizes, domain_size)
        annotated.append(
            {"predicate": premise.atom.predicate, "est_cost": round(estimate, 2)}
        )
        bound_vars.update(premise.atom.variables())
    return annotated


def cost_aware_positive_order(
    positives: Sequence[Positive],
    bound: Iterable[Variable],
    sizes: SizeOracle,
    domain_size: int,
) -> list[Positive]:
    """Cheapest-first join order using binding-selectivity estimates.

    Repeatedly picks the premise with the smallest
    :func:`estimate_matches` under the variables bound so far (ties
    broken most-bound-first, then textual order), then treats its
    variables as bound.  Like the greedy planner this is
    semantics-neutral; unlike it, a 2-row guard relation beats a
    10000-row one even when both would bind one new variable.
    """
    lookup = _size_lookup(sizes)
    bound_vars = set(bound)
    remaining = list(positives)
    ordered: list[Positive] = []
    while remaining:

        def priority(position: int) -> tuple[float, int, int]:
            premise = remaining[position]
            unbound = len(set(premise.atom.variables()) - bound_vars)
            return (
                estimate_matches(premise, bound_vars, lookup, domain_size),
                unbound,
                position,
            )

        best_index = min(range(len(remaining)), key=priority)
        best = remaining.pop(best_index)
        ordered.append(best)
        bound_vars.update(best.atom.variables())
    return ordered


# ----------------------------------------------------------------------
# Kernel specs: the static access plan a compiled rule body follows.
#
# The join planner above decides the premise *order*; a kernel spec
# additionally fixes, for every argument position of every premise, how
# the generated code will treat it at that point of the join — a
# hoisted constant test, an equality check against an already-bound
# variable, a fresh binding, or a repeated-variable check — plus which
# position (if any) the per-(predicate, position) index is probed on.
# :mod:`repro.engine.kernels` renders these specs to Python source; the
# classification lives here because it is pure join analysis (the same
# binding propagation :func:`annotate_plan` replays) with no knowledge
# of interning or code generation.
# ----------------------------------------------------------------------


class KernelUnsupported(Exception):
    """Raised when a rule body has no compilable access plan.

    The engines treat this as "interpret that rule": kernels are an
    optimization, never a semantics gate.
    """


@dataclass(frozen=True)
class AtomAccess:
    """How one atom's argument positions are consumed by the join.

    ``slots[i]`` is one of ``("const", Constant)`` (hoisted equality
    against a program constant), ``("bound", Variable)`` (equality
    against a variable bound earlier in the join), ``("bind", Variable)``
    (first occurrence — the position binds the variable), or
    ``("check", Variable)`` (a repeat within this atom — equality
    against the position that bound it).  ``probe`` is the first
    const/bound position, the key the per-position index is probed on
    (``None`` means a full scan).
    """

    atom: Atom
    slots: tuple[tuple[str, object], ...]
    probe: Optional[int]

    @property
    def arity(self) -> int:
        return len(self.slots)

    @property
    def is_ground(self) -> bool:
        """True iff every position is const/bound (a membership test)."""
        return all(kind in ("const", "bound") for kind, _ in self.slots)


@dataclass(frozen=True)
class KernelStep:
    """One premise of the compiled join, in evaluation order.

    ``index`` is the premise's position in the *textual* rule body (the
    key semi-naive delta targeting uses); ``atoms`` holds the goal atom
    first and, for hypothetical premises, the addition atoms after it;
    ``ground_vars`` are the premise variables a hypothetical premise
    grounds over the domain before its atoms are tested (Definition 3's
    instance enumeration), in first-occurrence order.
    """

    index: int
    kind: str  # "positive" | "negated" | "hypothetical"
    premise: Premise
    atoms: tuple[AtomAccess, ...]
    ground_vars: tuple[Variable, ...] = ()


@dataclass(frozen=True)
class KernelPlan:
    """The complete static access plan for one rule body.

    ``ground_at`` is the position in ``steps`` where still-unbound
    nonlocal variables (``ground_vars``) are enumerated over the domain
    — just before the first negation, or after the last step when the
    body has none (mirroring :func:`repro.engine.body.satisfy_body`).
    ``bound_vars`` lists every variable bound by the join in binding
    order: exactly the substitution the interpreted path would yield.
    """

    rule: Rule
    order: tuple[int, ...]
    steps: tuple[KernelStep, ...]
    ground_at: int
    ground_vars: tuple[Variable, ...]
    head: AtomAccess
    bound_vars: tuple[Variable, ...]


def _classify(
    atom: Atom, bound: set[Variable], binder: Optional[list[Variable]]
) -> AtomAccess:
    """Classify one atom's positions against the current bound set.

    ``binder`` collects newly bound variables in order; ``None`` means
    new variables stay local to this atom (negation semantics).
    """
    slots: list[tuple[str, object]] = []
    probe: Optional[int] = None
    fresh: set[Variable] = set()
    for position, arg in enumerate(atom.args):
        if isinstance(arg, Variable):
            if arg in bound:
                slots.append(("bound", arg))
            elif arg in fresh:
                slots.append(("check", arg))
                continue  # value only known after the row is unpacked
            else:
                fresh.add(arg)
                slots.append(("bind", arg))
                continue
        else:
            slots.append(("const", arg))
        if probe is None:
            probe = position
    if binder is not None:
        for var in atom.args:
            if isinstance(var, Variable) and var in fresh:
                if var not in bound:
                    bound.add(var)
                    binder.append(var)
                fresh.discard(var)
    return AtomAccess(atom, tuple(slots), probe)


def kernel_plan(
    item: Rule,
    ordered: Sequence[Premise],
    guards: Sequence[Variable],
) -> KernelPlan:
    """The static access plan for ``item``'s body in ``ordered`` order.

    Replays :func:`repro.engine.body.satisfy_body`'s binding
    propagation symbolically: every binding decision there is static
    (positives bind their fresh variables, hypothetical premises ground
    all of theirs, the guard grounding fills the rest), so the plan
    fully determines the generated join.  Raises
    :class:`KernelUnsupported` for bodies outside the compilable
    fragment (hypothetical deletions).
    """
    index_of = {id(premise): i for i, premise in enumerate(item.body)}
    bound: set[Variable] = set()
    binder: list[Variable] = []
    steps: list[KernelStep] = []
    first_negation = next(
        (i for i, premise in enumerate(ordered) if isinstance(premise, Negated)),
        len(ordered),
    )
    ground_vars: Optional[tuple[Variable, ...]] = None
    for position, premise in enumerate(ordered):
        if position == first_negation:
            ground_vars = tuple(var for var in guards if var not in bound)
            bound.update(ground_vars)
            binder.extend(ground_vars)
        body_index = index_of.get(id(premise), -1)
        if isinstance(premise, Positive):
            steps.append(
                KernelStep(
                    body_index,
                    "positive",
                    premise,
                    (_classify(premise.atom, bound, binder),),
                )
            )
        elif isinstance(premise, Negated):
            steps.append(
                KernelStep(
                    body_index,
                    "negated",
                    premise,
                    (_classify(premise.atom, bound, None),),
                )
            )
        else:
            if premise.deletions:
                raise KernelUnsupported(
                    f"hypothetical deletions are interpreted, not compiled: "
                    f"{premise}"
                )
            grounds = tuple(
                var
                for var in dict.fromkeys(premise.variables())
                if var not in bound
            )
            bound.update(grounds)
            binder.extend(grounds)
            atoms = [_classify(premise.atom, bound, binder)]
            atoms.extend(
                _classify(add, bound, binder) for add in premise.additions
            )
            steps.append(
                KernelStep(
                    body_index, "hypothetical", premise, tuple(atoms), grounds
                )
            )
    if ground_vars is None:
        ground_vars = tuple(var for var in guards if var not in bound)
        bound.update(ground_vars)
        binder.extend(ground_vars)
    head = _classify(item.head, bound, None)
    if not head.is_ground:
        raise KernelUnsupported(
            f"head variable unbound after body and guard grounding: "
            f"{item.head}"
        )
    return KernelPlan(
        rule=item,
        order=tuple(step.index for step in steps),
        steps=tuple(steps),
        ground_at=first_negation,
        ground_vars=ground_vars,
        head=head,
        bound_vars=tuple(binder),
    )
